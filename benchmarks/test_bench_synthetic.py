"""Benchmark gate: the incremental simulator fast path.

Runs the 500-op synthetic-graph scenario suite through both simulator
paths, asserts numerical equivalence and the ≥5× contention-scenario
speedup, and checks the results into ``BENCH_simulator.json`` so every
run updates the repo's tracked perf trajectory.
"""

from __future__ import annotations

import pytest

from benchmarks.simulator_bench import (
    EQUIVALENCE_TOLERANCE,
    SPEEDUP_GATE,
    format_report,
    run_simulator_benchmark,
    write_bench_json,
)


@pytest.fixture(scope="module")
def bench_report():
    report = run_simulator_benchmark()
    path = write_bench_json(report)
    print()
    print(format_report(report))
    print(f"wrote {path}")
    return report


def test_bench_step_times_equivalent(bench_report):
    """Both simulator paths must agree on every scenario's step time."""
    for name, scenario in bench_report["scenarios"].items():
        assert scenario["step_time_relative_error"] <= EQUIVALENCE_TOLERANCE, name


def test_bench_speedup_gate(bench_report):
    """The contention-heavy scenarios must clear the ≥5× speedup gate."""
    assert bench_report["headline_speedup"] >= SPEEDUP_GATE, format_report(bench_report)


def test_bench_serial_not_slower(bench_report):
    """Even the contention-free serial scenario must not regress."""
    serial = bench_report["scenarios"]["serial-recommendation"]
    assert serial["speedup"] >= 1.0, format_report(bench_report)
