"""Benchmarks regenerating the headline scheduling results (Fig. 3, Table VI, Fig. 4)."""

from __future__ import annotations

from repro.baselines.manual_opt import ManualOptimizer
from repro.experiments import fig3_strategies, fig4_corun_events, table6_topops
from repro.experiments.common import default_machine


def test_bench_fig3_strategy_ablation(benchmark, once):
    """Figure 3: recommendation vs S1+2 vs +S3 vs +S4 vs manual tuning."""
    machine = default_machine()

    def run():
        return fig3_strategies.run(machine, include_manual=True)

    result = once(benchmark, run)
    print()
    print(fig3_strategies.format_report(result))
    for model, speedups in result.speedups().items():
        # The full runtime beats the recommendation for every model and is
        # at least competitive with exhaustive manual tuning (Fig. 3d).
        assert speedups["all_strategies"] > 1.1, model
        assert speedups["all_strategies"] >= speedups["manual"] * 0.9, model


def test_bench_table6_top_operations(benchmark, once):
    """Table VI: top-5 operations, recommendation vs Strategies 1+2."""
    result = once(benchmark, table6_topops.run)
    print()
    print(table6_topops.format_report(result))
    for model in ("resnet50", "dcgan", "inception_v3", "lstm"):
        entries = result.for_model(model)
        assert len(entries) == 5
        total_rec = sum(e.recommendation_time for e in entries)
        total_s12 = sum(e.strategies_1_2_time for e in entries)
        assert total_s12 <= total_rec * 1.02, model


def test_bench_fig4_corunning_events(benchmark, once):
    """Figure 4: co-running operations per event, with and without Strategy 4."""
    result = once(benchmark, fig4_corun_events.run)
    print()
    print(fig4_corun_events.format_report(result))
    averages = result.averages()
    for model in ("resnet50", "dcgan", "inception_v3"):
        assert averages[(model, "with_s4")] >= averages[(model, "without_s4")] * 0.95
        assert averages[(model, "with_s4")] > 0.5
