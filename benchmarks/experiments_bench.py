"""The experiment-layer perf harness: parallel sweep engine + result cache.

PR 1 made a single simulated step cheap; the wall-clock cost of
reproducing the paper's tables then moved to the experiment layer, which
re-ran identical sweeps across experiments and across invocations.  This
harness measures that layer end to end, in three phases over the default
benchmark experiment set (reduced model graphs):

1. ``serial-cold``   — serial backend, cache disabled: the baseline an
   unparallelised, uncached experiment layer pays on every invocation.
2. ``process-cold``  — process backend, fresh cache: first invocation
   cost with the sweep engine (fan-out plus cache population).
3. ``process-warm``  — process backend, warm cache: every following
   invocation (warm characterisation; this is what iterating on the
   experiment layer actually feels like).

Two gates are enforced:

* **equality** — all three phases must produce byte-identical reports
  (the sweep engine's deterministic ordering makes parallel output
  bit-identical to serial);
* **speedup** — serial-cold / process-warm wall clock ≥ 3×.

Results are written to ``BENCH_experiments.json`` so the repo's
performance trajectory is tracked in version control.
"""

from __future__ import annotations

import json
import os
import platform
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.experiments.cli import _run_one
from repro.sweep import SweepCache, SweepExecutor
from repro.version import __version__

#: Required end-to-end speedup of a warm-cache process-backend run over
#: the serial, uncached baseline (the hard acceptance gate).
SPEEDUP_GATE = 3.0

#: The experiments the harness replays (reduced graphs).  Chosen to span
#: the layer's workload families: standalone sweeps (fig1, table2),
#: co-run simulation (table3), policy grids (table1), hill-climbing
#: profiling + ground truth (table5) and the full strategy ladder (fig3).
BENCH_EXPERIMENTS: tuple[str, ...] = ("fig1", "table2", "table3", "table1", "table5", "fig3")

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_experiments.json"


def _run_phase(
    names: tuple[str, ...], executor: SweepExecutor
) -> tuple[float, dict[str, str]]:
    """Run every experiment through ``executor``; (seconds, name->report)."""
    reports: dict[str, str] = {}
    start = time.perf_counter()
    try:
        for name in names:
            reports[name] = _run_one(name, reduced=True, executor=executor)
        return time.perf_counter() - start, reports
    finally:
        executor.close()


def run_experiments_benchmark(
    names: tuple[str, ...] = BENCH_EXPERIMENTS,
    *,
    jobs: int | None = None,
) -> dict:
    """Run the three phases and return the benchmark report."""
    jobs = jobs or os.cpu_count() or 1
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as cache_dir:
        serial = SweepExecutor("serial", cache=SweepCache(enabled=False))
        serial_seconds, serial_reports = _run_phase(names, serial)

        cold = SweepExecutor("process", jobs=jobs, cache=SweepCache(cache_dir))
        cold_seconds, cold_reports = _run_phase(names, cold)

        warm = SweepExecutor("process", jobs=jobs, cache=SweepCache(cache_dir))
        warm_seconds, warm_reports = _run_phase(names, warm)

    mismatched = sorted(
        name
        for name in names
        if not (serial_reports[name] == cold_reports[name] == warm_reports[name])
    )
    return {
        "benchmark": "experiments-sweep-engine",
        "generated": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "version": __version__,
        "python": platform.python_version(),
        "workload": {
            "experiments": list(names),
            "reduced": True,
            "jobs": jobs,
            "cpu_count": os.cpu_count(),
        },
        "speedup_gate": SPEEDUP_GATE,
        "phases": {
            "serial-cold": {"seconds": round(serial_seconds, 4)},
            "process-cold": {
                "seconds": round(cold_seconds, 4),
                "speedup": round(serial_seconds / cold_seconds, 2),
                "tasks_executed": cold.stats.executed,
                "cache_hits": cold.stats.cache_hits,
            },
            "process-warm": {
                "seconds": round(warm_seconds, 4),
                "speedup": round(serial_seconds / warm_seconds, 2),
                "tasks_executed": warm.stats.executed,
                "cache_hits": warm.stats.cache_hits,
            },
        },
        "headline_speedup": round(serial_seconds / warm_seconds, 2),
        "reports_identical": not mismatched,
        "mismatched_experiments": mismatched,
    }


def write_bench_json(report: dict, path: Path = BENCH_JSON) -> Path:
    path.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")
    return path


def format_report(report: dict) -> str:
    phases = report["phases"]
    lines = [
        "experiments sweep-engine benchmark — "
        f"{', '.join(report['workload']['experiments'])} "
        f"(reduced graphs, {report['workload']['jobs']} jobs)",
        f"{'phase':<16} {'seconds':>9} {'speedup':>9} {'executed':>9} {'hits':>6}",
    ]
    for name, phase in phases.items():
        lines.append(
            f"{name:<16} {phase['seconds']:>8.2f}s "
            f"{phase.get('speedup', 1.0):>8.2f}x "
            f"{phase.get('tasks_executed', '-'):>9} "
            f"{phase.get('cache_hits', '-'):>6}"
        )
    lines.append(
        f"headline speedup: {report['headline_speedup']}x "
        f"(gate: ≥{report['speedup_gate']}x); reports identical: "
        f"{report['reports_identical']}"
    )
    return "\n".join(lines)


def check_gates(report: dict) -> list[str]:
    """The failed-gate messages of one benchmark report (empty = pass)."""
    failures = []
    if not report["reports_identical"]:
        failures.append(
            "parallel/cached reports diverged from the serial baseline: "
            + ", ".join(report["mismatched_experiments"])
        )
    if report["headline_speedup"] < report["speedup_gate"]:
        failures.append(
            f"headline speedup {report['headline_speedup']}x below the "
            f"{report['speedup_gate']}x gate"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.experiments_bench",
        description="Quick experiment-layer perf tier (writes BENCH_experiments.json)",
    )
    parser.add_argument("--jobs", type=int, default=None)
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="print the report without updating BENCH_experiments.json",
    )
    args = parser.parse_args(argv)
    if args.jobs is not None and args.jobs < 1:
        parser.error("--jobs must be at least 1")

    report = run_experiments_benchmark(jobs=args.jobs)
    print(format_report(report))
    if not args.no_write:
        path = write_bench_json(report)
        print(f"wrote {path}")

    failures = check_gates(report)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
