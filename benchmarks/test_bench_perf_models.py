"""Benchmarks regenerating the performance-model accuracy tables (IV and V)."""

from __future__ import annotations

from repro.experiments import table4_regression, table5_hillclimb


def test_bench_table4_regression_accuracy(benchmark, once):
    """Table IV: accuracy of the counter-feature regression models."""
    result = once(benchmark, table4_regression.run)
    print()
    print(table4_regression.format_report(result))
    # The regression approach stays well below the hill-climbing accuracy
    # band (Table V reports >90% for x in {2, 4}).
    assert max(result.accuracy.values()) < 0.90


def test_bench_table5_hill_climbing_accuracy(benchmark, once):
    """Table V: hill-climbing model accuracy for all four NN models."""
    result = once(benchmark, table5_hillclimb.run)
    print()
    print(table5_hillclimb.format_report(result))
    for model in ("resnet50", "dcgan", "inception_v3", "lstm"):
        assert result.accuracy[(model, 2)] > result.accuracy[(model, 16)]
        assert result.accuracy[(model, 4)] > 0.8
