"""Benchmark harness configuration.

Every benchmark regenerates one table or figure of the paper on the
simulated substrate, via ``pytest benchmarks/ --benchmark-only``.  The
heavy experiments run a single round (they are minutes-long simulations,
not micro-benchmarks); the produced report is printed so the run doubles
as a reproduction log.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once():
    return run_once
