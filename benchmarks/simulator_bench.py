"""The simulator perf harness: incremental fast path vs seed reference.

Measures ``StepSimulator.run_step`` on the seeded 500-op synthetic graph
under the scheduling-scenario families the experiments use (serial
recommendation, partitioned co-running, oversubscribed uniform pools,
the TensorFlow out-of-the-box default), asserting along the way that the
incremental path reproduces the reference ``step_time`` within float
round-off.  Results are written to ``BENCH_simulator.json`` so the
repo's performance trajectory is tracked in version control.
"""

from __future__ import annotations

import json
import platform
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable

from repro.baselines.tf_default import UniformPolicy, default_policy, recommended_policy
from repro.execsim.simulator import LaunchRequest, PlacementKind, StepSimulator
from repro.graph.synthetic import synthetic_graph
from repro.hardware.affinity import AffinityMode
from repro.hardware.zoo import get_machine
from repro.version import __version__

#: Relative step-time tolerance between the two simulator paths.
EQUIVALENCE_TOLERANCE = 1e-9
#: Required fast-path speedup on the contention-heavy scenarios (the
#: hard acceptance gate of the incremental rewrite).
SPEEDUP_GATE = 5.0
#: The benchmark's canonical workload.
BENCH_NUM_OPS = 500
BENCH_SEED = 42
#: The machine the checked-in baseline was measured on (BENCH json
#: entries always name their topology; non-canonical machines are
#: reported without touching the baseline file).
BENCH_MACHINE = "knl"

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_simulator.json"


class PartitionedPolicy:
    """Launch up to ``ways`` ready ops on disjoint DEDICATED partitions —
    the shape of the paper runtime's Strategy 3 co-running."""

    def __init__(self, ways: int = 4) -> None:
        self.ways = ways
        self.name = f"partitioned({ways})"

    def on_step_begin(self, graph, machine) -> None:
        self._threads = max(1, machine.num_cores // self.ways)

    def select_launches(self, context):
        slots = self.ways - len(context.running)
        if slots <= 0:
            return []
        return [
            LaunchRequest(
                op_name=op.name,
                threads=self._threads,
                affinity=AffinityMode.SHARED,
                placement=PlacementKind.DEDICATED,
            )
            for op in context.ready[:slots]
        ]


#: name -> (policy factory, counts toward the speedup gate).  The serial
#: scenario has almost no contention work to skip, so it is reported but
#: not gated; the contention-heavy scenarios are what the incremental
#: rewrite targets.
SCENARIOS: dict[str, tuple[Callable, bool]] = {
    "serial-recommendation": (lambda machine: recommended_policy(machine), False),
    "partitioned-corun": (lambda machine: PartitionedPolicy(4), True),
    "oversubscribed-inter8": (
        # A quarter of the cores each, eight ways (17 threads on KNL).
        lambda machine: UniformPolicy(max(1, machine.num_cores // 4), 8),
        True,
    ),
    "tf-default": (lambda machine: default_policy(machine), True),
}


def _best_time(simulator_factory, graph, policy_factory, repeats: int):
    best = float("inf")
    result = None
    for _ in range(repeats):
        simulator = simulator_factory()
        policy = policy_factory()
        start = time.perf_counter()
        result = simulator.run_step(graph, policy)
        best = min(best, time.perf_counter() - start)
    return best, result


def run_simulator_benchmark(
    num_ops: int = BENCH_NUM_OPS,
    *,
    seed: int = BENCH_SEED,
    repeats: int = 3,
    machine: str = BENCH_MACHINE,
) -> dict:
    """Run every scenario through both simulator paths; return the report.

    ``machine`` names a machine-zoo topology; the baseline gates were
    calibrated on the KNL default, so other machines are for inspection.
    """
    machine_name = machine
    machine = get_machine(machine_name)
    graph = synthetic_graph(num_ops, seed=seed)
    scenarios = {}
    gated_speedups = []
    for name, (policy_factory, gated) in SCENARIOS.items():
        make_policy = lambda: policy_factory(machine)  # noqa: E731
        reference_seconds, reference = _best_time(
            lambda: StepSimulator(machine, incremental=False), graph, make_policy, repeats
        )
        incremental_seconds, incremental = _best_time(
            lambda: StepSimulator(machine), graph, make_policy, repeats
        )
        relative_error = abs(reference.step_time - incremental.step_time) / (
            reference.step_time
        )
        speedup = reference_seconds / incremental_seconds
        if gated:
            gated_speedups.append(speedup)
        scenarios[name] = {
            "policy": reference.policy_name,
            "gated": gated,
            "reference_seconds": round(reference_seconds, 6),
            "incremental_seconds": round(incremental_seconds, 6),
            "speedup": round(speedup, 2),
            "step_time": incremental.step_time,
            "step_time_relative_error": relative_error,
            "events": len(incremental.trace.events),
        }
    return {
        "benchmark": "simulator-fast-path",
        "generated": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "version": __version__,
        "python": platform.python_version(),
        "workload": {
            "graph": graph.name,
            "machine": machine_name,
            "num_ops": num_ops,
            "num_edges": graph.num_edges,
            "seed": seed,
            "repeats": repeats,
        },
        "speedup_gate": SPEEDUP_GATE,
        "headline_speedup": round(max(gated_speedups), 2),
        "scenarios": scenarios,
    }


def write_bench_json(report: dict, path: Path = BENCH_JSON) -> Path:
    path.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")
    return path


def format_report(report: dict) -> str:
    lines = [
        f"simulator fast-path benchmark — {report['workload']['num_ops']} ops, "
        f"seed {report['workload']['seed']} "
        f"on {report['workload'].get('machine', BENCH_MACHINE)} "
        f"(best of {report['workload']['repeats']})",
        f"{'scenario':<24} {'reference':>10} {'incremental':>12} {'speedup':>8}  gate",
    ]
    for name, s in report["scenarios"].items():
        gate = "gated" if s["gated"] else "info"
        lines.append(
            f"{name:<24} {s['reference_seconds'] * 1e3:>8.1f}ms "
            f"{s['incremental_seconds'] * 1e3:>10.1f}ms {s['speedup']:>7.2f}x  {gate}"
        )
    lines.append(
        f"headline speedup: {report['headline_speedup']}x "
        f"(gate: ≥{report['speedup_gate']}x)"
    )
    return "\n".join(lines)
