"""Benchmarks regenerating the GPU preliminary study (Fig. 5, Table VII)."""

from __future__ import annotations

from repro.experiments import fig5_gpu_intraop, table7_gpu_corun


def test_bench_fig5_gpu_launch_sweep(benchmark, once):
    """Figure 5: kernel time vs threads-per-block and vs number of blocks."""
    result = once(benchmark, fig5_gpu_intraop.run)
    print()
    print(fig5_gpu_intraop.format_report(result))
    for op in ("BiasAdd", "MaxPooling"):
        assert result.default_gap_threads(op) > 0.05


def test_bench_table7_gpu_stream_corun(benchmark, once):
    """Table VII: serial vs two-stream co-running for five operations."""
    result = once(benchmark, table7_gpu_corun.run)
    print()
    print(table7_gpu_corun.format_report(result))
    for op in table7_gpu_corun.PAPER_REFERENCE:
        assert 1.5 < result.speedup(op) <= 2.0
