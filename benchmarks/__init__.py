"""Benchmark harness for the simulated substrate.

``pytest benchmarks/ --benchmark-only`` reproduces the paper's tables
and figures; ``python -m benchmarks`` runs the quick simulator
performance tier and updates ``BENCH_simulator.json`` at the repo root.
"""
