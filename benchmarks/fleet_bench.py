"""The fleet-layer benchmark: policy makespans + determinism gate.

Replays the canonical fleet workload — a 50-job trace (arrival seed 42)
over the five-machine reference fleet — under every placement policy,
twice each, and enforces two gates:

* **determinism** — the second run of every policy must be byte-identical
  to the first (SHA-256 over the outcome's deterministic fields; the
  wall-clock scheduler-overhead figure is reported but excluded);
* **placement quality** — the interference-aware policy must beat the
  first-fit baseline's makespan on this trace.

Results are written to ``BENCH_fleet.json`` (makespans, speedups vs
first-fit, scheduler overhead, estimator traffic) so the repo tracks the
fleet layer's trajectory the same way ``BENCH_simulator.json`` and
``BENCH_experiments.json`` track the lower layers.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.api import DEFAULT_FLEET
from repro.fleet import FleetSimulator, generate_trace
from repro.sweep import SweepCache, SweepExecutor
from repro.version import __version__

#: The canonical benchmark workload.
BENCH_NUM_JOBS = 50
BENCH_ARRIVAL_SEED = 42
BENCH_MACHINES: tuple[str, ...] = DEFAULT_FLEET
BENCH_POLICIES: tuple[str, ...] = ("first-fit", "load-balanced", "interference-aware")

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_fleet.json"


def _digest(result) -> str:
    """SHA-256 over the outcome's deterministic fields."""
    payload = json.dumps(result.to_dict(include_overhead=False), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def run_fleet_benchmark(
    *,
    num_jobs: int = BENCH_NUM_JOBS,
    arrival_seed: int = BENCH_ARRIVAL_SEED,
    machines: tuple[str, ...] = BENCH_MACHINES,
    policies: tuple[str, ...] = BENCH_POLICIES,
    jobs: int | None = None,
) -> dict:
    """Run every policy twice and return the benchmark report."""
    jobs = jobs or os.cpu_count() or 1
    trace = generate_trace(num_jobs, seed=arrival_seed)
    report_policies: dict[str, dict] = {}
    deterministic = True
    with tempfile.TemporaryDirectory(prefix="repro-fleet-cache-") as cache_dir:
        for policy in policies:
            runs = []
            for _ in range(2):
                # A fresh executor per run: the second run exercises the
                # on-disk estimate cache the way a real re-invocation would.
                executor = SweepExecutor("process", jobs=jobs, cache=SweepCache(cache_dir))
                simulator = FleetSimulator(machines, policy=policy, executor=executor)
                start = time.perf_counter()
                result = simulator.run(trace)
                seconds = time.perf_counter() - start
                executor.close()
                runs.append((result, seconds))
            first, second = runs[0][0], runs[1][0]
            identical = _digest(first) == _digest(second)
            deterministic = deterministic and identical
            report_policies[policy] = {
                "makespan": first.makespan,
                "mean_wait_time": round(first.mean_wait_time, 6),
                "corun_rounds": sum(m.corun_rounds for m in first.machine_reports),
                "total_rounds": sum(m.rounds for m in first.machine_reports),
                "blacklisted_pairs": [list(p) for p in first.blacklisted_pairs],
                # Cold overhead includes on-demand estimate simulation;
                # the warm figure is the steady-state decision cost.
                "scheduler_overhead_seconds": round(
                    first.scheduler_overhead_seconds, 6
                ),
                "warm_scheduler_overhead_seconds": round(
                    second.scheduler_overhead_seconds, 6
                ),
                "estimates_requested": first.estimates_requested,
                "estimates_computed": first.estimates_computed,
                "cold_seconds": round(runs[0][1], 4),
                "warm_seconds": round(runs[1][1], 4),
                "rerun_identical": identical,
            }

    first_fit = report_policies.get("first-fit", {}).get("makespan")
    aware = report_policies.get("interference-aware", {}).get("makespan")
    return {
        "benchmark": "fleet-scheduling",
        "generated": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "version": __version__,
        "python": platform.python_version(),
        "workload": {
            "num_jobs": num_jobs,
            "arrival_seed": arrival_seed,
            "machines": list(machines),
            "jobs": jobs,
        },
        "policies": report_policies,
        "speedups_vs_first_fit": {
            policy: round(first_fit / phase["makespan"], 4)
            for policy, phase in report_policies.items()
            if first_fit is not None
        },
        "deterministic": deterministic,
        "interference_beats_first_fit": (
            aware < first_fit if aware is not None and first_fit is not None else None
        ),
    }


def write_bench_json(report: dict, path: Path = BENCH_JSON) -> Path:
    path.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")
    return path


def format_report(report: dict) -> str:
    workload = report["workload"]
    lines = [
        f"fleet scheduling benchmark — {workload['num_jobs']} jobs "
        f"(arrival seed {workload['arrival_seed']}) over "
        f"{len(workload['machines'])} machines",
        f"{'policy':<20} {'makespan':>10} {'speedup':>8} {'corun':>7} "
        f"{'overhead':>10} {'cold':>7} {'warm':>7} {'rerun=':>7}",
    ]
    for policy, phase in report["policies"].items():
        speedup = report["speedups_vs_first_fit"].get(policy, 1.0)
        lines.append(
            f"{policy:<20} {phase['makespan']:>9.2f}s {speedup:>7.2f}x "
            f"{phase['corun_rounds']:>3}/{phase['total_rounds']:<3} "
            f"{phase['warm_scheduler_overhead_seconds'] * 1e3:>8.1f}ms "
            f"{phase['cold_seconds']:>6.2f}s {phase['warm_seconds']:>6.2f}s "
            f"{str(phase['rerun_identical']):>7}"
        )
    lines.append(
        f"deterministic reruns: {report['deterministic']}; "
        f"interference-aware beats first-fit: {report['interference_beats_first_fit']}"
    )
    return "\n".join(lines)


def check_gates(report: dict) -> list[str]:
    """The failed-gate messages of one benchmark report (empty = pass)."""
    failures = []
    if not report["deterministic"]:
        bad = [
            policy
            for policy, phase in report["policies"].items()
            if not phase["rerun_identical"]
        ]
        failures.append(
            "fleet reruns diverged for a fixed (trace, policy, machines): "
            + ", ".join(bad)
        )
    if report["interference_beats_first_fit"] is False:
        failures.append(
            "interference-aware makespan "
            f"{report['policies']['interference-aware']['makespan']:.2f}s did not "
            "beat first-fit "
            f"{report['policies']['first-fit']['makespan']:.2f}s"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.fleet_bench",
        description="Fleet-layer benchmark (writes BENCH_fleet.json)",
    )
    parser.add_argument("--jobs", type=int, default=None, help="sweep-engine worker count")
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="print the report without updating BENCH_fleet.json",
    )
    args = parser.parse_args(argv)
    if args.jobs is not None and args.jobs < 1:
        parser.error("--jobs must be at least 1")

    report = run_fleet_benchmark(jobs=args.jobs)
    print(format_report(report))
    if not args.no_write:
        path = write_bench_json(report)
        print(f"wrote {path}")

    failures = check_gates(report)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
