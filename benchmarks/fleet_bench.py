"""The fleet-layer benchmark: policy makespans, compression, determinism.

Three suites, all writing into ``BENCH_fleet.json``:

* ``smoke`` (default, ``make fleet``) — replays the canonical fleet
  workload — a 50-job trace (arrival seed 42) over the five-machine
  reference fleet — under every placement policy, twice each, plus one
  reference-path (``compressed=False``) run per policy, and enforces:

  - **determinism** — the second run of every policy must be
    byte-identical to the first (SHA-256 over the outcome's
    deterministic fields; the wall-clock scheduler-overhead figure is
    reported but excluded);
  - **compression equivalence** — the round-compression fast path and
    the one-event-per-round reference loop must produce byte-identical
    outcomes for every policy;
  - **placement quality** — the interference-aware policy must beat the
    first-fit baseline's makespan on this trace;
  - **warm trend** — ``warm_seconds`` must not regress more than 2x
    against the committed ``BENCH_fleet.json`` baseline (ignored below
    a 50 ms noise floor).

* ``large`` (``make fleet-large``) — a 1,000-job / 50-machine trace of
  long-running jobs (600-1800 training steps each — the regime the
  round-compression fast path exists for), run through both simulator
  paths under the first-fit policy (no policy overhead, so the gate
  isolates simulator cost), enforcing byte-identical outcomes and a
  **>= 10x cold speedup** of the compressed path.

* ``xl`` (part of ``make fleet-large``) — a 5,000-job / 100-machine
  compressed-only smoke proving datacenter-scale traces stay
  interactive; records wall time, no reference baseline (the seed path
  would take minutes).  Also replays the trace through the sharded
  engine (4 shards) and enforces **byte-identical outcomes** — the
  sharded acceptance gate on the xl trace.

* ``xxl`` (``make fleet-xxl``) — the sharded-engine suite, writing the
  ``sharding`` section: a 100,000-job / 1,000-machine open-loop stream
  through the compressed path, once single-process and once sharded
  (process backend), enforcing:

  - **shard equivalence** — the sharded outcome must be byte-identical
    to the single-process outcome (always gated);
  - **speedup** — the sharded run must beat single-process by >= 3x on
    a >= 4-core host, >= 1.5x on 2-3 cores (the CI runner); reported
    but not gated on a single core;
  - **trend** — the sharded wall time must not regress more than 2.5x
    against the committed baseline (60 s noise floor: the committed
    numbers come from whatever machine last regenerated the file).

* ``faults`` (``make fleet-faults``) — replays the canonical 50-job
  trace under a fixed fault plan (a straggler window, a preemption, a
  crash and a graceful drain) for every policy, enforcing:

  - **fault equivalence** — the compressed path must stay byte-identical
    to the reference loop under faults;
  - **fault determinism** — the faulted rerun must be byte-identical;
  - **makespan monotonicity** — the faulted makespan must be >= the
    fault-free makespan for every policy (faults destroy work, they
    never create it).

  Results land in the ``fault_injection`` section of
  ``BENCH_fleet.json``.

* ``stream`` (``make fleet-stream``) — the open-loop admission suite,
  writing the ``streaming`` section:

  - **sustained overload** — a 600-job Poisson stream offered ~6x the
    fleet's service rate with a bounded queue, enforcing that the
    queue depth never exceeds the limit, that every offered job is
    accounted for (``completions + failures + rejections == offered``),
    that the controller actually shed work, and that the rerun is
    byte-identical;
  - **streamed == materialised** — the same overload trace run four
    ways (compressed/reference x streamed/pre-materialised), with and
    without a fault plan, must produce byte-identical outcomes;
  - **million-job smoke** — a 1,000,000-job stream through the
    compressed path with admission control, proving the lazy pull
    never materialises the trace and completes in bounded memory;
  - **trend** — the overload leg's wall time must not regress more
    than 2x against the committed baseline (same floor as ``smoke``).
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.api import DEFAULT_FLEET
from repro.fleet import FleetSimulator, StepTimeEstimator, generate_trace
from repro.fleet.simulator import OVERHEAD_KEYS
from repro.scenarios import Workload
from repro.store import record_run, resolve_store
from repro.store.reporting import merge_bench_report, render_bench_json
from repro.sweep import SweepCache, SweepExecutor
from repro.version import __version__

#: The canonical benchmark workload.
BENCH_NUM_JOBS = 50
BENCH_ARRIVAL_SEED = 42
BENCH_MACHINES: tuple[str, ...] = DEFAULT_FLEET
BENCH_POLICIES: tuple[str, ...] = ("first-fit", "load-balanced", "interference-aware")

#: The large-trace workload: long-running training jobs (hundreds of
#: steps, like the paper's real workloads) on small synthetic graphs, so
#: the distinct-estimate cost stays low and the benchmark measures the
#: event loop, not the profile step.  50 machines = the reference fleet
#: x10; mean interarrival keeps the fleet at sane (~50%) utilisation —
#: an oversubscribed fleet re-consults the policy every round, which no
#: exact-equivalence fast path may skip.
LARGE_JOB_MIX: tuple[Workload, ...] = (
    Workload(synthetic_ops=16, synthetic_width=4, heavy_fraction=0.6, label="train-heavy"),
    Workload(synthetic_ops=24, synthetic_width=4, heavy_fraction=0.3, label="train-wide"),
    Workload(synthetic_ops=12, synthetic_width=2, heavy_fraction=0.1, label="train-light"),
)
LARGE_NUM_JOBS = 1000
LARGE_MACHINES: tuple[str, ...] = DEFAULT_FLEET * 10
LARGE_MIN_STEPS, LARGE_MAX_STEPS = 900, 2700
LARGE_INTERARRIVAL = 54.0
LARGE_SEED = 42
#: Both policies run through both paths; the speedup gate applies to
#: the load-balanced run — it spreads jobs (no co-run rounds), so the
#: comparison isolates pure event-loop cost with no policy/interference
#: variance.  The first-fit run packs machines and keeps ~half the
#: rounds co-running, exercising the ordered interference replay; its
#: speedup is reported but not gated.
LARGE_POLICIES: tuple[str, ...] = ("load-balanced", "first-fit")
LARGE_GATED_POLICY = "load-balanced"
#: The compressed path must beat the reference path by this much (cold).
LARGE_SPEEDUP_GATE = 10.0

XL_NUM_JOBS = 5000
XL_MACHINES: tuple[str, ...] = DEFAULT_FLEET * 20
XL_INTERARRIVAL = 54.0
#: The xl sharded-equality leg: enough shards to exercise the merge
#: without dominating the smoke's wall time.
XL_SHARDS = 4

#: The ``xxl`` suite: the ROADMAP's 100k-job / 1,000-machine target,
#: streamed open-loop (the trace is never materialised) through the
#: compressed path.  Short jobs at a high arrival rate (~50% fleet
#: utilisation) put the cost where sharding helps: with long jobs the
#: wall time is the per-round accounting both engines share (the
#: ``large`` suite's regime, already solved by round compression), while
#: a dense event stream isolates what divides them — the single-process
#: path pays an O(machines) ``sync_to`` sweep per event, the sharded
#: engine an O(due log) calendar pop.
XXL_NUM_JOBS = 100_000
XXL_MACHINES: tuple[str, ...] = DEFAULT_FLEET * 200
XXL_SEED = 42
XXL_INTERARRIVAL = 0.02
XXL_MIN_STEPS, XXL_MAX_STEPS = 3, 10
#: Sharded-vs-single-process speedup gates by host width.  Below two
#: cores the speedup is reported, not gated.
XXL_SPEEDUP_GATE = 3.0
XXL_GATE_MIN_CORES = 4
XXL_SMALL_SPEEDUP_GATE = 1.5
XXL_SMALL_GATE_MIN_CORES = 2
#: The xxl trend gate is cross-machine like the smoke one, but the legs
#: run minutes, not milliseconds — a generous factor and floor keep it
#: an algorithmic-regression tripwire rather than a hardware lottery.
XXL_TREND_FACTOR = 2.5
XXL_TREND_FLOOR_SECONDS = 60.0

#: The ``stream`` suite's sustained-overload leg: a Poisson stream
#: offered well past the five-machine fleet's service rate (the smoke
#: trace drains at ~2 s mean interarrival; 0.35 s is ~6x that), with a
#: bounded queue so the backlog sheds instead of growing without bound.
#: Synthetic job mix, like ``large``: the suite measures the streaming
#: event loop and admission path, not graph profiling.
STREAM_NUM_JOBS = 600
STREAM_SEED = 42
STREAM_INTERARRIVAL = 0.35
STREAM_QUEUE_LIMIT = 24
STREAM_MIN_STEPS, STREAM_MAX_STEPS = 3, 10
#: The equivalence leg replays a shorter stream four ways (compressed /
#: reference x streamed / pre-materialised), with and without faults.
STREAM_EQ_NUM_JOBS = 150
#: Machine-only fault plan for the equivalence leg (no job references:
#: streamed job names depend on the workload mix).
STREAM_FAULT_PLAN: dict = {
    "events": [
        {"kind": "straggler", "time": 10.0, "machine": "m0", "factor": 2.0, "duration": 30.0},
        {"kind": "leave", "time": 25.0, "machine": "m2"},
        {"kind": "crash", "time": 40.0, "machine": "m1"},
    ],
}
#: The million-job smoke: short jobs, heavy overload, tight queue — the
#: regime where almost every arrival is shed at the door, so the run is
#: dominated by the lazy arrival pull itself.
MILLION_NUM_JOBS = 1_000_000
MILLION_INTERARRIVAL = 0.02
MILLION_QUEUE_LIMIT = 16

#: The canonical fault plan for the ``faults`` suite: one event of every
#: destructive kind, timed inside the seed-42 trace's arrival span
#: (~4.7 s to ~85.8 s) so each one lands on a busy fleet.  Joins are
#: deliberately absent — extra capacity could legitimately *shrink* the
#: makespan, which would invalidate the monotonicity gate.
BENCH_FAULT_PLAN: dict = {
    "max_retries": 3,
    "events": [
        {"kind": "straggler", "time": 20.0, "machine": "m0", "factor": 2.0, "duration": 40.0},
        {"kind": "leave", "time": 50.0, "machine": "m2"},
        {"kind": "crash", "time": 70.0, "machine": "m1"},
        {"kind": "preempt", "time": 80.0, "job": "job-040-dcgan"},
    ],
}

#: The ``resilience`` suite (``make chaos``): checkpoint overhead on an
#: xl-scale open-loop stream, a kill-and-resume smoke, and seeded chaos
#: legs over the sweep executor and the sharded engine.  The overhead
#: gate is self-relative (checkpointed vs plain warm time on the same
#: host), so no cross-machine floor is needed.
RESILIENCE_NUM_JOBS = 4 * XL_NUM_JOBS
RESILIENCE_INTERARRIVAL = 0.1
RESILIENCE_MIN_STEPS, RESILIENCE_MAX_STEPS = 3, 10
RESILIENCE_QUEUE_LIMIT = 200
#: Snapshot every this many processed events on the overhead leg.  With
#: background (forked) writers the parent only pays for the state
#: capture plus the fork's copy-on-write traffic — tens of ms per
#: snapshot at this scale — while the ~2 MB pickle and its
#: cache-pollution aftermath land in the throwaway child; this interval
#: checkpoints the ~52k-event stream twice, keeping the residual
#: parent-side cost comfortably inside the gate on a noisy host.
RESILIENCE_CKPT_INTERVAL = 20_000
RESILIENCE_OVERHEAD_GATE = 1.15
#: Plain/checkpointed timing pairs on the overhead leg.  Each pair runs
#: in a fresh interpreter (allocator and cache state from earlier runs
#: in the same process skews in-process timing more than the checkpoint
#: cost itself) and the pair order flips every rep; the reported ratio
#: is the median of the within-pair ratios, and an odd rep count keeps
#: the median a single real measurement, robust to one noisy outlier.
RESILIENCE_OVERHEAD_REPS = 5
#: The chaos legs' seeded plan knobs (see repro.resilience.chaos).
CHAOS_SEED = 7
CHAOS_SWEEP_TASKS = 48

#: Trend gate: warm reruns must not get more than 2x slower than the
#: committed baseline.  The committed numbers come from whatever
#: machine last regenerated BENCH_fleet.json, so the floor is generous
#: (0.25 s vs the ~10 ms healthy warm time): the check is an
#: order-of-magnitude tripwire for algorithmic regressions on the warm
#: path, not a cross-machine micro-benchmark.
TREND_FACTOR = 2.0
TREND_FLOOR_SECONDS = 0.25

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_fleet.json"


def _digest(result) -> str:
    """SHA-256 over the outcome's deterministic fields."""
    payload = json.dumps(result.to_dict(include_overhead=False), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def run_fleet_benchmark(
    *,
    num_jobs: int = BENCH_NUM_JOBS,
    arrival_seed: int = BENCH_ARRIVAL_SEED,
    machines: tuple[str, ...] = BENCH_MACHINES,
    policies: tuple[str, ...] = BENCH_POLICIES,
    jobs: int | None = None,
    store=None,
) -> dict:
    """Run every policy twice (plus one reference-path run) and return the
    smoke-suite benchmark report.

    With a run store active (``store=``, or ``$REPRO_STORE_DIR``), each
    policy's first run is recorded as a ``fleet`` record (full history,
    digest excluding overhead) plus one ``bench``/``fleet-smoke`` section
    record linking them — ``python -m repro report bench fleet-smoke``
    regenerates the committed section from these without re-simulating.
    Recording happens whether or not the gates pass; the stored section
    always describes the *latest* run, the committed file the last one
    that passed.
    """
    jobs = jobs or os.cpu_count() or 1
    trace = generate_trace(num_jobs, seed=arrival_seed)
    report_policies: dict[str, dict] = {}
    first_results: dict[str, object] = {}
    deterministic = True
    compression_equivalent = True
    with tempfile.TemporaryDirectory(prefix="repro-fleet-cache-") as cache_dir:
        for policy in policies:
            runs = []
            for _ in range(2):
                # A fresh executor per run: the second run exercises the
                # on-disk estimate cache the way a real re-invocation would.
                executor = SweepExecutor("process", jobs=jobs, cache=SweepCache(cache_dir))
                simulator = FleetSimulator(machines, policy=policy, executor=executor)
                start = time.perf_counter()
                result = simulator.run(trace)
                seconds = time.perf_counter() - start
                executor.close()
                runs.append((result, seconds))
            # One seed-path run per policy: the fast path must be a pure
            # optimisation, byte-identical on the deterministic fields.
            executor = SweepExecutor("process", jobs=jobs, cache=SweepCache(cache_dir))
            reference = FleetSimulator(
                machines, policy=policy, executor=executor, compressed=False
            )
            start = time.perf_counter()
            reference_result = reference.run(trace)
            reference_seconds = time.perf_counter() - start
            executor.close()
            first, second = runs[0][0], runs[1][0]
            first_results[policy] = first
            identical = _digest(first) == _digest(second)
            deterministic = deterministic and identical
            paths_identical = _digest(first) == _digest(reference_result)
            compression_equivalent = compression_equivalent and paths_identical
            report_policies[policy] = {
                "makespan": first.makespan,
                "mean_wait_time": round(first.mean_wait_time, 6),
                "corun_rounds": sum(m.corun_rounds for m in first.machine_reports),
                "total_rounds": sum(m.rounds for m in first.machine_reports),
                "blacklisted_pairs": [list(p) for p in first.blacklisted_pairs],
                # Cold overhead includes on-demand estimate simulation;
                # the warm figure is the steady-state decision cost.
                "scheduler_overhead_seconds": round(
                    first.scheduler_overhead_seconds, 6
                ),
                "warm_scheduler_overhead_seconds": round(
                    second.scheduler_overhead_seconds, 6
                ),
                "estimates_requested": first.estimates_requested,
                "estimates_computed": first.estimates_computed,
                "events_processed": first.events_processed,
                "reference_events_processed": reference_result.events_processed,
                "cold_seconds": round(runs[0][1], 4),
                "warm_seconds": round(runs[1][1], 4),
                "reference_warm_seconds": round(reference_seconds, 4),
                "rerun_identical": identical,
                "compressed_equals_reference": paths_identical,
            }

    first_fit = report_policies.get("first-fit", {}).get("makespan")
    aware = report_policies.get("interference-aware", {}).get("makespan")
    report = {
        "benchmark": "fleet-scheduling",
        "generated": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "version": __version__,
        "python": platform.python_version(),
        "workload": {
            "num_jobs": num_jobs,
            "arrival_seed": arrival_seed,
            "machines": list(machines),
            "jobs": jobs,
        },
        "policies": report_policies,
        "speedups_vs_first_fit": {
            policy: round(first_fit / phase["makespan"], 4)
            for policy, phase in report_policies.items()
            if first_fit is not None
        },
        "deterministic": deterministic,
        "compression_equivalent": compression_equivalent,
        "interference_beats_first_fit": (
            aware < first_fit if aware is not None and first_fit is not None else None
        ),
    }
    resolved = resolve_store(store)
    if resolved is not None:
        workload_config = {
            "suite": "smoke",
            "num_jobs": num_jobs,
            "arrival_seed": arrival_seed,
            "machines": list(machines),
        }
        run_ids: dict[str, str] = {}
        for policy in policies:
            run_id = record_run(
                resolved,
                "fleet",
                f"bench-smoke/{policy}",
                config={**workload_config, "policy": policy},
                payload=first_results[policy],
                digest_excludes=OVERHEAD_KEYS,
                extras={"bench_row": report_policies[policy]},
            )
            if run_id is not None:
                run_ids[policy] = run_id
        record_run(
            resolved,
            "bench",
            "fleet-smoke",
            config={**workload_config, "policies": list(policies)},
            payload=report,
            extras={"runs": run_ids},
        )
    return report


def run_large_benchmark(
    *,
    num_jobs: int = LARGE_NUM_JOBS,
    machines: tuple[str, ...] = LARGE_MACHINES,
    seed: int = LARGE_SEED,
    policies: tuple[str, ...] = LARGE_POLICIES,
) -> dict:
    """Cold compressed-vs-reference comparison on the 1,000-job trace."""
    trace = generate_trace(
        num_jobs,
        seed=seed,
        workloads=LARGE_JOB_MIX,
        min_steps=LARGE_MIN_STEPS,
        max_steps=LARGE_MAX_STEPS,
        mean_interarrival=LARGE_INTERARRIVAL,
    )
    policy_reports: dict[str, dict] = {}
    for policy in policies:
        runs: dict[str, dict] = {}
        digests: dict[str, str] = {}
        # The compressed leg is short enough that one scheduling hiccup
        # on a shared CI runner could flip the speedup gate; best-of-2
        # (each run fully cold: fresh estimator) removes that flake.
        for label, compressed, repeats in (
            ("compressed", True, 2),
            ("reference", False, 1),
        ):
            best = None
            for _ in range(repeats):
                simulator = FleetSimulator(
                    machines,
                    policy=policy,
                    estimator=StepTimeEstimator(),
                    compressed=compressed,
                )
                start = time.perf_counter()
                result = simulator.run(trace)
                seconds = time.perf_counter() - start
                if best is None or seconds < best[1]:
                    best = (result, seconds)
            result, seconds = best
            digests[label] = _digest(result)
            runs[label] = {
                "cold_seconds": round(seconds, 4),
                "events_processed": result.events_processed,
                "total_rounds": sum(m.rounds for m in result.machine_reports),
                "corun_rounds": sum(m.corun_rounds for m in result.machine_reports),
                "makespan": result.makespan,
                "estimates_computed": result.estimates_computed,
            }
        speedup = runs["reference"]["cold_seconds"] / max(
            runs["compressed"]["cold_seconds"], 1e-9
        )
        policy_reports[policy] = {
            "runs": runs,
            "cold_speedup": round(speedup, 2),
            "identical": digests["compressed"] == digests["reference"],
            "gated": policy == LARGE_GATED_POLICY,
        }
    return {
        "workload": {
            "num_jobs": num_jobs,
            "machines": len(machines),
            "steps": [LARGE_MIN_STEPS, LARGE_MAX_STEPS],
            "mean_interarrival": LARGE_INTERARRIVAL,
            "seed": seed,
        },
        "policies": policy_reports,
    }


def run_xl_smoke(
    *,
    num_jobs: int = XL_NUM_JOBS,
    machines: tuple[str, ...] = XL_MACHINES,
    seed: int = LARGE_SEED,
) -> dict:
    """Compressed-only 5,000-job / 100-machine smoke (no seed baseline).

    The trace also replays through the sharded engine
    (:mod:`repro.fleet.sharding`, :data:`XL_SHARDS` shards) — the
    acceptance gate that sharding stays byte-identical on the xl trace.
    """
    trace = generate_trace(
        num_jobs,
        seed=seed,
        workloads=LARGE_JOB_MIX,
        min_steps=LARGE_MIN_STEPS,
        max_steps=LARGE_MAX_STEPS,
        mean_interarrival=XL_INTERARRIVAL,
    )
    simulator = FleetSimulator(
        machines, policy="first-fit", estimator=StepTimeEstimator(), compressed=True
    )
    start = time.perf_counter()
    result = simulator.run(trace)
    seconds = time.perf_counter() - start
    sharded_sim = FleetSimulator(
        machines,
        policy="first-fit",
        estimator=StepTimeEstimator(),
        compressed=True,
        shards=XL_SHARDS,
    )
    start = time.perf_counter()
    sharded = sharded_sim.run(trace)
    sharded_seconds = time.perf_counter() - start
    return {
        "workload": {
            "num_jobs": num_jobs,
            "machines": len(machines),
            "steps": [LARGE_MIN_STEPS, LARGE_MAX_STEPS],
            "mean_interarrival": XL_INTERARRIVAL,
            "seed": seed,
            "policy": "first-fit",
        },
        "cold_seconds": round(seconds, 4),
        "events_processed": result.events_processed,
        "total_rounds": sum(m.rounds for m in result.machine_reports),
        "completions": len(result.completions),
        "makespan": result.makespan,
        "sharded_seconds": round(sharded_seconds, 4),
        "shards": XL_SHARDS,
        "sharded_identical": _digest(sharded) == _digest(result),
    }


def run_xxl_benchmark(
    *,
    num_jobs: int = XXL_NUM_JOBS,
    machines: tuple[str, ...] = XXL_MACHINES,
    seed: int = XXL_SEED,
    shards: int | None = None,
    backend: str = "process",
) -> dict:
    """Single-process vs sharded on the 100k-job / 1,000-machine stream.

    Both legs run the identical open-loop Poisson stream through the
    compressed path, each with a fresh cold estimator (symmetric cost);
    the sharded leg defaults to one shard per core (capped at 8) on the
    process backend.  The report carries the byte-identity verdict and
    the speedup; :func:`check_xxl_gates` picks the gate by host width.
    """
    from repro.fleet import PoissonArrivals

    cores = os.cpu_count() or 1
    if shards is None:
        shards = max(2, min(cores, 8))

    def stream():
        return PoissonArrivals(
            num_jobs=num_jobs,
            seed=seed,
            mean_interarrival=XXL_INTERARRIVAL,
            workloads=LARGE_JOB_MIX,
            min_steps=XXL_MIN_STEPS,
            max_steps=XXL_MAX_STEPS,
        )

    legs: dict[str, dict] = {}
    digests: dict[str, str] = {}
    for label, kwargs in (
        ("single_process", {}),
        ("sharded", {"shards": shards, "shard_backend": backend}),
    ):
        # Best-of-2 per leg (each fully cold: fresh estimator), for the
        # same reason as the large suite: one scheduling hiccup on a
        # shared host must not flip the speedup gate.
        best = None
        for _ in range(2):
            simulator = FleetSimulator(
                machines,
                policy="first-fit",
                estimator=StepTimeEstimator(),
                compressed=True,
                **kwargs,
            )
            start = time.perf_counter()
            result = simulator.run(stream())
            seconds = time.perf_counter() - start
            if best is None or seconds < best[1]:
                best = (result, seconds)
        result, seconds = best
        digests[label] = _digest(result)
        legs[label] = {
            "cold_seconds": round(seconds, 4),
            "events_processed": result.events_processed,
            "total_rounds": sum(m.rounds for m in result.machine_reports),
            "corun_rounds": sum(m.corun_rounds for m in result.machine_reports),
            "completions": len(result.completions),
            "makespan": round(result.makespan, 2),
        }
    speedup = legs["single_process"]["cold_seconds"] / max(
        legs["sharded"]["cold_seconds"], 1e-9
    )
    if cores >= XXL_GATE_MIN_CORES:
        gate = XXL_SPEEDUP_GATE
    elif cores >= XXL_SMALL_GATE_MIN_CORES:
        gate = XXL_SMALL_SPEEDUP_GATE
    else:
        gate = None
    return {
        "workload": {
            "num_jobs": num_jobs,
            "machines": len(machines),
            "steps": [XXL_MIN_STEPS, XXL_MAX_STEPS],
            "mean_interarrival": XXL_INTERARRIVAL,
            "seed": seed,
            "policy": "first-fit",
            "arrivals": "poisson (open loop)",
        },
        "shards": shards,
        "backend": backend,
        "cores": cores,
        "single_process": legs["single_process"],
        "sharded": legs["sharded"],
        "speedup": round(speedup, 2),
        "speedup_gate": gate,
        "identical": digests["sharded"] == digests["single_process"],
    }


def format_xxl_report(report: dict) -> str:
    workload = report["workload"]
    single = report["single_process"]
    sharded = report["sharded"]
    gate = report["speedup_gate"]
    gate_text = f"(gate >= {gate:g}x)" if gate is not None else "(not gated: 1 core)"
    return "\n".join(
        [
            f"fleet XXL sharding benchmark — {workload['num_jobs']} jobs "
            f"streamed over {workload['machines']} machines "
            f"({report['cores']} cores)",
            f"  single-process: {single['cold_seconds']:>8.2f}s, "
            f"{single['events_processed']} events for "
            f"{single['total_rounds']} rounds, "
            f"{single['completions']} completions",
            f"  sharded       : {sharded['cold_seconds']:>8.2f}s "
            f"({report['shards']} shards, {report['backend']} backend)",
            f"  speedup {report['speedup']}x {gate_text}; "
            f"byte-identical outcomes: {report['identical']}",
        ]
    )


def check_xl_gates(report: dict) -> list[str]:
    """The failed-gate messages of one xl-smoke report (empty = pass)."""
    if not report.get("sharded_identical", True):
        return ["xl trace: sharded and single-process outcomes diverged"]
    return []


def check_xxl_gates(report: dict) -> list[str]:
    """The failed-gate messages of one xxl-suite report (empty = pass)."""
    failures = []
    if not report["identical"]:
        failures.append(
            "xxl sharding: sharded and single-process outcomes diverged"
        )
    gate = report["speedup_gate"]
    if gate is not None and report["speedup"] < gate:
        failures.append(
            f"xxl sharding: speedup {report['speedup']}x below the {gate:g}x "
            f"gate ({report['cores']} cores, {report['shards']} shards)"
        )
    return failures


def check_xxl_trend(report: dict, baseline_path: Path = BENCH_JSON) -> list[str]:
    """Sharded wall-time regressions vs the committed ``sharding`` section."""
    if not baseline_path.exists():
        return []
    try:
        baseline = json.loads(baseline_path.read_text())
    except (OSError, json.JSONDecodeError):
        return []
    old = baseline.get("sharding", {}).get("sharded", {}).get("cold_seconds")
    new = report.get("sharded", {}).get("cold_seconds")
    if old is None or new is None:
        return []
    if new > XXL_TREND_FLOOR_SECONDS and new > XXL_TREND_FACTOR * old:
        return [
            f"xxl sharded cold_seconds regressed {old:.1f}s -> {new:.1f}s "
            f"(more than {XXL_TREND_FACTOR:g}x the committed baseline)"
        ]
    return []


def run_faults_benchmark(
    *,
    num_jobs: int = BENCH_NUM_JOBS,
    arrival_seed: int = BENCH_ARRIVAL_SEED,
    machines: tuple[str, ...] = BENCH_MACHINES,
    policies: tuple[str, ...] = BENCH_POLICIES,
    fault_plan: dict | None = None,
) -> dict:
    """Replay the canonical trace under the canonical fault plan.

    Per policy: one fault-free compressed run (the monotonicity
    baseline), two faulted compressed runs (determinism) and one faulted
    reference run (equivalence).  One estimator is shared across all
    runs — faults must not pollute the step-time cache, so sharing it is
    itself part of the test surface.
    """
    from repro.fleet.faults import FaultPlan, resolve_fault_plan

    plan = resolve_fault_plan(fault_plan or BENCH_FAULT_PLAN)
    empty_plan = FaultPlan(events=())
    trace = generate_trace(num_jobs, seed=arrival_seed)
    estimator = StepTimeEstimator()
    policy_reports: dict[str, dict] = {}
    equivalent = deterministic = monotone = True
    for policy in policies:
        def simulate(*, compressed: bool, faults):
            simulator = FleetSimulator(
                machines, policy=policy, estimator=estimator, compressed=compressed
            )
            start = time.perf_counter()
            result = simulator.run(trace, faults=faults)
            return result, time.perf_counter() - start

        clean, _ = simulate(compressed=True, faults=empty_plan)
        faulted, seconds = simulate(compressed=True, faults=plan)
        rerun, _ = simulate(compressed=True, faults=plan)
        reference, reference_seconds = simulate(compressed=False, faults=plan)
        identical = _digest(faulted) == _digest(reference)
        rerun_identical = _digest(faulted) == _digest(rerun)
        monotonic = faulted.makespan >= clean.makespan
        equivalent = equivalent and identical
        deterministic = deterministic and rerun_identical
        monotone = monotone and monotonic
        policy_reports[policy] = {
            "makespan": faulted.makespan,
            "fault_free_makespan": clean.makespan,
            "makespan_monotone": monotonic,
            "retries": faulted.retries,
            "preemptions": faulted.preemptions,
            "lost_steps": faulted.lost_steps,
            "failed_jobs": [f.job for f in faulted.failures],
            "events_processed": faulted.events_processed,
            "reference_events_processed": reference.events_processed,
            "cold_seconds": round(seconds, 4),
            "reference_seconds": round(reference_seconds, 4),
            "compressed_equals_reference": identical,
            "rerun_identical": rerun_identical,
        }
    return {
        "workload": {
            "num_jobs": num_jobs,
            "arrival_seed": arrival_seed,
            "machines": list(machines),
        },
        "fault_plan": plan.to_dict(),
        "policies": policy_reports,
        "compression_equivalent": equivalent,
        "deterministic": deterministic,
        "makespan_monotone": monotone,
    }


def format_faults_report(report: dict) -> str:
    workload = report["workload"]
    plan = report["fault_plan"]
    lines = [
        f"fleet fault-injection benchmark — {workload['num_jobs']} jobs "
        f"(arrival seed {workload['arrival_seed']}) over "
        f"{len(workload['machines'])} machines, "
        f"{len(plan['events'])} fault events",
        f"{'policy':<20} {'makespan':>10} {'clean':>9} {'retry':>6} "
        f"{'preempt':>8} {'lost':>5} {'failed':>7} {'=ref':>5} {'mono':>5}",
    ]
    for policy, phase in report["policies"].items():
        lines.append(
            f"{policy:<20} {phase['makespan']:>9.2f}s "
            f"{phase['fault_free_makespan']:>8.2f}s "
            f"{phase['retries']:>6} {phase['preemptions']:>8} "
            f"{phase['lost_steps']:>5} {len(phase['failed_jobs']):>7} "
            f"{str(phase['compressed_equals_reference']):>5} "
            f"{str(phase['makespan_monotone']):>5}"
        )
    lines.append(
        f"compressed == reference under faults: {report['compression_equivalent']}; "
        f"deterministic: {report['deterministic']}; "
        f"makespan monotone: {report['makespan_monotone']}"
    )
    return "\n".join(lines)


def check_faults_gates(report: dict) -> list[str]:
    """The failed-gate messages of one faults-suite report (empty = pass)."""
    failures = []
    for policy, phase in report["policies"].items():
        if not phase["compressed_equals_reference"]:
            failures.append(
                f"fault injection ({policy}): compressed and reference outcomes diverged"
            )
        if not phase["rerun_identical"]:
            failures.append(
                f"fault injection ({policy}): faulted rerun diverged for a fixed plan"
            )
        if not phase["makespan_monotone"]:
            failures.append(
                f"fault injection ({policy}): faulted makespan "
                f"{phase['makespan']:.2f}s fell below the fault-free "
                f"{phase['fault_free_makespan']:.2f}s"
            )
    return failures


def run_stream_benchmark(
    *,
    num_jobs: int = STREAM_NUM_JOBS,
    seed: int = STREAM_SEED,
    machines: tuple[str, ...] = BENCH_MACHINES,
    million_jobs: int = MILLION_NUM_JOBS,
) -> dict:
    """The open-loop admission suite: overload, equivalence, 1M smoke."""
    from repro.fleet import AdmissionController, PoissonArrivals
    from repro.fleet.faults import resolve_fault_plan

    def overload_process(n=num_jobs):
        return PoissonArrivals(
            num_jobs=n,
            seed=seed,
            mean_interarrival=STREAM_INTERARRIVAL,
            workloads=LARGE_JOB_MIX,
            min_steps=STREAM_MIN_STEPS,
            max_steps=STREAM_MAX_STEPS,
        )

    admission = AdmissionController(queue_limit=STREAM_QUEUE_LIMIT)
    estimator = StepTimeEstimator()

    # -- sustained overload: bounded queue, full accounting, determinism --
    overload_runs = []
    for _ in range(2):
        simulator = FleetSimulator(
            machines,
            policy="first-fit",
            estimator=estimator,
            compressed=True,
            admission=admission,
        )
        start = time.perf_counter()
        result = simulator.run(overload_process())
        overload_runs.append((result, time.perf_counter() - start))
    first, seconds = overload_runs[0]
    rerun_identical = _digest(first) == _digest(overload_runs[1][0])
    accounted = (
        len(first.completions) + len(first.failures) + len(first.rejections)
        == first.num_jobs
    )
    overload_report = {
        "offered": first.num_jobs,
        "completions": len(first.completions),
        "failures": len(first.failures),
        "rejections": len(first.rejections),
        "shed_rate": round(first.shed_rate, 4),
        "queue_limit": STREAM_QUEUE_LIMIT,
        "peak_queue_depth": first.peak_queue_depth,
        "p50_wait": first.wait_percentiles["p50"],
        "p95_wait": first.wait_percentiles["p95"],
        "p99_wait": first.wait_percentiles["p99"],
        "p99_turnaround": first.turnaround_percentiles["p99"],
        "makespan": first.makespan,
        "events_processed": first.events_processed,
        "seconds": round(seconds, 4),
        "warm_seconds": round(overload_runs[1][1], 4),
        "rerun_identical": rerun_identical,
        "accounting_exact": accounted,
        "depth_bounded": first.peak_queue_depth <= STREAM_QUEUE_LIMIT,
        "shed_nonzero": len(first.rejections) > 0,
    }

    # -- streamed == materialised, both paths, with and without faults ----
    trace = overload_process(STREAM_EQ_NUM_JOBS).materialize()
    plan = resolve_fault_plan(STREAM_FAULT_PLAN)
    equivalence: dict[str, bool] = {}
    for fault_label, faults in (("fault-free", None), ("faulted", plan)):
        digests = set()
        for compressed in (False, True):
            for streamed in (False, True):
                simulator = FleetSimulator(
                    machines,
                    policy="first-fit",
                    estimator=estimator,
                    compressed=compressed,
                    admission=admission,
                )
                source = overload_process(STREAM_EQ_NUM_JOBS) if streamed else trace
                digests.add(_digest(simulator.run(source, faults=faults)))
        equivalence[fault_label] = len(digests) == 1

    # -- the million-job smoke: compressed only, never materialised ------
    simulator = FleetSimulator(
        machines,
        policy="first-fit",
        estimator=estimator,
        compressed=True,
        admission=AdmissionController(queue_limit=MILLION_QUEUE_LIMIT),
    )
    start = time.perf_counter()
    million = simulator.run(
        PoissonArrivals(
            num_jobs=million_jobs,
            seed=seed,
            mean_interarrival=MILLION_INTERARRIVAL,
            workloads=LARGE_JOB_MIX,
            min_steps=1,
            max_steps=2,
        )
    )
    million_seconds = time.perf_counter() - start
    million_report = {
        "offered": million.num_jobs,
        "completions": len(million.completions),
        "rejections": len(million.rejections),
        "shed_rate": round(million.shed_rate, 4),
        "peak_queue_depth": million.peak_queue_depth,
        "makespan": round(million.makespan, 2),
        "events_processed": million.events_processed,
        "seconds": round(million_seconds, 2),
        "accounting_exact": (
            len(million.completions)
            + len(million.failures)
            + len(million.rejections)
            == million.num_jobs
        ),
    }

    return {
        "workload": {
            "num_jobs": num_jobs,
            "seed": seed,
            "mean_interarrival": STREAM_INTERARRIVAL,
            "machines": list(machines),
            "policy": "first-fit",
        },
        "overload": overload_report,
        "equivalence": equivalence,
        "million_smoke": million_report,
    }


def format_stream_report(report: dict) -> str:
    overload = report["overload"]
    million = report["million_smoke"]
    lines = [
        f"fleet streaming benchmark — {overload['offered']} jobs offered at "
        f"{report['workload']['mean_interarrival']}s mean interarrival over "
        f"{len(report['workload']['machines'])} machines "
        f"(queue limit {overload['queue_limit']})",
        f"  overload : {overload['completions']} done, "
        f"{overload['rejections']} shed ({overload['shed_rate']:.0%}), "
        f"peak queue {overload['peak_queue_depth']}, "
        f"p99 wait {overload['p99_wait']:.2f}s, "
        f"{overload['seconds']:.2f}s wall",
        f"  gates    : depth bounded {overload['depth_bounded']}, "
        f"accounting exact {overload['accounting_exact']}, "
        f"shed nonzero {overload['shed_nonzero']}, "
        f"rerun identical {overload['rerun_identical']}",
        f"  equivalence (4-way, streamed x compressed): "
        f"fault-free {report['equivalence']['fault-free']}, "
        f"faulted {report['equivalence']['faulted']}",
        f"  1M smoke : {million['offered']} offered, "
        f"{million['completions']} done, {million['rejections']} shed "
        f"({million['shed_rate']:.0%}), {million['seconds']:.1f}s wall, "
        f"accounting exact {million['accounting_exact']}",
    ]
    return "\n".join(lines)


def check_stream_gates(report: dict) -> list[str]:
    """The failed-gate messages of one stream-suite report (empty = pass)."""
    failures = []
    overload = report["overload"]
    if not overload["depth_bounded"]:
        failures.append(
            f"streaming: peak queue depth {overload['peak_queue_depth']} "
            f"exceeded the admission limit {overload['queue_limit']}"
        )
    if not overload["accounting_exact"]:
        failures.append(
            "streaming: completions + failures + rejections != offered jobs"
        )
    if not overload["shed_nonzero"]:
        failures.append(
            "streaming: sustained overload shed nothing (admission inert?)"
        )
    if not overload["rerun_identical"]:
        failures.append("streaming: overload rerun diverged for fixed inputs")
    for label, identical in report["equivalence"].items():
        if not identical:
            failures.append(
                f"streaming ({label}): streamed/materialised x compressed/"
                "reference outcomes diverged"
            )
    if not report["million_smoke"]["accounting_exact"]:
        failures.append("streaming: million-job smoke lost jobs")
    return failures


def check_stream_trend(report: dict, baseline_path: Path = BENCH_JSON) -> list[str]:
    """Wall-time regressions of the overload leg vs the committed baseline."""
    if not baseline_path.exists():
        return []
    try:
        baseline = json.loads(baseline_path.read_text())
    except (OSError, json.JSONDecodeError):
        return []
    old = baseline.get("streaming", {}).get("overload", {}).get("warm_seconds")
    new = report.get("overload", {}).get("warm_seconds")
    if old is None or new is None:
        return []
    if new > TREND_FLOOR_SECONDS and new > TREND_FACTOR * old:
        return [
            f"streaming overload warm_seconds regressed {old:.4f}s -> {new:.4f}s "
            f"(more than {TREND_FACTOR:g}x the committed baseline)"
        ]
    return []


def check_trend(report: dict, baseline_path: Path = BENCH_JSON) -> list[str]:
    """Warm-time regressions vs the committed baseline (empty = pass).

    Compares each policy's ``warm_seconds`` against the committed
    ``BENCH_fleet.json``; more than :data:`TREND_FACTOR` slower fails.
    Times below :data:`TREND_FLOOR_SECONDS` are noise and never fail.
    """
    if not baseline_path.exists():
        return []
    try:
        baseline = json.loads(baseline_path.read_text())
    except (OSError, json.JSONDecodeError):
        return []
    failures = []
    for policy, phase in report.get("policies", {}).items():
        old = baseline.get("policies", {}).get(policy, {}).get("warm_seconds")
        new = phase.get("warm_seconds")
        if old is None or new is None:
            continue
        if new > TREND_FLOOR_SECONDS and new > TREND_FACTOR * old:
            failures.append(
                f"{policy}: warm_seconds regressed {old:.4f}s -> {new:.4f}s "
                f"(more than {TREND_FACTOR:g}x the committed baseline)"
            )
    return failures


def _chaos_probe(value: int) -> int:
    """Module-level (picklable) sweep payload for the chaos legs."""
    return value * value


def _overhead_probe(order: str) -> dict:
    """One checkpoint-overhead measurement in a pristine interpreter.

    Runs the resilience workload cold once (estimator warm-up), then
    times one plain and one checkpointed run in the requested ``order``
    (``plain-first`` / ``ckpt-first``).  Ran as a subprocess by
    :func:`run_resilience_benchmark`: in-process back-to-back timing is
    polluted by allocator and cache state the previous run leaves
    behind, which routinely dwarfs the checkpoint cost itself.
    """
    from repro.fleet import AdmissionController, PoissonArrivals
    from repro.resilience import CheckpointConfig, Checkpointer

    admission = AdmissionController(queue_limit=RESILIENCE_QUEUE_LIMIT)
    estimator = StepTimeEstimator()

    def simulate(checkpoint=None):
        simulator = FleetSimulator(
            XL_MACHINES,
            policy="first-fit",
            estimator=estimator,
            compressed=True,
            admission=admission,
        )
        stream = PoissonArrivals(
            num_jobs=RESILIENCE_NUM_JOBS,
            seed=XXL_SEED,
            mean_interarrival=RESILIENCE_INTERARRIVAL,
            workloads=LARGE_JOB_MIX,
            min_steps=RESILIENCE_MIN_STEPS,
            max_steps=RESILIENCE_MAX_STEPS,
        )
        start = time.perf_counter()
        result = simulator.run(stream, checkpoint=checkpoint)
        return result, time.perf_counter() - start

    simulate()  # cold: warm the estimator memo so both timed runs match
    with tempfile.TemporaryDirectory(prefix="repro-ckpt-probe-") as root:

        def checkpointed_run():
            checkpointer = Checkpointer(
                "bench-resilience-overhead",
                CheckpointConfig(interval=RESILIENCE_CKPT_INTERVAL, root=root),
            )
            result, seconds = simulate(checkpoint=checkpointer)
            return result, seconds, checkpointer.saves

        if order == "ckpt-first":
            checkpointed, checkpoint_seconds, snapshots = checkpointed_run()
            plain, plain_seconds = simulate()
        else:
            plain, plain_seconds = simulate()
            checkpointed, checkpoint_seconds, snapshots = checkpointed_run()
    return {
        "order": order,
        "plain_seconds": plain_seconds,
        "checkpoint_seconds": checkpoint_seconds,
        "snapshots": snapshots,
        "identical": _digest(plain) == _digest(checkpointed),
    }


def run_resilience_benchmark(
    *,
    num_jobs: int = RESILIENCE_NUM_JOBS,
    machines: tuple[str, ...] = XL_MACHINES,
) -> dict:
    """The resilience suite: checkpoint overhead, kill-resume, chaos."""
    from repro.fleet import AdmissionController, PoissonArrivals
    from repro.resilience import (
        ChaosPlan,
        RetryPolicy,
        RunInterrupted,
        corrupt_cache_entries,
        resume_fleet,
    )
    from repro.sweep.executor import SweepTask

    def stream(n=num_jobs):
        return PoissonArrivals(
            num_jobs=n,
            seed=XXL_SEED,
            mean_interarrival=RESILIENCE_INTERARRIVAL,
            workloads=LARGE_JOB_MIX,
            min_steps=RESILIENCE_MIN_STEPS,
            max_steps=RESILIENCE_MAX_STEPS,
        )

    admission = AdmissionController(queue_limit=RESILIENCE_QUEUE_LIMIT)
    estimator = StepTimeEstimator()

    # -- checkpoint overhead: plain warm vs checkpointed warm ------------
    # Each rep measures one plain/checkpointed pair in a *fresh
    # interpreter* (see _overhead_probe), with the pair order flipping
    # every rep.  The reported ratio is the median of the per-probe
    # ratios: a probe's pair shares its host conditions, so within-probe
    # ratios are far more stable than any cross-probe min/min.
    probes = []
    for rep in range(RESILIENCE_OVERHEAD_REPS):
        order = "plain-first" if rep % 2 == 0 else "ckpt-first"
        proc = subprocess.run(
            [sys.executable, "-m", "benchmarks.fleet_bench", "--overhead-probe", order],
            capture_output=True,
            text=True,
            check=True,
        )
        probes.append(json.loads(proc.stdout.strip().splitlines()[-1]))
    ratios = sorted(
        p["checkpoint_seconds"] / p["plain_seconds"] for p in probes if p["plain_seconds"] > 0
    )
    mid = len(ratios) // 2
    ratio = (
        ratios[mid]
        if len(ratios) % 2
        else (ratios[mid - 1] + ratios[mid]) / 2
    )
    overhead_report = {
        "warm_seconds": round(min(p["plain_seconds"] for p in probes), 4),
        "checkpoint_seconds": round(min(p["checkpoint_seconds"] for p in probes), 4),
        "probe_ratios": [round(r, 4) for r in ratios],
        "overhead_ratio": round(ratio, 4),
        "interval": RESILIENCE_CKPT_INTERVAL,
        "snapshots": probes[0]["snapshots"],
        "reps": RESILIENCE_OVERHEAD_REPS,
        "identical": all(p["identical"] for p in probes),
        "gate": RESILIENCE_OVERHEAD_GATE,
    }

    # -- kill-and-resume smoke: interrupt mid-stream, resume, compare ----
    kill_jobs = max(200, num_jobs // 10)
    with tempfile.TemporaryDirectory(prefix="repro-resume-bench-") as tmp:
        root = os.path.join(tmp, "ck")
        store_dir = os.path.join(tmp, "store")
        from repro.api import run_fleet

        kw = dict(
            arrival_process=stream(kill_jobs).to_dict(),
            machines=BENCH_MACHINES,
            policy="interference-aware",
            queue_limit=STREAM_QUEUE_LIMIT,
            shards=2,
            fleet_backend="thread",
            store=store_dir,
        )
        baseline = run_fleet(**kw)
        want = resolve_store(store_dir).get(baseline.run_id).digest
        interrupt_events = baseline.events_processed // 2
        try:
            run_fleet(
                **kw,
                checkpoint={
                    "interval": 64,
                    "root": root,
                    "interrupt_after": interrupt_events,
                },
            )
            interrupted = False
        except RunInterrupted:
            interrupted = True
        resumed = resume_fleet(baseline.run_id, root=root, store=store_dir)
        got = resolve_store(store_dir).get(resumed.run_id).digest
        kill_resume_report = {
            "jobs": kill_jobs,
            "interrupt_events": interrupt_events,
            "interrupted": interrupted,
            "identical": interrupted and got == want and resumed.run_id == baseline.run_id,
        }

    # -- chaos: sweep retries repair injected crashes --------------------
    expected = [_chaos_probe(i) for i in range(CHAOS_SWEEP_TASKS)]
    retry_exec = SweepExecutor(
        backend="thread",
        jobs=4,
        retry=RetryPolicy(max_attempts=5, backoff=0.001, max_backoff=0.004),
        chaos=ChaosPlan(seed=CHAOS_SEED, crash_rate=0.35, fail_attempts=2),
    )
    try:
        retry_results = retry_exec.run(
            [SweepTask(_chaos_probe, (i,)) for i in range(CHAOS_SWEEP_TASKS)]
        )
    finally:
        retry_exec.close(force=True)
    sweep_retry_report = {
        "tasks": CHAOS_SWEEP_TASKS,
        "correct": retry_results == expected,
        "retries": retry_exec.stats.retries,
        "pool_restarts": retry_exec.stats.pool_restarts,
    }

    # -- chaos: persistent failures quarantine, the rest stay exact ------
    quarantine_exec = SweepExecutor(
        backend="thread",
        jobs=4,
        retry=RetryPolicy(
            max_attempts=2, backoff=0.001, quarantine=True, degrade=False
        ),
        chaos=ChaosPlan(seed=CHAOS_SEED, crash_rate=0.3, fail_attempts=10**6),
    )
    try:
        quarantine_results = quarantine_exec.run(
            [SweepTask(_chaos_probe, (i,)) for i in range(CHAOS_SWEEP_TASKS)]
        )
    finally:
        quarantine_exec.close(force=True)
    from repro.sweep.retry import SweepTaskFailure

    survivors_correct = all(
        isinstance(got, SweepTaskFailure) or got == expected[i]
        for i, got in enumerate(quarantine_results)
    )
    sweep_quarantine_report = {
        "tasks": CHAOS_SWEEP_TASKS,
        "quarantined": quarantine_exec.stats.quarantined,
        "survivors_correct": survivors_correct,
    }

    # -- chaos: corrupted cache entries are re-misses, not poison --------
    with tempfile.TemporaryDirectory(prefix="repro-cache-chaos-") as cache_root:
        cache_exec = SweepExecutor(
            backend="serial", cache=SweepCache(cache_root, enabled=True)
        )
        tasks = [SweepTask(_chaos_probe, (i,)) for i in range(16)]
        cache_exec.run(tasks)
        corrupted = corrupt_cache_entries(cache_root, seed=CHAOS_SEED, fraction=0.5)
        recovered = cache_exec.run(tasks) == [_chaos_probe(i) for i in range(16)]
    cache_report = {"corrupted": len(corrupted), "recovered": recovered}

    # -- chaos: the sharded engine under injected shard-worker crashes ---
    shard_jobs = max(500, num_jobs // 4)
    shard_machines = XL_MACHINES

    def sharded(chaos=None, retry=None):
        simulator = FleetSimulator(
            shard_machines,
            policy="first-fit",
            estimator=estimator,
            compressed=True,
            admission=admission,
            shards=XL_SHARDS,
            shard_backend="thread",
            shard_retry=retry,
            shard_chaos=chaos,
        )
        result = simulator.run(stream(shard_jobs))
        return result, simulator.shard_stats

    clean, _ = sharded()
    # Crash-only plan: an injected crash fires *before* the shard window
    # executes, so a thread-backend retry re-runs it from clean state.
    # Only the final drain fans out to workers at this scale (a handful
    # of tasks), so every task crashes exactly once: the retry counter
    # is deterministically nonzero and the second attempt always lands.
    chaotic, shard_stats = sharded(
        chaos=ChaosPlan(seed=CHAOS_SEED, crash_rate=1.0, fail_attempts=1),
        retry=RetryPolicy(max_attempts=5, backoff=0.001, max_backoff=0.004),
    )
    sharded_report = {
        "jobs": shard_jobs,
        "shards": XL_SHARDS,
        "identical": _digest(clean) == _digest(chaotic),
        "retries": shard_stats.retries if shard_stats else 0,
    }

    return {
        "workload": {
            "num_jobs": num_jobs,
            "seed": XXL_SEED,
            "mean_interarrival": RESILIENCE_INTERARRIVAL,
            "machines": len(machines),
            "policy": "first-fit",
            "queue_limit": RESILIENCE_QUEUE_LIMIT,
        },
        "checkpoint_overhead": overhead_report,
        "kill_resume": kill_resume_report,
        "chaos": {
            "sweep_retry": sweep_retry_report,
            "sweep_quarantine": sweep_quarantine_report,
            "cache_corruption": cache_report,
            "sharded": sharded_report,
        },
    }


def format_resilience_report(report: dict) -> str:
    overhead = report["checkpoint_overhead"]
    resume = report["kill_resume"]
    chaos = report["chaos"]
    return "\n".join(
        [
            f"fleet resilience benchmark — {report['workload']['num_jobs']} jobs "
            f"streamed over {report['workload']['machines']} machines",
            f"  checkpoint : warm {overhead['warm_seconds']:.2f}s -> "
            f"checkpointed {overhead['checkpoint_seconds']:.2f}s "
            f"({overhead['overhead_ratio']:.3f}x, gate <= {overhead['gate']:g}x, "
            f"{overhead['snapshots']} snapshots), identical {overhead['identical']}",
            f"  kill-resume: interrupted at {resume['interrupt_events']} events, "
            f"byte-identical resume {resume['identical']}",
            f"  chaos sweep: retry correct {chaos['sweep_retry']['correct']} "
            f"({chaos['sweep_retry']['retries']} retries), quarantine "
            f"{chaos['sweep_quarantine']['quarantined']} tasks "
            f"(survivors correct {chaos['sweep_quarantine']['survivors_correct']}), "
            f"cache rot recovered {chaos['cache_corruption']['recovered']} "
            f"({chaos['cache_corruption']['corrupted']} entries)",
            f"  chaos shard: byte-identical {chaos['sharded']['identical']} "
            f"({chaos['sharded']['retries']} shard retries over "
            f"{chaos['sharded']['shards']} shards)",
        ]
    )


def check_resilience_gates(report: dict) -> list[str]:
    """The failed-gate messages of one resilience report (empty = pass)."""
    failures = []
    overhead = report["checkpoint_overhead"]
    if not overhead["identical"]:
        failures.append("resilience: checkpointing perturbed the outcome digest")
    if overhead["overhead_ratio"] > RESILIENCE_OVERHEAD_GATE:
        failures.append(
            f"resilience: checkpoint overhead {overhead['overhead_ratio']:.3f}x "
            f"exceeds the {RESILIENCE_OVERHEAD_GATE:g}x gate"
        )
    if not report["kill_resume"]["identical"]:
        failures.append(
            "resilience: kill-and-resume digest diverged from the uninterrupted run"
        )
    chaos = report["chaos"]
    if not chaos["sweep_retry"]["correct"]:
        failures.append("resilience: chaos sweep results diverged after retries")
    if chaos["sweep_retry"]["retries"] == 0:
        failures.append("resilience: chaos plan injected no retries (inert plan?)")
    if chaos["sweep_quarantine"]["quarantined"] == 0:
        failures.append("resilience: persistent chaos quarantined nothing")
    if not chaos["sweep_quarantine"]["survivors_correct"]:
        failures.append("resilience: quarantine corrupted surviving results")
    if not chaos["cache_corruption"]["recovered"]:
        failures.append("resilience: corrupted cache entries poisoned the sweep")
    if not chaos["sharded"]["identical"]:
        failures.append(
            "resilience: sharded outcome diverged under injected shard crashes"
        )
    if chaos["sharded"]["retries"] == 0:
        failures.append("resilience: sharded chaos plan injected no retries")
    return failures


def _record_section(store, name: str, payload: dict) -> None:
    """Record a non-smoke suite's BENCH section under a constant identity.

    The config is just the section name, so re-running a suite overwrites
    its stored section and ``python -m repro report bench <name>`` always
    regenerates from the latest run.
    """
    if store is None:
        return
    record_run(store, "bench", name, config={"section": name}, payload=payload)


def write_bench_json(report: dict, path: Path = BENCH_JSON) -> Path:
    """Write (or merge) a benchmark report into ``BENCH_fleet.json``.

    Suites write disjoint sections; running only ``large``/``xl`` keeps
    the committed smoke numbers and vice versa (the nested
    ``round_compression`` section merges per sub-report too, so the
    ``large`` suite does not clobber a committed ``xl_smoke``).
    """
    existing = {}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            existing = {}
    # The merge/render semantics live in repro.store.reporting so that
    # `python -m repro report bench` regenerates byte-identical files.
    path.write_text(render_bench_json(merge_bench_report(report, existing)))
    return path


def format_report(report: dict) -> str:
    workload = report["workload"]
    lines = [
        f"fleet scheduling benchmark — {workload['num_jobs']} jobs "
        f"(arrival seed {workload['arrival_seed']}) over "
        f"{len(workload['machines'])} machines",
        f"{'policy':<20} {'makespan':>10} {'speedup':>8} {'corun':>7} "
        f"{'overhead':>10} {'cold':>7} {'warm':>7} {'events':>7} {'rerun=':>7} {'=ref':>5}",
    ]
    for policy, phase in report["policies"].items():
        speedup = report["speedups_vs_first_fit"].get(policy, 1.0)
        lines.append(
            f"{policy:<20} {phase['makespan']:>9.2f}s {speedup:>7.2f}x "
            f"{phase['corun_rounds']:>3}/{phase['total_rounds']:<3} "
            f"{phase['warm_scheduler_overhead_seconds'] * 1e3:>8.1f}ms "
            f"{phase['cold_seconds']:>6.2f}s {phase['warm_seconds']:>6.2f}s "
            f"{phase['events_processed']:>7} "
            f"{str(phase['rerun_identical']):>7} "
            f"{str(phase['compressed_equals_reference']):>5}"
        )
    lines.append(
        f"deterministic reruns: {report['deterministic']}; "
        f"compressed == reference: {report['compression_equivalent']}; "
        f"interference-aware beats first-fit: {report['interference_beats_first_fit']}"
    )
    return "\n".join(lines)


def format_large_report(report: dict) -> str:
    workload = report["workload"]
    lines = [
        f"fleet round-compression benchmark — {workload['num_jobs']} jobs "
        f"({workload['steps'][0]}-{workload['steps'][1]} steps) over "
        f"{workload['machines']} machines"
    ]
    for policy, phase in report["policies"].items():
        reference = phase["runs"]["reference"]
        compressed = phase["runs"]["compressed"]
        gate = (
            f"(gate >= {LARGE_SPEEDUP_GATE:g}x)" if phase["gated"] else "(not gated)"
        )
        lines += [
            f"  {policy}:",
            f"    reference : {reference['cold_seconds']:>8.2f}s cold, "
            f"{reference['events_processed']:>8} events "
            f"({reference['total_rounds']} rounds, "
            f"{reference['corun_rounds']} co-run)",
            f"    compressed: {compressed['cold_seconds']:>8.2f}s cold, "
            f"{compressed['events_processed']:>8} events "
            f"({compressed['total_rounds']} rounds)",
            f"    cold speedup {phase['cold_speedup']}x {gate}; "
            f"byte-identical outcomes: {phase['identical']}",
        ]
    return "\n".join(lines)


def format_xl_report(report: dict) -> str:
    workload = report["workload"]
    text = (
        f"fleet XL smoke — {workload['num_jobs']} jobs over "
        f"{workload['machines']} machines: {report['cold_seconds']:.2f}s, "
        f"{report['events_processed']} events for {report['total_rounds']} "
        f"rounds, {report['completions']} completions"
    )
    if "sharded_identical" in report:
        text += (
            f"\n  sharded ({report['shards']} shards): "
            f"{report['sharded_seconds']:.2f}s, byte-identical: "
            f"{report['sharded_identical']}"
        )
    return text


def check_gates(report: dict) -> list[str]:
    """The failed-gate messages of one smoke report (empty = pass)."""
    failures = []
    if not report["deterministic"]:
        bad = [
            policy
            for policy, phase in report["policies"].items()
            if not phase["rerun_identical"]
        ]
        failures.append(
            "fleet reruns diverged for a fixed (trace, policy, machines): "
            + ", ".join(bad)
        )
    if not report["compression_equivalent"]:
        bad = [
            policy
            for policy, phase in report["policies"].items()
            if not phase["compressed_equals_reference"]
        ]
        failures.append(
            "round-compression fast path diverged from the reference loop: "
            + ", ".join(bad)
        )
    if report["interference_beats_first_fit"] is False:
        failures.append(
            "interference-aware makespan "
            f"{report['policies']['interference-aware']['makespan']:.2f}s did not "
            "beat first-fit "
            f"{report['policies']['first-fit']['makespan']:.2f}s"
        )
    return failures


def check_large_gates(report: dict) -> list[str]:
    """The failed-gate messages of one large-suite report (empty = pass)."""
    failures = []
    for policy, phase in report["policies"].items():
        if not phase["identical"]:
            failures.append(
                f"large trace ({policy}): compressed and reference outcomes diverged"
            )
        if phase["gated"] and phase["cold_speedup"] < LARGE_SPEEDUP_GATE:
            failures.append(
                f"large-trace cold speedup ({policy}) {phase['cold_speedup']}x "
                f"below the {LARGE_SPEEDUP_GATE:g}x gate"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.fleet_bench",
        description="Fleet-layer benchmark (writes BENCH_fleet.json)",
    )
    parser.add_argument(
        "--suite",
        choices=("smoke", "large", "xl", "xxl", "faults", "stream", "resilience", "all"),
        default="smoke",
        help="smoke: canonical 50-job gates; large: 1,000-job round-"
        "compression speedup gate; xl: 5,000-job compressed smoke; "
        "xxl: 100k-job / 1,000-machine sharded-engine gates; "
        "faults: canonical-fault-plan equivalence gates; stream: "
        "open-loop overload/admission gates incl. the 1M-job smoke; "
        "resilience: checkpoint-overhead, kill-resume and seeded-chaos "
        "gates (make chaos)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="xxl suite only: shard count of the sharded leg "
        "(default: one per core, capped at 8)",
    )
    parser.add_argument("--jobs", type=int, default=None, help="sweep-engine worker count")
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="print the report without updating BENCH_fleet.json",
    )
    parser.add_argument(
        "--overhead-probe",
        choices=("plain-first", "ckpt-first"),
        default=None,
        help=argparse.SUPPRESS,  # internal: one fresh-process overhead pair
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="record runs into this run store (default: $REPRO_STORE_DIR when set)",
    )
    args = parser.parse_args(argv)
    if args.overhead_probe is not None:
        print(json.dumps(_overhead_probe(args.overhead_probe)))
        return 0
    if args.jobs is not None and args.jobs < 1:
        parser.error("--jobs must be at least 1")
    # --store DIR forces recording there; otherwise $REPRO_STORE_DIR (when
    # set and not disabled) provides the store, and None disables recording.
    store = resolve_store(args.store)

    failures: list[str] = []
    payload: dict = {}
    if args.suite in ("smoke", "all"):
        report = run_fleet_benchmark(jobs=args.jobs, store=store)
        print(format_report(report))
        failures += check_gates(report)
        failures += check_trend(report)
        payload.update(report)
    if args.suite in ("large", "all"):
        large = run_large_benchmark()
        print(format_large_report(large))
        failures += check_large_gates(large)
        payload["round_compression"] = {"large": large}
        _record_section(store, "fleet-large", {"round_compression": {"large": large}})
    if args.suite in ("xl", "all"):
        xl = run_xl_smoke()
        print(format_xl_report(xl))
        failures += check_xl_gates(xl)
        payload.setdefault("round_compression", {})["xl_smoke"] = xl
        _record_section(store, "fleet-xl", {"round_compression": {"xl_smoke": xl}})
    if args.suite in ("xxl", "all"):
        xxl = run_xxl_benchmark(shards=args.shards)
        print(format_xxl_report(xxl))
        failures += check_xxl_gates(xxl)
        failures += check_xxl_trend(xxl)
        payload["sharding"] = xxl
        _record_section(store, "fleet-xxl", {"sharding": xxl})
    if args.suite in ("faults", "all"):
        faults_report = run_faults_benchmark()
        print(format_faults_report(faults_report))
        failures += check_faults_gates(faults_report)
        payload["fault_injection"] = faults_report
        _record_section(store, "fleet-faults", {"fault_injection": faults_report})
    if args.suite in ("stream", "all"):
        stream_report = run_stream_benchmark()
        print(format_stream_report(stream_report))
        failures += check_stream_gates(stream_report)
        failures += check_stream_trend(stream_report)
        payload["streaming"] = stream_report
        _record_section(store, "fleet-stream", {"streaming": stream_report})
    if args.suite in ("resilience", "all"):
        resilience_report = run_resilience_benchmark()
        print(format_resilience_report(resilience_report))
        failures += check_resilience_gates(resilience_report)
        payload["resilience"] = resilience_report
        _record_section(store, "fleet-resilience", {"resilience": resilience_report})

    if not args.no_write:
        if failures:
            # A failed gate must not become the next run's baseline (a
            # regressed warm_seconds would mask itself on the rerun).
            print("gates failed; BENCH_fleet.json left untouched")
        else:
            path = write_bench_json(payload)
            print(f"wrote {path}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
