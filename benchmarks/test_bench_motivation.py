"""Benchmarks regenerating the motivation-study artefacts (Fig. 1, Tables I-III)."""

from __future__ import annotations

from repro.experiments import (
    fig1_threads,
    table1_parallelism,
    table2_input_size,
    table3_corun,
)


def test_bench_fig1_thread_sweep(benchmark, once):
    """Figure 1: execution time of three convolutions vs thread count."""
    result = once(benchmark, fig1_threads.run)
    print()
    print(fig1_threads.format_report(result))
    # The optima sit below the 68-thread recommendation and are ordered
    # filter-grad < input-grad < forward conv, as in the paper.
    optima = {op: threads for op, (threads, _) in result.optima.items()}
    assert optima["Conv2DBackpropFilter"] < optima["Conv2D"] < 68


def test_bench_table1_uniform_parallelism(benchmark, once):
    """Table I: ResNet-50 / DCGAN under uniform (inter, intra) settings."""
    result = once(benchmark, table1_parallelism.run)
    print()
    print(table1_parallelism.format_report(result))
    for model in ("resnet50", "dcgan"):
        best = max(
            result.speedup(model, inter, intra)
            for inter in table1_parallelism.INTER_OP
            for intra in table1_parallelism.INTRA_OP
        )
        worst = min(
            result.speedup(model, inter, intra)
            for inter in table1_parallelism.INTER_OP
            for intra in table1_parallelism.INTRA_OP
        )
        assert best > 1.0  # the recommendation is not optimal
        assert worst < 0.6  # oversubscription is much worse


def test_bench_table2_input_sizes(benchmark, once):
    """Table II: optimal intra-op parallelism vs input data size."""
    result = once(benchmark, table2_input_size.run)
    print()
    print(table2_input_size.format_report(result))
    for op_type in table2_input_size.OPERATIONS:
        small = result.entry(op_type, (32, 8, 8, 384)).best_threads
        large = result.entry(op_type, (32, 8, 8, 2048)).best_threads
        assert large >= small


def test_bench_table3_corun_strategies(benchmark, once):
    """Table III: serial vs hyper-threaded vs split-core co-running."""
    result = once(benchmark, table3_corun.run)
    print()
    print(table3_corun.format_report(result))
    assert result.split_speedup > result.hyperthreading_speedup > 0.95
