"""Run the quick benchmark tiers: ``python -m benchmarks``.

``--suite simulator`` (the default) runs the simulator fast-path
benchmark and writes ``BENCH_simulator.json``; ``--suite experiments``
runs the experiment-layer sweep-engine benchmark and writes
``BENCH_experiments.json``; ``--suite fleet`` runs the fleet-scheduling
benchmark and writes ``BENCH_fleet.json``; ``--suite all`` runs every
tier.  Exits non-zero when any equivalence, determinism or speedup gate
fails, so each tier can serve as a CI step.
"""

from __future__ import annotations

import argparse
import sys

from benchmarks.experiments_bench import main as experiments_main
from benchmarks.fleet_bench import main as fleet_main
from benchmarks.simulator_bench import (
    BENCH_MACHINE,
    BENCH_NUM_OPS,
    BENCH_SEED,
    EQUIVALENCE_TOLERANCE,
    SPEEDUP_GATE,
    format_report,
    run_simulator_benchmark,
    write_bench_json,
)


def _simulator_main(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    try:
        report = run_simulator_benchmark(
            args.ops, seed=args.seed, repeats=args.repeats, machine=args.machine
        )
    except KeyError as exc:  # unknown --machine; str(KeyError) adds repr quotes
        parser.error(exc.args[0])
    except ValueError as exc:
        parser.error(str(exc))
    print(format_report(report))

    failures = []
    for name, scenario in report["scenarios"].items():
        if scenario["step_time_relative_error"] > EQUIVALENCE_TOLERANCE:
            failures.append(f"{name}: step_time diverged from the reference path")
    # The speedup gate was calibrated on the canonical KNL workload; on
    # other zoo machines the equivalence check is what matters.
    if report["headline_speedup"] < SPEEDUP_GATE and args.machine == BENCH_MACHINE:
        failures.append(
            f"headline speedup {report['headline_speedup']}x below the "
            f"{SPEEDUP_GATE}x gate"
        )
    canonical = (
        args.ops == BENCH_NUM_OPS
        and args.seed == BENCH_SEED
        and args.machine == BENCH_MACHINE
    )
    if not args.no_write and canonical:
        path = write_bench_json(report)
        print(f"wrote {path}")
    elif not args.no_write:
        print("non-canonical workload; BENCH_simulator.json left untouched")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks",
        description="Quick perf tiers (write BENCH_simulator.json / BENCH_experiments.json)",
    )
    parser.add_argument(
        "--suite",
        choices=("simulator", "experiments", "fleet", "all"),
        default="simulator",
        help="which quick tier to run",
    )
    parser.add_argument("--ops", type=int, default=BENCH_NUM_OPS)
    parser.add_argument("--seed", type=int, default=BENCH_SEED)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--machine",
        default=BENCH_MACHINE,
        metavar="NAME",
        help="machine-zoo topology to simulate on (default: the KNL "
        "baseline; BENCH json is only rewritten for the canonical machine)",
    )
    parser.add_argument("--jobs", type=int, default=None, help="experiment-suite worker count")
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="print the report without updating the BENCH json files",
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be at least 1")
    if args.jobs is not None and args.jobs < 1:
        parser.error("--jobs must be at least 1")

    # Surface flags that the selected suite will never read.
    if args.suite in ("experiments", "fleet"):
        ignored = [
            flag
            for flag, changed in (
                ("--ops", args.ops != BENCH_NUM_OPS),
                ("--seed", args.seed != BENCH_SEED),
                ("--repeats", args.repeats != 3),
                ("--machine", args.machine != BENCH_MACHINE),
            )
            if changed
        ]
        if ignored:
            parser.error(f"{', '.join(ignored)} only apply to --suite simulator/all")
    if args.suite == "all" and args.machine != BENCH_MACHINE:
        # The other tiers have no machine knob yet; refusing beats
        # silently measuring the tiers on different topologies.
        parser.error("--machine only applies to --suite simulator")
    if args.suite == "simulator" and args.jobs is not None:
        parser.error("--jobs only applies to --suite experiments/fleet/all")

    passthrough_args = []
    if args.jobs is not None:
        passthrough_args += ["--jobs", str(args.jobs)]
    if args.no_write:
        passthrough_args += ["--no-write"]

    status = 0
    if args.suite in ("simulator", "all"):
        status = max(status, _simulator_main(args, parser))
    if args.suite in ("experiments", "all"):
        status = max(status, experiments_main(passthrough_args))
    if args.suite in ("fleet", "all"):
        status = max(status, fleet_main(passthrough_args))
    return status


if __name__ == "__main__":
    raise SystemExit(main())
