"""Run the quick simulator benchmark tier: ``python -m benchmarks``.

Writes/updates ``BENCH_simulator.json`` at the repo root and prints the
scenario table.  Exits non-zero when the equivalence or speedup gates
fail, so it can serve as a CI step.
"""

from __future__ import annotations

import argparse
import sys

from benchmarks.simulator_bench import (
    BENCH_NUM_OPS,
    BENCH_SEED,
    EQUIVALENCE_TOLERANCE,
    SPEEDUP_GATE,
    format_report,
    run_simulator_benchmark,
    write_bench_json,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks",
        description="Quick simulator perf tier (writes BENCH_simulator.json)",
    )
    parser.add_argument("--ops", type=int, default=BENCH_NUM_OPS)
    parser.add_argument("--seed", type=int, default=BENCH_SEED)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="print the report without updating BENCH_simulator.json",
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be at least 1")

    try:
        report = run_simulator_benchmark(args.ops, seed=args.seed, repeats=args.repeats)
    except ValueError as exc:
        parser.error(str(exc))
    print(format_report(report))

    failures = []
    for name, scenario in report["scenarios"].items():
        if scenario["step_time_relative_error"] > EQUIVALENCE_TOLERANCE:
            failures.append(f"{name}: step_time diverged from the reference path")
    if report["headline_speedup"] < SPEEDUP_GATE:
        failures.append(
            f"headline speedup {report['headline_speedup']}x below the "
            f"{SPEEDUP_GATE}x gate"
        )
    canonical = args.ops == BENCH_NUM_OPS and args.seed == BENCH_SEED
    if not args.no_write and canonical:
        path = write_bench_json(report)
        print(f"wrote {path}")
    elif not args.no_write:
        print("non-canonical workload; BENCH_simulator.json left untouched")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
