"""Micro-benchmarks of the simulation substrate itself.

Not a paper artefact, but useful to track the cost of the infrastructure
the experiments run on (per-step simulation and profiling throughput).
"""

from __future__ import annotations

import pytest

from repro.baselines.tf_default import recommended_policy
from repro.core.hill_climbing import HillClimbingModel
from repro.core.runtime import TrainingRuntime
from repro.execsim.simulator import StepSimulator
from repro.execsim.standalone import StandaloneRunner
from repro.experiments.common import default_machine
from repro.models import build_model


@pytest.fixture(scope="module")
def machine():
    return default_machine()


@pytest.fixture(scope="module")
def resnet_graph():
    return build_model("resnet50")


def test_bench_step_simulation_recommendation(benchmark, machine, resnet_graph):
    """Cost of simulating one ResNet-50 step under the recommendation."""
    simulator = StepSimulator(machine)
    result = benchmark(lambda: simulator.run_step(resnet_graph, recommended_policy(machine)))
    assert result.step_time > 0


def test_bench_hill_climb_profiling(benchmark, machine, resnet_graph):
    """Cost of profiling every unique ResNet-50 signature with x=4."""

    def profile():
        model = HillClimbingModel(machine, interval=4)
        runner = StandaloneRunner(machine)
        model.profile_graph(resnet_graph, runner)
        return model

    model = benchmark.pedantic(profile, rounds=1, iterations=1)
    assert len(model.signatures) > 20


def test_bench_full_runtime_single_step(benchmark, machine, once):
    """Profile + schedule one step of the (reduced) ResNet-50 with the runtime."""
    graph = build_model("resnet50", stage_blocks=(1, 1, 1, 1))

    def run():
        return TrainingRuntime(machine).run(graph)

    report = once(benchmark, run)
    assert report.speedup_vs_recommendation > 1.0
