PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench experiments fleet fleet-faults fleet-large fleet-stream fleet-xxl chaos report bench-full help

help:
	@echo "make test        - run the tier-1 test suite"
	@echo "make bench       - quick perf tier: simulator fast-path benchmark,"
	@echo "                   updates BENCH_simulator.json"
	@echo "make experiments - quick perf tier: experiment-layer sweep engine,"
	@echo "                   updates BENCH_experiments.json"
	@echo "make fleet       - fleet-scheduling benchmark (policy makespans +"
	@echo "                   determinism/compression gates), updates BENCH_fleet.json"
	@echo "make fleet-large - large-trace fleet benchmark (1,000-job round-"
	@echo "                   compression speedup gate + 5,000-job smoke)"
	@echo "make fleet-faults- fault-injection benchmark (canonical fault plan:"
	@echo "                   equivalence + monotonicity gates)"
	@echo "make fleet-stream- open-loop streaming benchmark (overload/admission"
	@echo "                   gates + the 1,000,000-job compressed smoke)"
	@echo "make fleet-xxl   - sharded-engine benchmark (100k jobs / 1,000 machines:"
	@echo "                   shard-equivalence + speedup gates)"
	@echo "make chaos       - resilience suite: checkpoint-overhead, kill-and-"
	@echo "                   resume and chaos-injection gates, updates the"
	@echo "                   resilience section of BENCH_fleet.json"
	@echo "make report      - fleet smoke benchmark recorded into .run_store, then"
	@echo "                   regenerate the BENCH_fleet.json section from the store"
	@echo "                   and fail on drift"
	@echo "make bench-full  - every benchmark (paper tables/figures reproduction)"

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m benchmarks

experiments:
	$(PYTHON) -m benchmarks --suite experiments

fleet:
	$(PYTHON) -m benchmarks --suite fleet

fleet-faults:
	$(PYTHON) -m benchmarks.fleet_bench --suite faults

fleet-large:
	$(PYTHON) -m benchmarks.fleet_bench --suite large
	$(PYTHON) -m benchmarks.fleet_bench --suite xl

fleet-stream:
	$(PYTHON) -m benchmarks.fleet_bench --suite stream

fleet-xxl:
	$(PYTHON) -m benchmarks.fleet_bench --suite xxl

chaos:
	$(PYTHON) -m benchmarks.fleet_bench --suite resilience

report:
	REPRO_STORE_DIR=.run_store $(PYTHON) -m benchmarks.fleet_bench --suite smoke
	REPRO_STORE_DIR=.run_store $(PYTHON) -m repro report bench fleet-smoke --check
	REPRO_STORE_DIR=.run_store $(PYTHON) -m repro report list

bench-full:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q
