"""Chaos-harness gates: injected crashes, hangs, poison tasks and cache
rot must be *repaired* by the executor's fault tolerance — exact results,
deterministic order, nonzero recovery counters — never just survived."""

import json

import pytest

from repro.api import DEFAULT_FLEET
from repro.fleet import FleetSimulator, PoissonArrivals, StepTimeEstimator
from repro.resilience import (
    ChaosPlan,
    ChaosWorkerCrash,
    RetryPolicy,
    SweepTaskFailure,
    chaos_call,
    corrupt_cache_entries,
)
from repro.sweep import SweepCache, SweepExecutor
from repro.sweep.executor import SweepTask

TASKS = 24


def probe(i):
    """Deterministic worker payload (module-level: process-picklable)."""
    return (i, i * i % 97)


def expected():
    return [probe(i) for i in range(TASKS)]


class TestChaosPlan:
    def test_validation(self):
        with pytest.raises(ValueError):
            ChaosPlan(crash_rate=1.5)
        with pytest.raises(ValueError):
            ChaosPlan(hang_rate=-0.1)
        with pytest.raises(ValueError):
            ChaosPlan(hang_seconds=-1)
        with pytest.raises(ValueError):
            ChaosPlan(fail_attempts=-1)

    def test_bool_means_any_injection(self):
        assert not ChaosPlan()
        assert ChaosPlan(crash_rate=0.1)
        assert ChaosPlan(hang_rate=0.1)
        assert ChaosPlan(interrupt_after=10)

    def test_directives_are_deterministic_and_budgeted(self):
        plan = ChaosPlan(seed=3, crash_rate=0.5, fail_attempts=2)
        first = [plan.directive(n, 1) for n in range(50)]
        assert first == [plan.directive(n, 1) for n in range(50)]
        assert any(d == ("crash",) for d in first)
        # Beyond the fail budget every execution runs clean.
        assert all(plan.directive(n, 3) is None for n in range(50))

    def test_chaos_call_crash_without_process(self):
        with pytest.raises(ChaosWorkerCrash):
            chaos_call(probe, (1,), ("crash",), False)


class TestSweepChaos:
    def run_sweep(self, executor):
        try:
            return executor.run([SweepTask(probe, (i,)) for i in range(TASKS)])
        finally:
            executor.close(force=True)

    def test_retries_repair_injected_crashes(self):
        executor = SweepExecutor(
            backend="thread",
            jobs=4,
            retry=RetryPolicy(max_attempts=5, backoff=0.001, max_backoff=0.004),
            chaos=ChaosPlan(seed=7, crash_rate=0.4, fail_attempts=2),
        )
        assert self.run_sweep(executor) == expected()
        assert executor.stats.retries > 0

    def test_hang_detection_times_out_and_recovers(self):
        executor = SweepExecutor(
            backend="thread",
            jobs=4,
            retry=RetryPolicy(
                max_attempts=4,
                timeout=0.05,
                heartbeat=0.01,
                backoff=0.001,
                max_backoff=0.004,
            ),
            chaos=ChaosPlan(seed=7, hang_rate=0.2, hang_seconds=0.3, fail_attempts=1),
        )
        assert self.run_sweep(executor) == expected()
        assert executor.stats.timeouts > 0
        assert executor.stats.pool_restarts > 0

    def test_poison_tasks_quarantine_survivors_exact(self):
        executor = SweepExecutor(
            backend="thread",
            jobs=4,
            retry=RetryPolicy(
                max_attempts=2, backoff=0.001, quarantine=True, degrade=False
            ),
            chaos=ChaosPlan(seed=7, crash_rate=0.3, fail_attempts=10**6),
        )
        results = self.run_sweep(executor)
        want = expected()
        assert len(results) == TASKS
        failures = [r for r in results if isinstance(r, SweepTaskFailure)]
        assert failures and executor.stats.quarantined == len(failures)
        for i, got in enumerate(results):
            if isinstance(got, SweepTaskFailure):
                assert got.index == i  # input-ordered slots survive chaos
                assert not got  # falsy sentinel, never a silent value
            else:
                assert got == want[i]

    def test_persistent_pool_failures_degrade_backend(self):
        executor = SweepExecutor(
            backend="process",
            jobs=2,
            retry=RetryPolicy(max_attempts=4, backoff=0.001, max_backoff=0.004),
            chaos=ChaosPlan(seed=7, crash_rate=1.0, fail_attempts=10**6),
        )
        try:
            results = executor.run([SweepTask(probe, (i,)) for i in range(4)])
        finally:
            executor.close(force=True)
        # Every pool round died, the backend stepped down, and the local
        # degrade execution (no chaos there) still produced every value.
        assert results == [probe(i) for i in range(4)]
        assert executor.degraded_from == "process"
        assert executor.backend in ("thread", "serial")
        assert executor.stats.pool_restarts >= 2
        assert executor.stats.degraded > 0

    def test_crash_during_run_still_reaps_pool(self):
        executor = SweepExecutor(
            backend="thread",
            jobs=2,
            chaos=ChaosPlan(seed=7, crash_rate=1.0, fail_attempts=10**6),
        )
        # Seed semantics (no retry policy): first failure propagates —
        # but the worker pool must be reaped on the way out (the leak
        # this release fixed), not abandoned until interpreter exit.
        with pytest.raises(ChaosWorkerCrash):
            executor.run([SweepTask(probe, (i,)) for i in range(4)])
        assert executor._pool is None


class TestCacheChaos:
    def test_corrupted_entries_are_remisses_not_poison(self, tmp_path):
        cache = SweepCache(tmp_path, enabled=True)
        executor = SweepExecutor(backend="serial", cache=cache)
        tasks = [SweepTask(probe, (i,)) for i in range(TASKS)]
        assert executor.run(tasks) == expected()
        corrupted = corrupt_cache_entries(tmp_path, seed=7, fraction=0.5)
        assert corrupted  # the plan must actually rot something
        assert executor.run(tasks) == expected()
        # The rotted entries were rewritten: a third pass is all hits.
        cache.stats.reset()
        assert executor.run(tasks) == expected()
        assert cache.stats.misses == 0

    def test_corrupt_fraction_validation(self, tmp_path):
        with pytest.raises(ValueError):
            corrupt_cache_entries(tmp_path, fraction=1.5)


class TestShardedChaos:
    """The sharded engine's fan-out inherits the executor's fault
    tolerance — including the estimator memo round-trip: a shard task
    ships the parent's memo snapshot and returns a delta, and a crashed
    worker's retry must neither lose nor duplicate estimates."""

    def run_sharded(self, chaos=None, retry=None):
        estimator = StepTimeEstimator()
        simulator = FleetSimulator(
            DEFAULT_FLEET,
            policy="first-fit",
            estimator=estimator,
            compressed=True,
            shards=2,
            shard_backend="thread",
            shard_retry=retry,
            shard_chaos=chaos,
        )
        result = simulator.run(
            PoissonArrivals(num_jobs=120, seed=5, mean_interarrival=0.05)
        )
        digest = json.dumps(result.to_dict(include_overhead=False), sort_keys=True)
        return digest, dict(estimator._memo), simulator.shard_stats

    def test_memo_round_trip_under_worker_death(self):
        clean_digest, clean_memo, _ = self.run_sharded()
        chaotic_digest, chaotic_memo, stats = self.run_sharded(
            # Crash every shard task's first attempt: deterministic
            # worker death on the fan-out, repaired by one retry each.
            chaos=ChaosPlan(seed=7, crash_rate=1.0, fail_attempts=1),
            retry=RetryPolicy(max_attempts=5, backoff=0.001, max_backoff=0.004),
        )
        assert chaotic_digest == clean_digest
        assert chaotic_memo == clean_memo
        assert stats is not None and stats.retries > 0
