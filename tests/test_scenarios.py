"""Scenario registry and the end-to-end ``run_scenario`` API."""

from __future__ import annotations

import dataclasses

import pytest

from repro.api import run_scenario
from repro.core.config import RuntimeConfig
from repro.scenarios import (
    SCENARIOS,
    Scenario,
    Workload,
    available_scenarios,
    describe_scenarios,
    get_scenario,
    merge_graphs,
    register_scenario,
)
from repro.graph.synthetic import synthetic_graph
from repro.hardware.zoo import available_machines


class TestWorkload:
    def test_requires_exactly_one_source(self):
        with pytest.raises(ValueError):
            Workload()
        with pytest.raises(ValueError):
            Workload(model="resnet50", synthetic_ops=100)

    def test_model_workload_builds(self):
        graph = Workload(model="dcgan").build()
        assert len(graph) > 0

    def test_synthetic_workload_is_seeded(self):
        w = Workload(synthetic_ops=40)
        a, b = w.build(seed=5), w.build(seed=5)
        assert [op.name for op in a.ops] == [op.name for op in b.ops]
        c = w.build(seed=6)
        assert [op.name for op in a.ops] != [op.name for op in c.ops] or (
            a.num_edges != c.num_edges
        )

    def test_names(self):
        assert Workload(model="lstm").name == "lstm"
        assert Workload(synthetic_ops=40).name == "synthetic-40"
        assert Workload(synthetic_ops=40, label="burst").name == "burst"


class TestMergeGraphs:
    def test_disjoint_union_preserves_structure(self):
        a = synthetic_graph(30, seed=0, width=4)
        b = synthetic_graph(20, seed=1, width=4)
        merged = merge_graphs({"a": a, "b": b}, name="mix")
        assert len(merged) == len(a) + len(b)
        assert merged.num_edges == a.num_edges + b.num_edges
        for op in a.ops:
            assert f"a/{op.name}" in merged
            preds = set(merged.predecessors(f"a/{op.name}"))
            assert preds == {f"a/{p}" for p in a.predecessors(op.name)}
        # No cross-component edges: every dependency stays inside its prefix.
        for op in merged.ops:
            prefix = op.name.split("/", 1)[0]
            for dep in merged.predecessors(op.name):
                assert dep.split("/", 1)[0] == prefix


class TestScenarioRegistry:
    def test_default_registry_populated(self):
        names = available_scenarios()
        assert "paper-knl" in names
        assert len(names) >= 6
        # Every scenario resolves to a real zoo machine.
        for name in names:
            assert get_scenario(name).machine in available_machines()

    def test_scenarios_cover_multiple_machines(self):
        machines = {get_scenario(n).machine for n in available_scenarios()}
        assert len(machines) >= 4

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError, match="paper-knl"):
            get_scenario("nonexistent")

    def test_register_and_overwrite(self):
        scenario = Scenario(
            "test-tmp", machine="laptop-4c", workloads=(Workload(model="dcgan"),)
        )
        try:
            register_scenario(scenario)
            assert get_scenario("test-tmp") is scenario
            with pytest.raises(ValueError, match="already registered"):
                register_scenario(scenario)
            register_scenario(scenario, overwrite=True)
        finally:
            SCENARIOS.pop("test-tmp", None)

    def test_register_rejects_dangling_machine(self):
        bad = Scenario(
            "test-bad", machine="pdp-11", workloads=(Workload(model="dcgan"),)
        )
        with pytest.raises(KeyError):
            register_scenario(bad)
        assert "test-bad" not in SCENARIOS

    def test_validation(self):
        with pytest.raises(ValueError):
            Scenario("", machine="knl", workloads=(Workload(model="dcgan"),))
        with pytest.raises(ValueError):
            Scenario("x", machine="knl", workloads=())

    def test_describe_lists_everything(self):
        text = describe_scenarios()
        for name in available_scenarios():
            assert name in text

    def test_config_is_reseeded(self):
        scenario = Scenario(
            "test-seeded",
            machine="knl",
            workloads=(Workload(model="dcgan"),),
            config=RuntimeConfig(seed=123),
            seed=7,
        )
        assert scenario.build_config().seed == 7

    def test_to_dict_from_dict_round_trip(self):
        from repro.scenarios import scenario_specs

        for name in available_scenarios():
            scenario = get_scenario(name)
            spec = scenario.to_dict()
            assert Scenario.from_dict(spec) == scenario
            # The spec is JSON-stable (sortable, serialisable).
            import json

            assert json.loads(json.dumps(spec)) == spec
        # scenario_specs is sorted by name.
        assert list(scenario_specs()) == sorted(available_scenarios())

    def test_round_trip_preserves_config(self):
        scenario = Scenario(
            "test-roundtrip",
            machine="laptop-4c",
            workloads=(Workload(synthetic_ops=40), Workload(model="dcgan")),
            config=RuntimeConfig(strategy4_hyperthreading=False, seed=5),
            seed=9,
            description="round trip",
        )
        rebuilt = Scenario.from_dict(scenario.to_dict())
        assert rebuilt == scenario
        assert rebuilt.build_config() == scenario.build_config()

    def test_describe_is_sorted(self):
        lines = describe_scenarios().splitlines()
        names = [line.split()[0] for line in lines]
        assert names == sorted(names)

    def test_corun_mix_merges(self):
        mix = get_scenario("synthetic-burst-laptop")
        assert mix.is_corun_mix
        graph = mix.build_graph()
        total = sum(w.synthetic_ops for w in mix.workloads)
        assert len(graph) == total
        # Per-workload seeds differ, so the two synthetic halves differ.
        halves = {op.name.split("/", 1)[0] for op in graph.ops}
        assert len(halves) == 2


class TestRunScenario:
    def test_end_to_end_is_deterministic(self):
        first = run_scenario("dcgan-desktop")
        second = run_scenario("dcgan-desktop")
        assert first == second
        assert first.machine == "desktop-8c"
        assert first.step_time > 0
        assert first.recommendation_time > 0
        assert first.num_ops > 0
        assert "desktop-8c" in str(first)

    def test_accepts_scenario_value_and_overrides(self):
        scenario = get_scenario("dcgan-desktop")
        base = run_scenario(scenario)
        moved = run_scenario(scenario, machine="laptop-4c")
        assert moved.machine == "laptop-4c"
        assert moved.step_time != base.step_time
        reseeded = run_scenario(
            dataclasses.replace(
                scenario, workloads=(Workload(synthetic_ops=40),)
            ),
            seed=3,
        )
        assert reseeded.num_ops == 40
