"""End-to-end run store recording + `repro report` replay gates.

The acceptance bar: two `run_fleet` calls with different policies diff
cleanly, and stored runs replay their tables / regenerate the committed
``BENCH_fleet.json`` section **byte-identically with zero simulator
invocations** — every simulated-execution entry point is booby-trapped
during replay, the PR 2 warm-cache gate pattern one layer up.
"""

from __future__ import annotations

import json

import pytest

from benchmarks.fleet_bench import run_fleet_benchmark, write_bench_json
from repro.api import run_fleet
from repro.execsim.simulator import StepSimulator
from repro.execsim.standalone import StandaloneRunner
from repro.fleet.simulator import OVERHEAD_KEYS, FleetSimulator
from repro.store import RunStore, store as store_module
from repro.store.cli import main as report_main
from repro.store.reporting import (
    diff_runs,
    fleet_comparison_table,
    regenerate_bench_file,
    replay_report,
)
from repro.sweep import SweepCache, SweepExecutor

FLEET = ("desktop-8c", "laptop-4c")


@pytest.fixture(scope="module")
def fleet_store(tmp_path_factory):
    """One store holding two real `run_fleet` runs differing only in policy."""
    root = tmp_path_factory.mktemp("run_store")
    store = RunStore(root)
    executor = SweepExecutor("serial", cache=SweepCache(enabled=False))
    outcomes = {}
    for policy in ("first-fit", "interference-aware"):
        outcomes[policy] = run_fleet(
            machines=FLEET,
            policy=policy,
            num_jobs=6,
            arrival_seed=3,
            executor=executor,
            store=store,
        )
    return store, outcomes


def _trap_simulators(monkeypatch):
    """Booby-trap every simulated-execution entry point."""

    def boom(*args, **kwargs):  # pragma: no cover - failure path
        raise AssertionError("simulator invoked during a stored-run replay")

    monkeypatch.setattr(FleetSimulator, "run", boom)
    monkeypatch.setattr(StepSimulator, "run_step", boom)
    for method in ("run", "measure", "sweep", "corun", "sweep_many"):
        monkeypatch.setattr(StandaloneRunner, method, boom)


class TestRunFleetRecording:
    def test_outcomes_carry_run_ids(self, fleet_store):
        store, outcomes = fleet_store
        ids = {o.run_id for o in outcomes.values()}
        assert None not in ids and len(ids) == 2
        for outcome in outcomes.values():
            record = store.get(outcome.run_id)
            assert record.kind == "fleet"
            assert record.digest_excludes == OVERHEAD_KEYS
            assert record.payload["makespan"] == outcome.makespan

    def test_config_names_the_policy(self, fleet_store):
        store, outcomes = fleet_store
        for policy, outcome in outcomes.items():
            config = store.get(outcome.run_id).config
            assert config["policy"] == policy
            assert config["machines"] == list(FLEET)
            assert config["arrivals"]["seed"] == 3

    def test_diff_isolates_the_policy_change(self, fleet_store):
        store, outcomes = fleet_store
        a = store.get(outcomes["first-fit"].run_id)
        b = store.get(outcomes["interference-aware"].run_id)
        diff = diff_runs(a, b)
        assert diff["config_delta"]["policy"] == {
            "a": "first-fit",
            "b": "interference-aware",
        }
        assert set(diff["config_delta"]) == {"policy"}
        # Overhead keys are digest-excluded noise and must not show up.
        assert not set(diff["metric_delta"]) & set(OVERHEAD_KEYS)


class TestReportCli:
    def test_list(self, fleet_store, capsys):
        store, outcomes = fleet_store
        assert report_main(["list", "--store", str(store.root)]) == 0
        out = capsys.readouterr().out
        for outcome in outcomes.values():
            assert outcome.run_id[:12] in out

    def test_list_json(self, fleet_store, capsys):
        store, _ = fleet_store
        assert report_main(["list", "--json", "--store", str(store.root)]) == 0
        listed = json.loads(capsys.readouterr().out)
        assert {entry["kind"] for entry in listed} == {"fleet"}

    def test_show_with_payload(self, fleet_store, capsys):
        store, outcomes = fleet_store
        run_id = outcomes["first-fit"].run_id
        code = report_main(
            ["show", run_id[:8], "--payload", "--store", str(store.root)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert run_id in out and "first-fit" in out and "machine_reports" in out

    def test_diff(self, fleet_store, capsys):
        store, outcomes = fleet_store
        a, b = (outcomes[p].run_id for p in ("first-fit", "interference-aware"))
        assert report_main(["diff", a[:8], b[:8], "--store", str(store.root)]) == 0
        out = capsys.readouterr().out
        assert "policy" in out and "interference-aware" in out

    def test_unknown_prefix_is_an_error(self, fleet_store, capsys):
        store, _ = fleet_store
        assert report_main(["show", "feed", "--store", str(store.root)]) == 2
        assert "no run matching" in capsys.readouterr().err

    def test_table_replays_without_simulating(self, fleet_store, capsys, monkeypatch):
        store, outcomes = fleet_store
        _trap_simulators(monkeypatch)
        a, b = (outcomes[p].run_id for p in ("first-fit", "interference-aware"))
        assert report_main(["table", a[:8], b[:8], "--store", str(store.root)]) == 0
        out = capsys.readouterr().out
        assert "replayed, not re-simulated" in out
        assert "first-fit" in out and "interference-aware" in out

    def test_table_matches_library_rendering(self, fleet_store, monkeypatch):
        store, outcomes = fleet_store
        _trap_simulators(monkeypatch)
        records = [store.get(o.run_id) for o in outcomes.values()]
        table = fleet_comparison_table(records)
        assert f"{outcomes['first-fit'].makespan:.2f}" in table


class TestExperimentReplay:
    def test_fleet_experiment_replays_byte_identically(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.experiments import fleet_corun

        store = RunStore(tmp_path / "store")
        monkeypatch.setattr(store_module, "_default_store", store)
        executor = SweepExecutor("serial", cache=SweepCache(enabled=False))
        result = fleet_corun.run(
            machines=FLEET, num_jobs=5, arrival_seed=2, executor=executor
        )
        live_report = fleet_corun.format_report(result)

        record = store.latest(kind="experiment", name="fleet")
        assert record is not None

        _trap_simulators(monkeypatch)
        assert replay_report(record) == live_report
        code = report_main(["table", record.run_id[:8], "--store", str(store.root)])
        assert code == 0
        assert capsys.readouterr().out.rstrip("\n") == live_report.rstrip("\n")


class TestBenchRegeneration:
    @pytest.fixture(scope="class")
    def bench_store(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("bench_store")
        store = RunStore(root / "store")
        report = run_fleet_benchmark(num_jobs=6, arrival_seed=3, jobs=1, store=store)
        path = root / "BENCH_fleet.json"
        write_bench_json(report, path)
        return store, report, path

    def test_section_and_policy_runs_recorded(self, bench_store):
        store, report, _ = bench_store
        section = store.latest(kind="bench", name="fleet-smoke")
        assert section is not None
        assert set(section.extras["runs"]) == set(report["policies"])
        for run_id in section.extras["runs"].values():
            assert store.get(run_id).kind == "fleet"

    def test_regenerates_byte_identically_without_simulating(
        self, bench_store, tmp_path, monkeypatch
    ):
        store, _, path = bench_store
        _trap_simulators(monkeypatch)
        text, drift = regenerate_bench_file(
            store, "fleet-smoke", path, check=True
        )
        assert drift == []
        assert text == path.read_text()
        fresh = tmp_path / "fresh.json"
        fresh_text, fresh_drift = regenerate_bench_file(store, "fleet-smoke", fresh)
        assert fresh_drift == []
        assert fresh.read_text() == fresh_text == path.read_text()

    def test_cli_check_passes_then_catches_tampering(
        self, bench_store, capsys, monkeypatch
    ):
        store, _, path = bench_store
        _trap_simulators(monkeypatch)
        args = ["bench", "fleet-smoke", "--file", str(path), "--store", str(store.root)]
        assert report_main(args + ["--check"]) == 0
        capsys.readouterr()

        doctored = json.loads(path.read_text())
        doctored["policies"]["first-fit"]["makespan"] += 1.0
        path.write_text(json.dumps(doctored, indent=2) + "\n")
        assert report_main(args + ["--check"]) == 1
        assert "DRIFT" in capsys.readouterr().err

    def test_missing_section_is_an_error(self, tmp_path, capsys):
        store = RunStore(tmp_path / "empty")
        code = report_main(
            ["bench", "no-such-section", "--store", str(store.root)]
        )
        assert code == 2
        assert "no stored bench run" in capsys.readouterr().err
