"""The fleet layer: jobs, estimates, policies, simulator, API."""

from __future__ import annotations

import json

import pytest

from repro.api import DEFAULT_FLEET, run_fleet
from repro.core.config import RuntimeConfig
from repro.core.interference import InterferenceTracker
from repro.fleet import (
    FleetSimulator,
    Job,
    StepTimeEstimator,
    available_policies,
    canonical_mix,
    corun_step_time,
    generate_trace,
    jobs_from_scenario,
    make_policy,
)
from repro.fleet.estimates import EstimatorStats
from repro.fleet.policies import FirstFitPolicy, InterferenceAwarePolicy
from repro.scenarios import Workload
from repro.sweep import SweepCache, SweepExecutor

SYN_A = Workload(synthetic_ops=24, synthetic_width=4, label="kind-a")
SYN_B = Workload(synthetic_ops=24, synthetic_width=4, heavy_fraction=0.6, label="kind-b")


def job(name, workload=SYN_A, steps=2, arrival=0.0, seed=0):
    return Job(
        name=name,
        workload=workload,
        num_steps=steps,
        arrival_time=arrival,
        graph_seed=seed,
    )


class FakeEstimator:
    """Deterministic dict-driven estimator for fast policy/simulator tests.

    ``solo[(machine, kind)]`` gives the isolated step time; co-run mixes
    cost ``pair_factor`` (optionally per unordered kind pair) times the
    slowest member.
    """

    def __init__(self, solo, pair_factor=1.5, pair_factors=None):
        self.solo = solo
        self.pair_factor = pair_factor
        self.pair_factors = pair_factors or {}
        self.stats = EstimatorStats()

    def _solo(self, machine_name, job):
        return self.solo[(machine_name, job.kind)]

    def step_time(self, machine_name, jobs):
        jobs = list(jobs)
        self.stats.requests += 1
        if len(jobs) == 1:
            return self._solo(machine_name, jobs[0])
        slowest = max(self._solo(machine_name, j) for j in jobs)
        kinds = sorted(j.kind for j in jobs)
        factor = self.pair_factors.get(tuple(kinds), self.pair_factor)
        return slowest * factor

    def solo_time(self, machine_name, job):
        return self.step_time(machine_name, (job,))

    def prewarm(self, machine_names, jobs, max_corun=1):
        return 0


class TestJobAndTrace:
    def test_job_validation(self):
        with pytest.raises(ValueError):
            job("")
        with pytest.raises(ValueError):
            job("x", steps=0)
        with pytest.raises(ValueError):
            Job(name="x", workload=SYN_A, num_steps=1, arrival_time=-1.0)

    def test_kind_is_workload_name(self):
        assert job("x", workload=SYN_B).kind == "kind-b"

    def test_trace_is_deterministic(self):
        first = generate_trace(12, seed=5)
        second = generate_trace(12, seed=5)
        assert first == second
        different = generate_trace(12, seed=6)
        assert first != different

    def test_trace_arrivals_increase(self):
        trace = generate_trace(10, seed=1)
        arrivals = [j.arrival_time for j in trace]
        assert arrivals == sorted(arrivals)
        assert len({j.name for j in trace}) == 10

    def test_trace_shares_graph_seed_per_kind(self):
        trace = generate_trace(30, seed=2)
        seeds_by_kind = {}
        for j in trace:
            seeds_by_kind.setdefault(j.kind, set()).add(j.graph_seed)
        assert all(len(seeds) == 1 for seeds in seeds_by_kind.values())

    def test_jobs_from_scenario(self):
        jobs = jobs_from_scenario("corun-mix-knl", num_steps=3)
        assert len(jobs) == 2
        assert {j.kind for j in jobs} == {"resnet50", "dcgan"}
        assert all(j.num_steps == 3 for j in jobs)


class TestCanonicalMix:
    def test_order_independent(self):
        a, b = job("a"), job("b", workload=SYN_B)
        assert canonical_mix([a, b]) == canonical_mix([b, a])

    def test_same_kind_jobs_share_key(self):
        # Two different jobs of one kind canonicalise identically.
        assert canonical_mix([job("a"), job("b")]) == canonical_mix(
            [job("c"), job("d")]
        )


class TestCorunStepTime:
    def test_is_pure_and_cacheable(self, tmp_path):
        entries = canonical_mix([job("a"), job("b", workload=SYN_B)])
        config = RuntimeConfig()
        direct = corun_step_time(entries, "laptop-4c", config)
        assert direct > 0
        cache = SweepCache(tmp_path / "cache")
        with SweepExecutor("serial", cache=cache) as executor:
            first = executor.map(corun_step_time, [(entries, "laptop-4c", config)])[0]
        with SweepExecutor("serial", cache=SweepCache(tmp_path / "cache")) as executor:
            second = executor.map(corun_step_time, [(entries, "laptop-4c", config)])[0]
            assert executor.stats.cache_hits == 1
        assert first == direct
        assert second == direct

    def test_estimator_memoises(self):
        estimator = StepTimeEstimator()
        a = job("a")
        first = estimator.step_time("laptop-4c", (a,))
        second = estimator.solo_time("laptop-4c", job("b"))
        assert first == second  # same kind, same seed -> same canonical mix
        assert estimator.stats.requests == 2
        assert estimator.stats.computed == 1

    def test_prewarm_covers_solo_estimates(self):
        estimator = StepTimeEstimator()
        jobs = [job("a"), job("b", workload=SYN_B)]
        computed = estimator.prewarm(["laptop-4c", "laptop-4c"], jobs)
        assert computed == 2
        estimator.solo_time("laptop-4c", jobs[0])
        assert estimator.stats.computed == 2  # served from memo
        # Prewarmed estimates count as requests: memo_hits stays >= 0.
        assert estimator.stats.requests == 3
        assert estimator.stats.memo_hits == 1


def fake_fleet(machines, policy, **kwargs):
    """A simulator over FakeEstimator-backed machines 'fast' and 'slow'."""
    solo = {}
    for name in machines:
        base = 1.0 if name == "desktop-8c" else 3.0
        solo[(name, "kind-a")] = base
        solo[(name, "kind-b")] = 1.5 * base
    estimator = kwargs.pop("estimator", None) or FakeEstimator(solo, **kwargs)
    return (
        FleetSimulator(machines, policy=policy, estimator=estimator),
        estimator,
    )


class TestPolicies:
    def test_available_policies_sorted(self):
        assert available_policies() == (
            "first-fit",
            "interference-aware",
            "load-balanced",
        )
        with pytest.raises(KeyError, match="first-fit"):
            make_policy(
                "nonexistent",
                estimator=StepTimeEstimator(),
                tracker=InterferenceTracker(),
            )

    def test_first_fit_packs_early_machines(self):
        machines = ["desktop-8c", "desktop-8c"]
        sim, _ = fake_fleet(machines, "first-fit")
        jobs = [job("a", arrival=0.0), job("b", arrival=0.0, steps=3)]
        result = sim.run(jobs, prewarm=False)
        assert {p.machine_id for p in result.placements} == {"m0"}

    def test_load_balanced_spreads(self):
        machines = ["desktop-8c", "desktop-8c"]
        sim, _ = fake_fleet(machines, "load-balanced")
        jobs = [job("a", arrival=0.0), job("b", arrival=0.0, steps=3)]
        result = sim.run(jobs, prewarm=False)
        assert {p.machine_id for p in result.placements} == {"m0", "m1"}

    def test_interference_aware_avoids_blacklisted_pairing(self):
        machines = ["desktop-8c", "laptop-4c"]
        sim, _ = fake_fleet(machines, "interference-aware")
        # Pre-seed fleet-wide knowledge: kind-a x kind-b thrash.
        sim.tracker.record("kind-a", "kind-b", 2.0)
        jobs = [
            job("a", arrival=0.0, steps=4),
            job("b", workload=SYN_B, arrival=0.0, steps=4),
        ]
        result = sim.run(jobs, prewarm=False)
        by_job = {p.job: p.machine_id for p in result.placements}
        # Despite the fast machine having a free slot, the blacklisted
        # pairing forces the second job onto the slow machine.
        assert by_job["a"] != by_job["b"]

    def test_interference_aware_colocates_when_profitable(self):
        machines = ["desktop-8c", "laptop-4c"]
        # Pairing overhead is tiny: sharing the fast machine beats the
        # 3x slower idle machine.
        sim, _ = fake_fleet(machines, "interference-aware", pair_factor=1.1)
        jobs = [job("a", arrival=0.0, steps=4), job("b", arrival=0.0, steps=4)]
        result = sim.run(jobs, prewarm=False)
        assert {p.machine_id for p in result.placements} == {"m0"}

    def test_interference_tracker_learns_from_corun_rounds(self):
        machines = ["desktop-8c"]
        # One machine, forced co-location, terrible pairing.
        sim, _ = fake_fleet(machines, "first-fit", pair_factor=2.5)
        jobs = [job("a", steps=3), job("b", workload=SYN_B, steps=3)]
        result = sim.run(jobs, prewarm=False)
        assert ("kind-a", "kind-b") in result.blacklisted_pairs
        assert sim.tracker.observations("kind-a", "kind-b")


class TestFleetSimulator:
    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            FleetSimulator([])
        with pytest.raises(KeyError):
            FleetSimulator(["pdp-11"])
        with pytest.raises(ValueError):
            FleetSimulator(["laptop-4c"], max_corun=0)
        sim, _ = fake_fleet(["desktop-8c"], "first-fit")
        with pytest.raises(ValueError):
            sim.run([job("a"), job("a")])

    def test_empty_trace_returns_empty_result(self):
        # An empty trace must not raise (mean_wait_time used to divide by
        # zero and makespan's max() blew up on the empty sequence).
        for compressed in (False, True):
            sim = FleetSimulator(
                ["desktop-8c", "laptop-4c"],
                policy="first-fit",
                compressed=compressed,
            )
            result = sim.run([])
            assert result.num_jobs == 0
            assert result.makespan == 0.0
            assert result.mean_wait_time == 0.0
            assert result.mean_turnaround_time == 0.0
            assert result.completions == ()
            assert result.placements == ()
            assert len(result.machine_reports) == 2
            for report in result.machine_reports:
                assert report.rounds == 0
                assert report.utilization == 0.0
            # The dict form round-trips through json unscathed.
            json.dumps(result.to_dict())

    def test_all_jobs_complete_exactly_once(self):
        sim, _ = fake_fleet(["desktop-8c", "laptop-4c"], "load-balanced")
        jobs = generate_trace(9, seed=4, workloads=(SYN_A, SYN_B))
        result = sim.run(jobs, prewarm=False)
        assert sorted(c.job for c in result.completions) == sorted(
            j.name for j in jobs
        )
        for completion in result.completions:
            assert completion.start_time >= completion.arrival_time
            assert completion.finish_time > completion.start_time
        assert result.makespan == max(c.finish_time for c in result.completions)

    def test_deterministic_for_fixed_inputs(self):
        jobs = generate_trace(8, seed=9, workloads=(SYN_A, SYN_B))
        outcomes = []
        for _ in range(2):
            sim, _ = fake_fleet(
                ["desktop-8c", "laptop-4c", "desktop-8c"], "interference-aware"
            )
            result = sim.run(jobs, prewarm=False)
            outcomes.append(
                json.dumps(result.to_dict(include_overhead=False), sort_keys=True)
            )
        assert outcomes[0] == outcomes[1]

    def test_reused_simulator_is_deterministic(self):
        # A second run on the SAME simulator must not be contaminated by
        # the first run's learned blacklist or cumulative estimator stats.
        jobs = generate_trace(8, seed=9, workloads=(SYN_A, SYN_B))
        sim, _ = fake_fleet(
            ["desktop-8c", "laptop-4c"], "interference-aware", pair_factor=2.5
        )
        first = sim.run(jobs, prewarm=False)
        second = sim.run(jobs, prewarm=False)
        assert first.to_dict(include_overhead=False) == second.to_dict(
            include_overhead=False
        )
        assert first.estimates_requested == second.estimates_requested

    def test_preseeded_knowledge_survives_reuse(self):
        sim, _ = fake_fleet(["desktop-8c", "laptop-4c"], "interference-aware")
        sim.tracker.record("kind-a", "kind-b", 2.0)
        jobs = [
            job("a", arrival=0.0, steps=4),
            job("b", workload=SYN_B, arrival=0.0, steps=4),
        ]
        for _ in range(2):
            result = sim.run(jobs, prewarm=False)
            by_job = {p.job: p.machine_id for p in result.placements}
            assert by_job["a"] != by_job["b"]

    def test_machine_reports_carry_local_blacklist(self):
        sim, _ = fake_fleet(["desktop-8c"], "first-fit", pair_factor=2.5)
        jobs = [job("a", steps=3), job("b", workload=SYN_B, steps=3)]
        result = sim.run(jobs, prewarm=False)
        assert result.machine_reports[0].local_blacklist == (("kind-a", "kind-b"),)
        # Fleet-wide blacklist is the union of the machines' local ones.
        assert set(result.blacklisted_pairs) >= set(
            result.machine_reports[0].local_blacklist
        )

    def test_capacity_respected(self):
        sim, _ = fake_fleet(["desktop-8c"], "first-fit")
        jobs = [job(f"j{i}", steps=2, arrival=0.0) for i in range(5)]
        result = sim.run(jobs, prewarm=False)
        # Never more than max_corun residents: every round is at most a pair.
        for report in result.machine_reports:
            assert report.corun_rounds <= report.rounds
        assert len(result.completions) == 5

    def test_real_estimator_end_to_end(self):
        # Small real integration: actual merged-graph simulation under the
        # runtime, two machines, deterministic across simulator instances.
        jobs = [
            job("a", steps=2),
            job("b", workload=SYN_B, steps=2, arrival=0.5),
            job("c", steps=1, arrival=1.0),
        ]
        results = []
        for _ in range(2):
            sim = FleetSimulator(
                ["laptop-4c", "desktop-8c"], policy="interference-aware"
            )
            results.append(sim.run(jobs).to_dict(include_overhead=False))
        assert results[0] == results[1]
        assert results[0]["makespan"] > 0


class TestRunFleetApi:
    def test_run_fleet_outcome(self):
        outcome = run_fleet(
            num_jobs=4,
            arrival_seed=3,
            machines=("laptop-4c", "desktop-8c"),
            policy="first-fit",
        )
        assert outcome.policy == "first-fit"
        assert outcome.num_jobs == 4
        assert outcome.makespan > 0
        assert outcome.total_rounds >= outcome.corun_rounds
        assert "fleet[first-fit]" in str(outcome)

    def test_default_fleet_machines_exist(self):
        from repro.hardware.zoo import available_machines

        assert len(DEFAULT_FLEET) == 5
        for name in DEFAULT_FLEET:
            assert name in available_machines()

    def test_unknown_policy_raises(self):
        with pytest.raises(KeyError):
            run_fleet(num_jobs=2, machines=("laptop-4c",), policy="pdp-11")
