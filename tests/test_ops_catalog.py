"""Tests for the operation cost catalog and registry."""

from __future__ import annotations

import pytest

from repro.graph.op import OpInstance
from repro.graph.shapes import TensorShape, shape
from repro.ops.catalog import known_op_types
from repro.ops.characteristics import OpCharacteristics
from repro.ops.cost import characterize, characterize_cached
from repro.ops.registry import OpRegistry, default_registry

from tests.conftest import make_conv_op, make_elementwise_op


class TestCharacteristics:
    def test_validation(self):
        with pytest.raises(ValueError):
            OpCharacteristics(
                flops=-1, bytes_touched=1, working_set=1, serial_fraction=0.1,
                reuse_potential=0.5, parallel_grains=1,
            )
        with pytest.raises(ValueError):
            OpCharacteristics(
                flops=1, bytes_touched=1, working_set=1, serial_fraction=1.0,
                reuse_potential=0.5, parallel_grains=1,
            )
        with pytest.raises(ValueError):
            OpCharacteristics(
                flops=1, bytes_touched=1, working_set=1, serial_fraction=0.1,
                reuse_potential=0.5, parallel_grains=0,
            )

    def test_arithmetic_intensity(self):
        chars = OpCharacteristics(
            flops=100, bytes_touched=50, working_set=10, serial_fraction=0.0,
            reuse_potential=0.5, parallel_grains=4,
        )
        assert chars.arithmetic_intensity == pytest.approx(2.0)

    def test_scaled(self):
        chars = OpCharacteristics(
            flops=100, bytes_touched=50, working_set=10, serial_fraction=0.1,
            reuse_potential=0.5, parallel_grains=4,
        )
        doubled = chars.scaled(2.0)
        assert doubled.flops == 200
        assert doubled.bytes_touched == 100
        assert doubled.parallel_grains == 8
        with pytest.raises(ValueError):
            chars.scaled(0)


class TestCatalog:
    def test_conv_flops_formula(self):
        op = make_conv_op("Conv2D", (32, 8, 8, 384))
        chars = characterize(op)
        expected = 2.0 * 32 * 8 * 8 * 384 * 384 * 9
        assert chars.flops == pytest.approx(expected)

    def test_backprop_filter_has_largest_per_thread_overhead(self):
        conv = characterize(make_conv_op("Conv2D"))
        dinput = characterize(make_conv_op("Conv2DBackpropInput"))
        dfilter = characterize(make_conv_op("Conv2DBackpropFilter"))
        assert dfilter.per_thread_overhead > dinput.per_thread_overhead > conv.per_thread_overhead

    def test_elementwise_is_memory_bound(self):
        chars = characterize(make_elementwise_op("Mul"))
        assert chars.memory_bound > 0.7
        assert chars.reuse_potential <= 0.2

    def test_matmul_flops(self):
        op = OpInstance("mm", "MatMul", (shape(64, 256), shape(256, 512)), shape(64, 512))
        chars = characterize(op)
        assert chars.flops == pytest.approx(2.0 * 64 * 256 * 512)

    def test_reduction_has_higher_serial_fraction_than_elementwise(self):
        reduction = characterize(make_elementwise_op("BiasAddGrad"))
        elementwise = characterize(make_elementwise_op("Mul"))
        assert reduction.serial_fraction > elementwise.serial_fraction

    def test_reshape_is_nearly_free(self):
        op = OpInstance("r", "Reshape", (shape(32, 64),), shape(64, 32))
        chars = characterize(op)
        assert chars.bytes_touched < 1024

    def test_apply_adam_touches_optimizer_state(self):
        params = shape(1024, 1024)
        op = OpInstance("adam", "ApplyAdam", (params,), params)
        chars = characterize(op)
        assert chars.bytes_touched == pytest.approx(5.0 * params.num_bytes)

    def test_every_catalog_type_characterizes(self):
        s4 = shape(8, 4, 4, 16)
        s2 = shape(8, 64)
        for op_type in known_op_types():
            inputs = (s4, s4) if "Conv2D" in op_type or op_type == "MatMul" else (s4,)
            op = OpInstance(f"x_{op_type}", op_type, inputs, s4 if op_type != "MatMul" else s2,
                            attrs={"kernel": (3, 3)})
            chars = characterize(op)
            assert chars.flops >= 0
            assert chars.bytes_touched >= 0
            assert chars.parallel_grains >= 1

    def test_unknown_type_uses_fallback(self):
        op = OpInstance("weird", "SomeBrandNewOp", (shape(16, 16),), shape(16, 16))
        chars = characterize(op)
        assert chars.flops > 0

    def test_cached_matches_uncached(self, conv_op):
        assert characterize_cached(conv_op) == characterize(conv_op)


class TestRegistry:
    def test_default_registry_is_populated(self):
        registry = default_registry()
        assert registry.is_known("Conv2D")
        assert registry.is_known("MatMul")
        assert len(registry) >= 40

    def test_register_and_overwrite_rules(self):
        registry = OpRegistry()
        estimator = lambda op: characterize(make_elementwise_op("Mul"))  # noqa: E731
        registry.register("Custom", estimator)
        assert registry.is_known("Custom")
        with pytest.raises(ValueError):
            registry.register("Custom", estimator)
        registry.register("Custom", estimator, overwrite=True)

    def test_unknown_without_fallback_raises(self):
        registry = OpRegistry()
        with pytest.raises(KeyError):
            registry.estimate(make_elementwise_op("Mul"))

    def test_empty_name_rejected(self):
        registry = OpRegistry()
        with pytest.raises(ValueError):
            registry.register("", lambda op: None)  # type: ignore[arg-type]

    def test_known_types_sorted(self):
        registry = default_registry()
        types = registry.known_types()
        assert list(types) == sorted(types)
