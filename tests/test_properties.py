"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.execsim.contention import RunningOpView, corun_slowdowns
from repro.execsim.op_runtime import execution_time
from repro.graph.builder import GraphBuilder
from repro.graph.shapes import TensorShape
from repro.graph.traversal import ready_frontier, topological_order
from repro.hardware.affinity import AffinityMode, CoreAllocator, ThreadPlacement
from repro.hardware.knl import knl_machine
from repro.mlkit import LinearRegression, StandardScaler
from repro.ops.characteristics import OpCharacteristics
from repro.utils.stats import paper_accuracy, r_squared

MACHINE = knl_machine()

dims_strategy = st.lists(st.integers(min_value=1, max_value=64), min_size=1, max_size=4)

chars_strategy = st.builds(
    OpCharacteristics,
    flops=st.floats(min_value=1e3, max_value=1e11),
    bytes_touched=st.floats(min_value=1e3, max_value=1e9),
    working_set=st.floats(min_value=1e3, max_value=1e8),
    serial_fraction=st.floats(min_value=0.0, max_value=0.3),
    reuse_potential=st.floats(min_value=0.0, max_value=1.0),
    parallel_grains=st.integers(min_value=1, max_value=100_000),
    per_thread_overhead=st.floats(min_value=0.0, max_value=1e-3),
    branchiness=st.floats(min_value=0.0, max_value=0.3),
    memory_bound=st.floats(min_value=0.0, max_value=1.0),
)


class TestShapeProperties:
    @given(dims=dims_strategy)
    def test_num_bytes_is_elements_times_dtype(self, dims):
        shape = TensorShape(dims)
        assert shape.num_bytes == shape.num_elements * 4
        assert shape.num_elements >= 1

    @given(dims=dims_strategy, batch=st.integers(min_value=1, max_value=256))
    def test_with_batch_preserves_trailing_dims(self, dims, batch):
        shape = TensorShape(dims)
        rebatched = shape.with_batch(batch)
        assert rebatched.dims[1:] == shape.dims[1:]
        assert rebatched.batch == batch


class TestExecutionTimeProperties:
    @given(chars=chars_strategy, threads=st.integers(min_value=1, max_value=272))
    @settings(max_examples=60, deadline=None)
    def test_time_is_positive_and_finite(self, chars, threads):
        breakdown = execution_time(chars, MACHINE, threads)
        assert np.isfinite(breakdown.total)
        assert breakdown.total > 0
        assert breakdown.overhead_time >= MACHINE.op_dispatch_cost
        assert 0.0 <= breakdown.memory_bound_fraction <= 1.0

    @given(chars=chars_strategy, threads=st.integers(min_value=1, max_value=68))
    @settings(max_examples=60, deadline=None)
    def test_never_faster_than_ideal_scaling(self, chars, threads):
        """No configuration beats perfectly linear scaling of the compute work."""
        breakdown = execution_time(chars, MACHINE, threads, AffinityMode.SHARED)
        ideal = chars.flops / (
            MACHINE.topology.effective_flops_per_core * min(threads, chars.parallel_grains)
        )
        assert breakdown.total >= ideal * 0.999

    @given(chars=chars_strategy, threads=st.integers(min_value=1, max_value=68))
    @settings(max_examples=40, deadline=None)
    def test_reconfiguration_strictly_adds_cost(self, chars, threads):
        base = execution_time(chars, MACHINE, threads).total
        reconfigured = execution_time(chars, MACHINE, threads, reconfigured=True).total
        assert reconfigured > base


class TestPlacementProperties:
    @given(threads=st.integers(min_value=1, max_value=34))
    def test_spread_placement_uses_exactly_one_thread_per_tile(self, threads):
        placement = ThreadPlacement.plan(threads, AffinityMode.SPREAD, MACHINE.topology)
        assert placement.tiles_used == threads
        assert placement.cores_used == threads

    @given(threads=st.integers(min_value=1, max_value=68))
    def test_shared_placement_never_exceeds_two_per_tile(self, threads):
        placement = ThreadPlacement.plan(threads, AffinityMode.SHARED, MACHINE.topology)
        assert placement.threads_per_tile <= MACHINE.topology.cores_per_tile
        assert placement.tiles_used * MACHINE.topology.cores_per_tile >= threads

    @given(requests=st.lists(st.integers(min_value=1, max_value=16), min_size=1, max_size=8))
    def test_allocator_conservation(self, requests):
        """Allocated plus free primary slots always equals the core count."""
        allocator = CoreAllocator(MACHINE.topology)
        allocations = []
        for request in requests:
            if request <= allocator.free_cores:
                allocations.append(allocator.allocate(request))
            total_allocated = sum(a.num_cores for a in allocations)
            assert total_allocated + allocator.free_cores == MACHINE.topology.num_cores
        for allocation in allocations:
            allocator.release(allocation)
        assert allocator.free_cores == MACHINE.topology.num_cores


class TestContentionProperties:
    @given(
        split=st.integers(min_value=4, max_value=64),
        mbf=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_disjoint_pinned_partitions_never_slow_core_sharing(self, split, mbf):
        views = [
            RunningOpView(
                key="a",
                core_ids=tuple(range(split)),
                threads=split,
                bandwidth_demand=0.0,
                memory_bound_fraction=mbf,
                memory_bound_char=mbf,
            ),
            RunningOpView(
                key="b",
                core_ids=tuple(range(split, 68)),
                threads=68 - split,
                bandwidth_demand=0.0,
                memory_bound_fraction=mbf,
                memory_bound_char=mbf,
            ),
        ]
        factors = corun_slowdowns(views, MACHINE)
        assert factors["a"] == pytest.approx(1.0, abs=1e-6)
        assert factors["b"] == pytest.approx(1.0, abs=1e-6)


class TestGraphProperties:
    @given(
        layer_sizes=st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=5),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_layered_random_dag_schedules_completely(self, layer_sizes, seed):
        """Executing ops in any topological order eventually readies everything."""
        rng = np.random.default_rng(seed)
        builder = GraphBuilder("random")
        shape = TensorShape((4, 4))
        previous_layer: list = []
        for width in layer_sizes:
            current_layer = []
            for _ in range(width):
                deps = [
                    op
                    for op in previous_layer
                    if rng.random() < 0.6
                ]
                current_layer.append(
                    builder.add("Mul", inputs=[shape, shape], output=shape, deps=deps)
                )
            previous_layer = current_layer
        graph = builder.build()

        order = topological_order(graph)
        completed: list[str] = []
        for name in order:
            assert name in ready_frontier(graph, completed) or not graph.predecessors(name) or all(
                dep in completed for dep in graph.predecessors(name)
            )
            completed.append(name)
        assert ready_frontier(graph, completed) == ()


class TestMlkitProperties:
    @given(
        n=st.integers(min_value=10, max_value=60),
        slope=st.floats(min_value=-5, max_value=5),
        intercept=st.floats(min_value=-5, max_value=5),
    )
    @settings(max_examples=30, deadline=None)
    def test_ols_recovers_exact_linear_relationships(self, n, slope, intercept):
        X = np.linspace(-1, 1, n).reshape(-1, 1)
        y = slope * X[:, 0] + intercept
        model = LinearRegression().fit(X, y)
        assert model.coef_[0] == pytest.approx(slope, abs=1e-6)
        assert model.intercept_ == pytest.approx(intercept, abs=1e-6)

    @given(data=st.lists(st.floats(min_value=-1e3, max_value=1e3), min_size=4, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_r_squared_of_identity_prediction_is_one(self, data):
        values = np.asarray(data)
        if np.allclose(values.std(), 0):
            return
        assert r_squared(values, values) == pytest.approx(1.0)
        assert paper_accuracy(np.abs(values) + 1.0, np.abs(values) + 1.0) == pytest.approx(1.0)

    @given(
        rows=st.integers(min_value=2, max_value=30),
        cols=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=30, deadline=None)
    def test_scaler_transform_inverse_roundtrip(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(rows, cols)) * rng.uniform(0.5, 10)
        scaler = StandardScaler()
        assert np.allclose(scaler.inverse_transform(scaler.fit_transform(X)), X, atol=1e-9)
