"""The vectorised sweep grid must be bit-identical to the scalar model."""

from __future__ import annotations

import dataclasses

import pytest

from repro.execsim.op_runtime import (
    execution_time,
    sweep_thread_counts,
)
from repro.hardware.affinity import AffinityMode, ThreadPlacement
from repro.hardware.knl import knl_machine
from repro.ops.cost import characterize

from tests.conftest import make_conv_op, make_elementwise_op


def _reference_sweep(chars, machine):
    results = {}
    for affinity in (AffinityMode.SPREAD, AffinityMode.SHARED):
        for count in ThreadPlacement.feasible_thread_counts(affinity, machine.topology):
            results[(count, affinity)] = execution_time(chars, machine, count, affinity)
    return results


@pytest.mark.parametrize(
    "op",
    [
        make_conv_op("Conv2D", (32, 8, 8, 384)),
        make_conv_op("Conv2DBackpropFilter", (32, 8, 8, 2048)),
        make_elementwise_op("Mul", (20, 200)),
        make_elementwise_op("Relu", (64, 112, 112, 64)),
    ],
    ids=lambda op: op.name,
)
def test_grid_bit_identical_to_scalar_model(knl, op):
    chars = characterize(op)
    grid = sweep_thread_counts(chars, knl)
    reference = _reference_sweep(chars, knl)
    assert grid.keys() == reference.keys()
    for key, breakdown in grid.items():
        # Dataclass equality compares every float field exactly — any ulp
        # drift between the vectorised pass and the per-case model fails.
        assert breakdown == reference[key], key


def test_grid_on_nonstandard_topology(knl):
    """A different tile geometry exercises the placement tables."""
    small = dataclasses.replace(
        knl,
        topology=dataclasses.replace(knl.topology, num_cores=12, cores_per_tile=4),
    )
    chars = characterize(make_conv_op("Conv2D", (32, 8, 8, 384)))
    grid = sweep_thread_counts(chars, small)
    assert grid == _reference_sweep(chars, small)
    spread = [t for (t, a) in grid if a is AffinityMode.SPREAD]
    assert max(spread) == small.topology.num_tiles


def test_single_affinity_subset(knl):
    chars = characterize(make_conv_op("Conv2D", (32, 8, 8, 384)))
    shared_only = sweep_thread_counts(chars, knl, affinities=(AffinityMode.SHARED,))
    assert set(a for (_, a) in shared_only) == {AffinityMode.SHARED}
    full = sweep_thread_counts(chars, knl)
    assert all(full[key] == value for key, value in shared_only.items())


def test_unhashable_machine_falls_back_to_scalar_loop(knl):
    """Custom machines with unhashable parts still sweep correctly."""

    class OddMachine:
        """Duck-typed machine wrapper that defeats the lru-cached grid."""

        __hash__ = None

        def __init__(self, inner):
            self._inner = inner

        def __getattr__(self, name):
            return getattr(self._inner, name)

    chars = characterize(make_conv_op("Conv2D", (32, 8, 8, 384)))
    odd = OddMachine(knl)
    sweep = sweep_thread_counts(chars, odd)
    assert len(sweep) == 68
    assert sweep[(68, AffinityMode.SHARED)].total == pytest.approx(
        execution_time(chars, knl, 68, AffinityMode.SHARED).total
    )
