"""Regression tests: bisect-based HillClimbingModel.predict.

``predict`` was rewritten from a per-call dict rebuild plus linear
bracket scan to cached sorted arrays plus ``bisect``.  These tests pin
the new implementation to a verbatim copy of the original algorithm
across every feasible configuration, including the extrapolation band
beyond the climb's stopping point.
"""

from __future__ import annotations

import pytest

from repro.core.hill_climbing import HillClimbingModel, HillClimbingProfile
from repro.execsim.standalone import StandaloneRunner
from repro.graph.synthetic import synthetic_graph
from repro.hardware.affinity import AffinityMode

from tests.conftest import make_conv_op, make_elementwise_op


def _reference_predict(profile: HillClimbingProfile, threads: int, affinity: AffinityMode):
    """Verbatim copy of the seed implementation's interpolation."""
    counts = sorted(t for (t, a) in profile.samples if a is affinity)
    if not counts:
        raise KeyError("no samples")
    times = {c: profile.samples[(c, affinity)] for c in counts}
    if threads in times:
        return times[threads]
    if threads < counts[0]:
        return times[counts[0]]
    if threads > counts[-1]:
        if len(counts) == 1:
            return times[counts[0]]
        tail = counts[-3:] if len(counts) >= 3 else counts[-2:]
        slope = (times[tail[-1]] - times[tail[0]]) / (tail[-1] - tail[0])
        slope = max(slope, 0.0)
        last = times[counts[-1]]
        extrapolated = last + slope * (threads - counts[-1])
        return float(min(max(extrapolated, last * 0.8), last * 2.5))
    for lower, upper in zip(counts, counts[1:]):
        if lower <= threads <= upper:
            weight = (threads - lower) / (upper - lower)
            return times[lower] * (1 - weight) + times[upper] * weight
    raise AssertionError("unreachable")


def _profiled_model(knl, ops, interval=4):
    model = HillClimbingModel(knl, interval=interval)
    runner = StandaloneRunner(knl)
    for op in ops:
        model.profile_operation(op, runner)
    return model


class TestBisectPredictRegression:
    def test_identical_predictions_across_all_cases(self, knl):
        ops = [
            make_conv_op("Conv2D", (32, 8, 8, 384)),
            make_conv_op("Conv2DBackpropFilter", (32, 16, 16, 128)),
            make_elementwise_op("Mul", (32, 8, 8, 384)),
        ]
        model = _profiled_model(knl, ops)
        for op in ops:
            profile = model.profile_for(op.signature)
            for affinity in (AffinityMode.SPREAD, AffinityMode.SHARED):
                for threads in range(1, knl.topology.num_logical_cpus + 1):
                    expected = _reference_predict(profile, threads, affinity)
                    actual = model.predict(op.signature, threads, affinity)
                    assert actual == expected, (op.op_type, threads, affinity)

    def test_identical_on_synthetic_graph_signatures(self, knl):
        graph = synthetic_graph(120, seed=21)
        model = HillClimbingModel(knl, interval=8)
        runner = StandaloneRunner(knl)
        model.profile_graph(graph, runner)
        assert model.signatures
        for signature in model.signatures:
            profile = model.profile_for(signature)
            for affinity in (AffinityMode.SPREAD, AffinityMode.SHARED):
                for threads in (1, 2, 3, 7, 17, 34, 35, 68, 100, 272):
                    expected = _reference_predict(profile, threads, affinity)
                    actual = model.predict(signature, threads, affinity)
                    assert actual == expected, (str(signature), threads, affinity)

    def test_single_sample_profile(self, knl):
        profile = HillClimbingProfile(signature=make_conv_op().signature)
        profile.samples[(4, AffinityMode.SPREAD)] = 2.5
        model = HillClimbingModel(knl)
        model.add_profile(profile)
        sig = make_conv_op().signature
        assert model.predict(sig, 1, AffinityMode.SPREAD) == 2.5
        assert model.predict(sig, 4, AffinityMode.SPREAD) == 2.5
        assert model.predict(sig, 40, AffinityMode.SPREAD) == 2.5
        with pytest.raises(KeyError):
            model.predict(sig, 4, AffinityMode.SHARED)

    def test_table_invalidated_when_samples_grow(self, knl):
        """Profiling after a prediction must not serve a stale table."""
        profile = HillClimbingProfile(signature=make_conv_op().signature)
        profile.samples[(1, AffinityMode.SPREAD)] = 4.0
        profile.samples[(9, AffinityMode.SPREAD)] = 1.0
        model = HillClimbingModel(knl)
        model.add_profile(profile)
        sig = make_conv_op().signature
        assert model.predict(sig, 5, AffinityMode.SPREAD) == pytest.approx(2.5)
        profile.samples[(5, AffinityMode.SPREAD)] = 2.0
        assert model.predict(sig, 5, AffinityMode.SPREAD) == 2.0

    def test_in_place_replacement_needs_invalidate(self, knl):
        """Overwriting a sample's value requires an explicit invalidate."""
        profile = HillClimbingProfile(signature=make_conv_op().signature)
        profile.samples[(1, AffinityMode.SPREAD)] = 4.0
        profile.samples[(9, AffinityMode.SPREAD)] = 1.0
        model = HillClimbingModel(knl)
        model.add_profile(profile)
        sig = make_conv_op().signature
        assert model.predict(sig, 9, AffinityMode.SPREAD) == 1.0
        profile.samples[(9, AffinityMode.SPREAD)] = 3.0
        profile.invalidate_tables()
        assert model.predict(sig, 9, AffinityMode.SPREAD) == 3.0
        assert model.predict(sig, 5, AffinityMode.SPREAD) == pytest.approx(3.5)

    def test_invalid_inputs(self, knl):
        model = HillClimbingModel(knl)
        with pytest.raises(ValueError):
            model.predict(make_conv_op().signature, 0, AffinityMode.SPREAD)
        with pytest.raises(KeyError):
            model.predict(make_conv_op().signature, 4, AffinityMode.SPREAD)
