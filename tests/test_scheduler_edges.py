"""Strategy 3/4 edge cases on SMT-less and single-core-tile zoo machines.

PR 3 generalized the KNL-specific runtime to arbitrary topologies; these
tests lock in the degeneration behaviour under the refactored scheduler:
Strategy 4 must stay idle where no secondary SMT slots exist
(``arm-server-64c``), and Strategy 3's co-running must keep working on
machines whose tiles hold a single core (``laptop-4c``, ``desktop-8c``).
"""

from __future__ import annotations

import pytest

from repro.core.config import RuntimeConfig
from repro.core.oracle import OraclePerformanceModel
from repro.core.scheduler import RuntimeSchedulerPolicy
from repro.execsim.simulator import StepSimulator
from repro.graph.builder import GraphBuilder
from repro.graph.shapes import TensorShape
from repro.hardware.zoo import get_machine


def _wide_graph():
    """One big conv followed by independent medium/small ops (co-runnable)."""
    b = GraphBuilder("wide-edge")
    big = TensorShape((32, 8, 8, 1024))
    mid = TensorShape((32, 8, 8, 256))
    small = TensorShape((32, 512))
    conv = b.add("Conv2D", inputs=[big], output=big, attrs={"kernel": (3, 3)}, name="bigconv")
    for index in range(3):
        b.add("Conv2DBackpropInput", inputs=[mid, mid], output=mid,
              attrs={"kernel": (3, 3)}, name=f"medium{index}", deps=[conv])
    for index in range(3):
        b.add("Mul", inputs=[small, small], output=small, name=f"small{index}", deps=[conv])
    return b.build()


@pytest.fixture(scope="module")
def graph():
    return _wide_graph()


def _run(machine, graph, config):
    oracle = OraclePerformanceModel(machine)
    oracle.observe_graph(graph)
    policy = RuntimeSchedulerPolicy(oracle, config)
    return StepSimulator(machine).run_step(graph, policy)


class TestSmtLessMachine:
    """arm-server-64c: smt_per_core == 1, Strategy 4 has nothing to pack."""

    @pytest.fixture(scope="class")
    def arm(self):
        return get_machine("arm-server-64c")

    def test_no_hyperthread_launches(self, arm, graph):
        result = _run(arm, graph, RuntimeConfig.all_strategies())
        assert all(not r.used_hyperthreads for r in result.trace.records)

    def test_strategy4_degenerates_to_strategy3(self, arm, graph):
        with_s4 = _run(arm, graph, RuntimeConfig.all_strategies())
        without_s4 = _run(arm, graph, RuntimeConfig.strategies_1_2_3())
        assert with_s4.step_time == without_s4.step_time

    def test_strategy3_still_coruns(self, arm, graph):
        result = _run(arm, graph, RuntimeConfig.strategies_1_2_3())
        assert max(result.trace.corunning_series()) >= 2

    def test_hyperthread_context_is_empty(self, arm):
        from repro.hardware.affinity import CoreAllocator

        allocator = CoreAllocator(arm.topology)
        assert allocator.free_hyperthread_cores == 0
        allocator.allocate(arm.topology.num_cores)
        assert allocator.free_hyperthread_cores == 0


class TestSingleCoreTileMachines:
    """laptop-4c / desktop-8c: cores_per_tile == 1, SHARED ladder is per-core."""

    @pytest.mark.parametrize("name", ["laptop-4c", "desktop-8c"])
    def test_full_runtime_completes_and_coruns(self, name, graph):
        machine = get_machine(name)
        result = _run(machine, graph, RuntimeConfig.all_strategies())
        assert len(result.trace.records) == len(graph)
        assert max(result.trace.corunning_series()) >= 2

    @pytest.mark.parametrize("name", ["laptop-4c", "desktop-8c"])
    def test_incremental_matches_reference(self, name, graph):
        machine = get_machine(name)
        oracle = OraclePerformanceModel(machine)
        oracle.observe_graph(graph)
        config = RuntimeConfig.all_strategies()
        fast = StepSimulator(machine).run_step(
            graph, RuntimeSchedulerPolicy(oracle, config)
        )
        reference = StepSimulator(machine, incremental=False).run_step(
            graph, RuntimeSchedulerPolicy(oracle, config)
        )
        assert fast.step_time == pytest.approx(reference.step_time, rel=1e-9)

    def test_small_op_packs_hyperthreads_on_smt_machine(self, graph):
        # The laptop *does* have SMT: Strategy 4 may pack, and any packed
        # op must be one of the small ones (locks in PR 3's behaviour).
        machine = get_machine("laptop-4c")
        result = _run(machine, graph, RuntimeConfig.all_strategies())
        for record in result.trace.records:
            if record.used_hyperthreads:
                assert record.op_type == "Mul"


class TestInterferenceBlacklistOnZooMachines:
    """The generalized tracker still gates Strategy 3 on any topology."""

    @pytest.mark.parametrize("name", ["arm-server-64c", "laptop-4c"])
    def test_blacklist_prevents_medium_corun(self, name, graph):
        from repro.core.interference import InterferenceTracker

        machine = get_machine(name)
        oracle = OraclePerformanceModel(machine)
        oracle.observe_graph(graph)
        tracker = InterferenceTracker(threshold=0.1)
        for other in ("Conv2D", "Conv2DBackpropInput", "Mul"):
            tracker.record("Conv2DBackpropInput", other, 1.0)
        policy = RuntimeSchedulerPolicy(
            oracle, RuntimeConfig.strategies_1_2_3(), interference=tracker
        )
        result = StepSimulator(machine).run_step(graph, policy)
        records = {r.op_name: r for r in result.trace.records}
        mediums = [records[f"medium{i}"] for i in range(3)]
        for a in mediums:
            for b in mediums:
                if a.op_name == b.op_name:
                    continue
                overlap = min(a.finish_time, b.finish_time) - max(
                    a.start_time, b.start_time
                )
                assert overlap <= 1e-9
