"""Property-style equivalence tests: ContentionState vs corun_slowdowns.

The incremental :class:`ContentionState` must produce the same factors as
a from-scratch :func:`corun_slowdowns` call on the surviving views after
every add/remove — across randomized sequences covering DEDICATED
partitions, HYPERTHREAD overlap, OVERSUBSCRIBED full-chip pools and
bandwidth saturation.
"""

from __future__ import annotations

import pytest

from repro.execsim.contention import ContentionState, RunningOpView, corun_slowdowns
from repro.utils.seeding import make_rng

TOLERANCE = 1e-9


def _assert_equivalent(state: ContentionState, views: dict[str, RunningOpView], machine):
    expected = corun_slowdowns(list(views.values()), machine)
    actual = state.slowdowns()
    assert set(actual) == set(expected)
    for key, value in expected.items():
        assert actual[key] == pytest.approx(value, rel=TOLERANCE), key


def _random_view(rng, key: str, machine) -> RunningOpView:
    num_cores = machine.num_cores
    placement = rng.integers(0, 4)
    if placement == 0:  # full-chip span (oversubscribed pool or core-filler)
        core_ids = tuple(range(num_cores))
        pinned = bool(rng.integers(0, 2))
        threads = int(rng.integers(1, 5)) * num_cores if not pinned else num_cores
    elif placement == 1:  # disjoint-ish partition starting anywhere
        span = int(rng.integers(1, max(2, num_cores // 2)))
        start = int(rng.integers(0, num_cores - span + 1))
        core_ids = tuple(range(start, start + span))
        pinned = True
        threads = int(rng.integers(1, 2 * span + 1))
    elif placement == 2:  # scattered cores (hyperthread-style overlap)
        span = int(rng.integers(1, max(2, num_cores // 2)))
        picks = rng.choice(num_cores, size=span, replace=False)
        core_ids = tuple(int(c) for c in sorted(picks))
        pinned = True
        threads = span
    else:  # unpinned partial pool
        span = int(rng.integers(1, num_cores + 1))
        picks = rng.choice(num_cores, size=span, replace=False)
        core_ids = tuple(int(c) for c in sorted(picks))
        pinned = False
        threads = int(rng.integers(1, 2 * span + 1))
    # Mix sub-ceiling and over-ceiling bandwidth demands.
    demand = float(rng.uniform(0, 0.8 * machine.memory.fast_bandwidth))
    return RunningOpView(
        key=key,
        core_ids=core_ids,
        threads=threads,
        bandwidth_demand=demand,
        memory_bound_fraction=float(rng.uniform(0, 1)),
        memory_bound_char=float(rng.choice((0.1, 0.3, 0.5, 0.85))),
        pinned=pinned,
    )


class TestContentionStateEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_randomized_add_remove_sequences(self, small_machine, seed):
        rng = make_rng(seed)
        state = ContentionState(small_machine)
        alive: dict[str, RunningOpView] = {}
        counter = 0
        for _ in range(120):
            add = not alive or rng.random() < 0.55
            if add:
                view = _random_view(rng, f"op{counter}", small_machine)
                counter += 1
                changed = state.add(view)
                alive[view.key] = view
                assert view.key in changed
            else:
                key = str(rng.choice(sorted(alive)))
                state.remove(key)
                del alive[key]
            assert len(state) == len(alive)
            _assert_equivalent(state, alive, small_machine)

    @pytest.mark.parametrize("seed", range(4))
    def test_randomized_on_full_knl(self, knl, seed):
        rng = make_rng(100 + seed)
        state = ContentionState(knl)
        alive: dict[str, RunningOpView] = {}
        counter = 0
        for _ in range(60):
            if not alive or rng.random() < 0.6:
                view = _random_view(rng, f"op{counter}", knl)
                counter += 1
                state.add(view)
                alive[view.key] = view
            else:
                key = str(rng.choice(sorted(alive)))
                state.remove(key)
                del alive[key]
            _assert_equivalent(state, alive, knl)

    @pytest.mark.parametrize("seed", [54, 86, 7, 123])
    def test_round_tie_loads(self, knl, seed):
        """Dyadic per-core loads landing exactly on round() half-ties.

        Mixing full-chip spans with partial partitions makes the
        incremental decomposition sum loads in a different order than the
        reference fold; at a total of exactly n + 0.5 a last-ulp
        difference would flip the SMT resident count (a ~5% factor
        error).  Seeds 54/86 are known past offenders.
        """
        rng = make_rng(seed)
        state = ContentionState(knl)
        alive: dict[str, RunningOpView] = {}
        counter = 0
        for _ in range(60):
            if not alive or rng.random() < 0.55:
                span = int(rng.choice((2, 4, 8, 16, knl.num_cores)))
                start = (
                    int(rng.integers(0, knl.num_cores - span + 1))
                    if span < knl.num_cores
                    else 0
                )
                view = RunningOpView(
                    key=f"op{counter}",
                    core_ids=tuple(range(start, start + span)),
                    threads=int(rng.integers(1, 2 * span + 1)),
                    bandwidth_demand=float(
                        rng.choice((0.0, 0.5, 0.75)) * knl.memory.fast_bandwidth
                    ),
                    memory_bound_fraction=0.5,
                    memory_bound_char=float(rng.choice((0.1, 0.3, 0.85))),
                    pinned=bool(rng.integers(0, 2)),
                )
                counter += 1
                state.add(view)
                alive[view.key] = view
            else:
                key = str(rng.choice(sorted(alive)))
                state.remove(key)
                del alive[key]
            _assert_equivalent(state, alive, knl)

    def test_oversubscribed_pools(self, knl):
        state = ContentionState(knl)
        alive: dict[str, RunningOpView] = {}
        for i in range(4):
            view = RunningOpView(
                key=f"pool{i}",
                core_ids=tuple(range(knl.num_cores)),
                threads=knl.topology.num_logical_cpus,
                bandwidth_demand=0.5 * knl.memory.fast_bandwidth,
                memory_bound_fraction=0.6,
                memory_bound_char=0.5,
                pinned=False,
            )
            state.add(view)
            alive[view.key] = view
            _assert_equivalent(state, alive, knl)
        for key in list(alive):
            state.remove(key)
            del alive[key]
            _assert_equivalent(state, alive, knl)

    def test_hyperthread_overlap_placement(self, knl):
        """Strategy 4: a big pinned op plus a small op on the same cores."""
        state = ContentionState(knl)
        alive: dict[str, RunningOpView] = {}
        big = RunningOpView(
            key="big",
            core_ids=tuple(range(knl.num_cores)),
            threads=knl.num_cores,
            bandwidth_demand=1e9,
            memory_bound_fraction=0.4,
            memory_bound_char=0.3,
            pinned=True,
        )
        small = RunningOpView(
            key="small",
            core_ids=tuple(range(8)),  # secondary SMT slots of busy cores
            threads=8,
            bandwidth_demand=1e8,
            memory_bound_fraction=0.8,
            memory_bound_char=0.85,
            pinned=True,
        )
        for view in (big, small):
            state.add(view)
            alive[view.key] = view
            _assert_equivalent(state, alive, knl)
        state.remove("big")
        del alive["big"]
        _assert_equivalent(state, alive, knl)

    def test_bandwidth_saturation_crossing(self, knl):
        """Factors must track the ceiling being crossed in both directions."""
        state = ContentionState(knl)
        alive: dict[str, RunningOpView] = {}
        bw = knl.memory.fast_bandwidth
        for i, demand in enumerate((0.7 * bw, 0.7 * bw, 0.7 * bw)):
            view = RunningOpView(
                key=f"op{i}",
                core_ids=tuple(range(20 * i, 20 * i + 20)),
                threads=20,
                bandwidth_demand=demand,
                memory_bound_fraction=0.9,
                memory_bound_char=0.85,
                pinned=True,
            )
            state.add(view)
            alive[view.key] = view
            _assert_equivalent(state, alive, knl)
        assert state.slowdown("op0") > 1.0  # over the ceiling now
        state.remove("op1")
        del alive["op1"]
        _assert_equivalent(state, alive, knl)
        state.remove("op2")
        del alive["op2"]
        _assert_equivalent(state, alive, knl)
        assert state.slowdown("op0") == pytest.approx(1.0)

    def test_duplicate_add_rejected(self, small_machine):
        state = ContentionState(small_machine)
        view = RunningOpView(
            key="a",
            core_ids=(0, 1),
            threads=2,
            bandwidth_demand=0.0,
            memory_bound_fraction=0.0,
            memory_bound_char=0.3,
        )
        state.add(view)
        with pytest.raises(ValueError):
            state.add(view)

    def test_unknown_remove_rejected(self, small_machine):
        state = ContentionState(small_machine)
        with pytest.raises(KeyError):
            state.remove("ghost")

    def test_empty_state(self, small_machine):
        state = ContentionState(small_machine)
        assert len(state) == 0
        assert state.slowdowns() == {}
