"""Tests for the performance models: hill climbing, oracle, regression."""

from __future__ import annotations

import pytest

from repro.core.config import RuntimeConfig
from repro.core.feature_selection import select_counter_features
from repro.core.hill_climbing import HillClimbingModel, ground_truth_sweeps
from repro.core.oracle import OraclePerformanceModel
from repro.core.perf_model import ConfigurationPrediction, PredictionAccuracy
from repro.core.regression_model import RegressionPerformanceModel, select_sample_cases
from repro.execsim.standalone import StandaloneRunner
from repro.hardware.affinity import AffinityMode
from repro.hardware.counters import CounterEvent, CounterSimulator
from repro.mlkit import KNeighborsRegression, LinearRegression

from tests.conftest import make_conv_op, make_elementwise_op

import numpy as np


class TestConfigurationPrediction:
    def test_validation(self):
        with pytest.raises(ValueError):
            ConfigurationPrediction(0, AffinityMode.SHARED, 1.0)
        with pytest.raises(ValueError):
            ConfigurationPrediction(4, AffinityMode.SHARED, -1.0)

    def test_accuracy_from_pairs(self):
        acc = PredictionAccuracy.from_pairs([1.0, 2.0], [1.1, 2.0])
        assert 0.9 < acc.accuracy < 1.0
        assert acc.num_observations == 2
        with pytest.raises(ValueError):
            PredictionAccuracy.from_pairs([1.0], [1.0])


class TestHillClimbing:
    @pytest.fixture
    def runner(self, knl):
        return StandaloneRunner(knl)

    def test_profile_finds_near_optimal_configuration(self, knl, runner, conv_op):
        model = HillClimbingModel(knl, interval=2)
        model.profile_operation(conv_op, runner)
        found = model.best_configuration(conv_op.signature)
        true_threads, true_affinity, true_best = runner.best_configuration(conv_op)
        assert found.predicted_time <= true_best * 1.05

    def test_small_interval_more_accurate_than_large(self, knl, conv_op):
        ops = [conv_op, make_conv_op("Conv2DBackpropFilter"), make_elementwise_op("Mul")]
        truth_runner = StandaloneRunner(knl)
        truth = ground_truth_sweeps(ops, truth_runner)
        accuracies = {}
        for interval in (2, 16):
            runner = StandaloneRunner(knl, noise_sigma=0.01, seed=interval)
            model = HillClimbingModel(knl, interval=interval)
            for op in ops:
                model.profile_operation(op, runner)
            accuracies[interval] = model.accuracy_against(truth).accuracy
        assert accuracies[2] > accuracies[16]
        assert accuracies[2] > 0.85

    def test_interpolation_between_samples(self, knl, runner, conv_op):
        model = HillClimbingModel(knl, interval=8)
        model.profile_operation(conv_op, runner)
        profile = model.profile_for(conv_op.signature)
        counts = profile.sampled_counts(AffinityMode.SHARED)
        assert len(counts) >= 2
        mid = (counts[0] + counts[1]) // 2
        prediction = model.predict(conv_op.signature, mid, AffinityMode.SHARED)
        lo = profile.samples[(counts[0], AffinityMode.SHARED)]
        hi = profile.samples[(counts[1], AffinityMode.SHARED)]
        assert min(lo, hi) <= prediction <= max(lo, hi)

    def test_extrapolation_is_bounded(self, knl, runner):
        op = make_elementwise_op("Mul", (20, 200))
        model = HillClimbingModel(knl, interval=2)
        model.profile_operation(op, runner)
        profile = model.profile_for(op.signature)
        last = max(profile.sampled_counts(AffinityMode.SHARED))
        last_time = profile.samples[(last, AffinityMode.SHARED)]
        far = model.predict(op.signature, 68, AffinityMode.SHARED)
        assert 0.8 * last_time <= far <= 2.5 * last_time

    def test_unknown_signature_raises(self, knl, conv_op):
        model = HillClimbingModel(knl)
        with pytest.raises(KeyError):
            model.predict(conv_op.signature, 4, AffinityMode.SHARED)
        assert not model.knows(conv_op.signature)

    def test_profile_graph_deduplicates_signatures(self, knl, runner):
        from repro.graph.builder import GraphBuilder
        from repro.graph.shapes import TensorShape

        b = GraphBuilder("dup")
        s = TensorShape((8, 8, 8, 16))
        first = b.add("Relu", inputs=[s], output=s)
        b.add("Relu", inputs=[s], output=s, deps=[first])
        graph = b.build()
        model = HillClimbingModel(knl, interval=8)
        profiled = model.profile_graph(graph, runner)
        assert profiled == 1

    def test_top_configurations_sorted(self, knl, runner, conv_op):
        model = HillClimbingModel(knl, interval=4)
        model.profile_operation(conv_op, runner)
        top = model.top_configurations(conv_op.signature, 3)
        assert len(top) == 3
        times = [c.predicted_time for c in top]
        assert times == sorted(times)

    def test_measurement_budget_matches_paper_bound(self, knl, runner, conv_op):
        """N is at most C/x * 2 profiling cases (Section III-C)."""
        interval = 4
        model = HillClimbingModel(knl, interval=interval)
        model.profile_operation(conv_op, runner)
        bound = model.profiling_steps_used()
        assert bound <= (knl.topology.num_cores // interval + 2) * 2
        assert model.total_measurements() <= bound

    def test_invalid_interval(self, knl):
        with pytest.raises(ValueError):
            HillClimbingModel(knl, interval=0)


class TestOracle:
    def test_oracle_matches_exhaustive_sweep(self, knl, conv_op):
        oracle = OraclePerformanceModel(knl)
        oracle.observe(conv_op)
        runner = StandaloneRunner(knl)
        threads, affinity, best = runner.best_configuration(conv_op)
        prediction = oracle.best_configuration(conv_op.signature)
        assert prediction.threads == threads
        assert prediction.predicted_time == pytest.approx(best)

    def test_oracle_nearest_case_fallback(self, knl, conv_op):
        oracle = OraclePerformanceModel(knl)
        oracle.observe(conv_op)
        odd = oracle.predict(conv_op.signature, 35, AffinityMode.SHARED)
        neighbours = (
            oracle.predict(conv_op.signature, 34, AffinityMode.SHARED),
            oracle.predict(conv_op.signature, 36, AffinityMode.SHARED),
        )
        assert any(odd == pytest.approx(n) for n in neighbours)

    def test_top_configurations(self, knl, conv_op):
        oracle = OraclePerformanceModel(knl)
        oracle.observe(conv_op)
        top = oracle.top_configurations(conv_op.signature, 5)
        assert len(top) == 5
        assert top[0].predicted_time <= top[-1].predicted_time

    def test_bisect_fallback_matches_linear_nearest_scan(self, knl, conv_op):
        """The precomputed-counts bisect fallback must reproduce the
        original per-miss ``min(counts, key=|c - threads|)`` exactly,
        including the smaller-count tie break."""
        oracle = OraclePerformanceModel(knl)
        oracle.observe(conv_op)
        sweep = oracle.sweep(conv_op.signature)
        for affinity in (AffinityMode.SPREAD, AffinityMode.SHARED):
            counts = sorted(t for (t, a) in sweep if a is affinity)
            for threads in (1, 2, 3, 33, 35, 36, 67, 69, 100, 272):
                nearest = min(counts, key=lambda c: abs(c - threads))
                assert oracle.predict(conv_op.signature, threads, affinity) == (
                    sweep[(nearest, affinity)]
                ), (threads, affinity)

    def test_observe_graph_fans_out_once_per_signature(self, knl, conv_op):
        from repro.graph.dataflow import DataflowGraph
        from repro.sweep import SweepExecutor

        graph = DataflowGraph(name="pair")
        graph.add_op(conv_op)
        duplicate = make_conv_op("Conv2D", (32, 8, 8, 384), name="dup")
        graph.add_op(duplicate)
        oracle = OraclePerformanceModel(knl)
        executor = SweepExecutor("serial")
        oracle.observe_graph(graph, executor=executor)
        assert executor.stats.submitted == 1  # one shared signature
        assert oracle.knows(conv_op.signature)
        # A second pass adds nothing.
        oracle.observe_graph(graph, executor=executor)
        assert executor.stats.submitted == 1


class TestRegressionModel:
    def _train_test_ops(self):
        train = [
            make_conv_op("Conv2D", (32, 8, 8, c), name=f"t{c}") for c in (64, 128, 256, 384)
        ] + [
            make_conv_op("Conv2DBackpropFilter", (32, 8, 8, c), name=f"f{c}")
            for c in (64, 128, 256)
        ]
        test = [make_conv_op("Conv2D", (32, 8, 8, 192), name="test192")]
        return train, test

    def test_sample_case_selection(self, knl):
        cases = select_sample_cases(knl, 4)
        assert len(cases) == 4
        assert {a for _, a in cases} == {AffinityMode.SPREAD, AffinityMode.SHARED}
        with pytest.raises(ValueError):
            select_sample_cases(knl, 0)

    def test_train_and_predict(self, knl):
        train, test = self._train_test_ops()
        runner = StandaloneRunner(knl, noise_sigma=0.02, seed=0)
        model = RegressionPerformanceModel(
            knl, regressor_factory=lambda: KNeighborsRegression(n_neighbors=3), num_samples=4
        )
        rows = model.train(train, runner)
        assert rows == len(train)
        accuracy = model.evaluate(test, runner)
        assert 0.0 <= accuracy.accuracy <= 1.0
        prediction = model.best_configuration(test[0].signature)
        assert prediction.predicted_time > 0

    def test_regression_less_accurate_than_hill_climbing(self, knl):
        """The paper's central comparison: hill climbing wins."""
        train, test = self._train_test_ops()
        runner = StandaloneRunner(knl, noise_sigma=0.02, seed=1)
        regression = RegressionPerformanceModel(
            knl, regressor_factory=lambda: LinearRegression(), num_samples=4, seed=1
        )
        regression.train(train, runner)
        regression_accuracy = regression.evaluate(test, runner).accuracy

        hill = HillClimbingModel(knl, interval=4)
        for op in test:
            hill.profile_operation(op, StandaloneRunner(knl, noise_sigma=0.01, seed=2))
        truth = ground_truth_sweeps(test, StandaloneRunner(knl))
        hill_accuracy = hill.accuracy_against(truth).accuracy
        assert hill_accuracy > regression_accuracy

    def test_training_requires_two_signatures(self, knl, conv_op):
        runner = StandaloneRunner(knl)
        model = RegressionPerformanceModel(knl)
        with pytest.raises(ValueError):
            model.train([conv_op], runner)

    def test_predict_before_training_raises(self, knl, conv_op):
        model = RegressionPerformanceModel(knl)
        with pytest.raises(RuntimeError):
            model.predict(conv_op.signature, 4, AffinityMode.SHARED)


class TestFeatureSelection:
    def test_selects_informative_features(self, knl):
        rng = np.random.default_rng(0)
        events = tuple(CounterEvent)[:6]
        n = 200
        X = rng.uniform(0.1, 1.0, size=(n, len(events)))
        # Make the target depend strongly on the first two columns only.
        y = 5.0 * X[:, 0] + 2.0 * X[:, 1] + 0.01 * rng.standard_normal(n)
        result = select_counter_features(X, y, events, num_features=2)
        top2 = set(result.top(2))
        assert events[0] in top2
        assert len(result.importances) == len(events)

    def test_shape_validation(self):
        events = tuple(CounterEvent)[:3]
        with pytest.raises(ValueError):
            select_counter_features(np.ones((5, 2)), np.ones(5), events)
        with pytest.raises(ValueError):
            select_counter_features(np.ones((5, 3)), np.ones(4), events)
        with pytest.raises(ValueError):
            select_counter_features(np.ones((5, 3)), np.ones(5), events, num_features=0)
