"""Serial / thread / process equivalence of the experiment layer.

Every experiment's result object must be *equal* under every executor
backend (deterministic input-ordered assembly makes parallel output
bit-identical to serial), and a warm-cache rerun must produce identical
results without a single simulator invocation.
"""

from __future__ import annotations

import pytest

from repro.execsim.simulator import StepSimulator
from repro.execsim.standalone import StandaloneRunner
from repro.experiments import (
    fig1_threads,
    fig3_strategies,
    fig4_corun_events,
    fig5_gpu_intraop,
    table1_parallelism,
    table2_input_size,
    table3_corun,
    table4_regression,
    table5_hillclimb,
    table6_topops,
    table7_gpu_corun,
)
from repro.sweep import SweepCache, SweepExecutor

#: name -> (module, reduced kwargs) — the smallest configuration that
#: still exercises every task family of the experiment.
CONFIGS: dict = {
    "fig1": (fig1_threads, dict(thread_counts=tuple(range(2, 66, 8)))),
    "table1": (table1_parallelism, dict(models=("dcgan",), reduced=True)),
    "table2": (table2_input_size, dict(operations=("Conv2DBackpropFilter",))),
    "table3": (table3_corun, {}),
    "table4": (
        table4_regression,
        dict(sample_counts=(1,), reduced=True, max_train_ops=6, max_test_ops=2),
    ),
    "table5": (table5_hillclimb, dict(models=("dcgan",), intervals=(2, 16), reduced=True)),
    "fig3": (fig3_strategies, dict(models=("dcgan",), reduced=True)),
    "table6": (table6_topops, dict(models=("dcgan",), reduced=True)),
    "fig4": (fig4_corun_events, dict(models=("dcgan",), reduced=True, max_events=1000)),
    "fig5": (fig5_gpu_intraop, {}),
    "table7": (table7_gpu_corun, {}),
}


def _run_all(executor: SweepExecutor) -> dict:
    return {
        name: module.run(executor=executor, **kwargs)
        for name, (module, kwargs) in CONFIGS.items()
    }


@pytest.fixture(scope="module")
def serial_results() -> dict:
    return _run_all(SweepExecutor("serial", cache=SweepCache(enabled=False)))


class TestBackendEquivalence:
    def test_thread_backend_equals_serial(self, serial_results):
        executor = SweepExecutor("thread", jobs=4, cache=SweepCache(enabled=False))
        for name, result in _run_all(executor).items():
            assert result == serial_results[name], name

    def test_process_backend_equals_serial(self, serial_results):
        executor = SweepExecutor("process", jobs=2, cache=SweepCache(enabled=False))
        for name, result in _run_all(executor).items():
            assert result == serial_results[name], name
        assert executor.stats.executed > 0


class TestWarmCacheRerun:
    def test_identical_results_with_zero_simulator_invocations(
        self, serial_results, tmp_path, monkeypatch
    ):
        cold = SweepExecutor("serial", cache=SweepCache(tmp_path))
        cold_results = _run_all(cold)
        for name, result in cold_results.items():
            assert result == serial_results[name], name
        assert cold.stats.executed > 0

        # Warm rerun: every simulated-execution entry point is booby-trapped;
        # the cache must satisfy every task without touching the simulator.
        def boom(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("simulator invoked during a warm-cache rerun")

        monkeypatch.setattr(StepSimulator, "run_step", boom)
        for method in ("run", "measure", "sweep", "corun", "sweep_many"):
            monkeypatch.setattr(StandaloneRunner, method, boom)

        warm = SweepExecutor("serial", cache=SweepCache(tmp_path))
        warm_results = _run_all(warm)
        for name, result in warm_results.items():
            assert result == serial_results[name], name
        assert warm.stats.executed == 0
        assert warm.stats.cache_hits == cold.stats.executed

    def test_no_cache_flag_recomputes(self, tmp_path):
        module, kwargs = CONFIGS["table3"]
        cold = SweepExecutor("serial", cache=SweepCache(tmp_path))
        module.run(executor=cold, **kwargs)
        uncached = SweepExecutor("serial", cache=SweepCache(tmp_path, enabled=False))
        module.run(executor=uncached, **kwargs)
        assert uncached.stats.executed > 0
        assert uncached.stats.cache_hits == 0


#: Zoo machines the cross-machine acceptance tests run on (≥4, diverse).
ZOO_MACHINES = ("xeon-2s-56c", "desktop-8c", "arm-server-64c", "cloud-vm-16v")


class TestZooMachineEquivalence:
    """`--machine <zoo-name>` acceptance: per-machine results must be
    byte-identical across backends, and the shared cache must key on the
    machine so two machines never serve each other's entries."""

    @pytest.mark.parametrize("machine", ZOO_MACHINES)
    def test_backends_identical_per_machine(self, machine):
        kwargs = dict(machine=machine, thread_counts=(2, 4, 8), repeats=10)
        serial = fig1_threads.run(
            executor=SweepExecutor("serial", cache=SweepCache(enabled=False)), **kwargs
        )
        threaded = fig1_threads.run(
            executor=SweepExecutor("thread", jobs=3, cache=SweepCache(enabled=False)),
            **kwargs,
        )
        process = fig1_threads.run(
            executor=SweepExecutor("process", jobs=2, cache=SweepCache(enabled=False)),
            **kwargs,
        )
        assert serial == threaded == process
        corun = table3_corun.run(
            machine=machine,
            executor=SweepExecutor("process", jobs=2, cache=SweepCache(enabled=False)),
        )
        assert corun == table3_corun.run(
            machine=machine,
            executor=SweepExecutor("serial", cache=SweepCache(enabled=False)),
        )

    def test_results_differ_across_machines(self):
        times = {
            machine: table3_corun.run(
                machine=machine,
                executor=SweepExecutor("serial", cache=SweepCache(enabled=False)),
            ).serial_time
            for machine in ZOO_MACHINES
        }
        assert len(set(times.values())) == len(ZOO_MACHINES)

    def test_cache_keys_distinct_across_machines(self, tmp_path):
        """One shared cache dir, two machines: the second machine's run
        must miss on every task (distinct keys), then hit on a rerun."""
        kwargs = dict(thread_counts=(2, 4), repeats=10)
        first = SweepExecutor("serial", cache=SweepCache(tmp_path))
        fig1_threads.run(machine="desktop-8c", executor=first, **kwargs)
        assert first.stats.cache_hits == 0
        second = SweepExecutor("serial", cache=SweepCache(tmp_path))
        fig1_threads.run(machine="arm-server-64c", executor=second, **kwargs)
        assert second.stats.cache_hits == 0
        assert second.stats.executed > 0
        warm = SweepExecutor("serial", cache=SweepCache(tmp_path))
        fig1_threads.run(machine="arm-server-64c", executor=warm, **kwargs)
        assert warm.stats.executed == 0
        assert warm.stats.cache_hits == warm.stats.submitted
