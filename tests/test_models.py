"""Tests for the NN model training-step graph generators."""

from __future__ import annotations

import pytest

from repro.models import available_models, build_model, model_batch_size
from repro.models.registry import PAPER_BATCH_SIZES


@pytest.fixture(scope="module")
def reduced_graphs():
    """Reduced variants of all four models (cheap to build, same op mix)."""
    return {
        "resnet50": build_model("resnet50", stage_blocks=(1, 1, 1, 1)),
        "dcgan": build_model("dcgan"),
        "inception_v3": build_model("inception_v3", module_counts=(1, 1, 1)),
        "lstm": build_model("lstm", num_steps=4),
    }


class TestRegistry:
    def test_available_models(self):
        assert set(available_models()) == {"resnet50", "dcgan", "inception_v3", "lstm"}

    def test_paper_batch_sizes(self):
        assert model_batch_size("resnet50") == 64
        assert model_batch_size("inception_v3") == 16
        assert model_batch_size("lstm") == 20
        assert PAPER_BATCH_SIZES["dcgan"] == 64

    def test_aliases(self):
        graph = build_model("ResNet-50", stage_blocks=(1, 1, 1, 1))
        assert graph.name.startswith("resnet50")

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            build_model("alexnet")


class TestGraphStructure:
    def test_all_graphs_are_valid_dags(self, reduced_graphs):
        for graph in reduced_graphs.values():
            graph.validate()

    def test_graphs_have_forward_backward_and_optimizer_ops(self, reduced_graphs):
        for name, graph in reduced_graphs.items():
            types = graph.op_types()
            assert "SparseSoftmaxCross" in types, name
            assert any(t.startswith("Apply") for t in types), name
            if name != "lstm":
                assert "Conv2DBackpropFilter" in types, name
                assert "Conv2DBackpropInput" in types, name
                assert "InputConversion" in types, name
                assert "ToTf" in types, name

    def test_table6_op_types_present(self, reduced_graphs):
        """The op types the paper lists in Table VI exist in our graphs."""
        resnet = reduced_graphs["resnet50"].op_types()
        for op_type in ("Conv2DBackpropFilter", "InputConversion", "Tile", "Mul", "ToTf"):
            assert op_type in resnet
        dcgan = reduced_graphs["dcgan"].op_types()
        for op_type in ("Conv2DBackpropInput", "Conv2DBackpropFilter", "ApplyAdam",
                        "BiasAddGrad", "FusedBatchNorm"):
            assert op_type in dcgan
        lstm = reduced_graphs["lstm"].op_types()
        for op_type in ("SparseSoftmaxCross", "BiasAddGrad", "Mul", "AddN", "MatMul"):
            assert op_type in lstm

    def test_multiple_instances_with_different_input_sizes(self, reduced_graphs):
        """Different instances of one op type use different input sizes
        (the property Table II / Strategy 2 rely on)."""
        graph = reduced_graphs["resnet50"]
        signatures = {op.signature for op in graph.instances_of("Conv2DBackpropFilter")}
        assert len(signatures) > 3

    def test_batch_size_threaded_through(self):
        graph = build_model("dcgan", batch_size=8)
        conv = graph.instances_of("Conv2D")[0]
        assert conv.inputs[0].batch == 8

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(ValueError):
            build_model("resnet50", batch_size=0)

    def test_lstm_depth_scales_with_steps(self):
        short = build_model("lstm", num_steps=2)
        long = build_model("lstm", num_steps=8)
        assert len(long) > len(short) * 2


class TestFullSizeGraphs:
    def test_full_graphs_have_hundreds_of_ops(self):
        sizes = {name: len(build_model(name)) for name in ("resnet50", "dcgan")}
        assert sizes["resnet50"] > 500
        assert sizes["dcgan"] > 100

    def test_inception_is_the_largest_model(self):
        inception = len(build_model("inception_v3"))
        resnet = len(build_model("resnet50"))
        assert inception > resnet

    def test_inception_has_many_conv_backprop_filter_instances(self):
        graph = build_model("inception_v3")
        instances = graph.instances_of("Conv2DBackpropFilter")
        # The paper reports 42 instances with distinct input sizes.
        assert len(instances) >= 40
