"""Exact serialization round-trips for fleet results, jobs and arrivals.

The run store replays reports from stored payloads, so ``to_dict`` /
``from_dict`` must be exact inverses — including through a JSON
encode/decode (tuples come back as lists).
"""

from __future__ import annotations

import json

import pytest

from repro import scenarios
from repro.fleet import (
    BurstyArrivals,
    DiurnalArrivals,
    FaultPlan,
    FleetResult,
    FleetSimulator,
    Job,
    MachineCrash,
    MachineReport,
    PoissonArrivals,
    ReplayArrivals,
    arrival_from_dict,
    generate_trace,
)
from repro.fleet.estimates import EstimatorStats
from repro.scenarios import Workload, register_arrival_spec

SYN_A = Workload(synthetic_ops=24, synthetic_width=4, label="ser-a")
SYN_B = Workload(synthetic_ops=24, synthetic_width=4, heavy_fraction=0.6, label="ser-b")


def job(name, workload=SYN_A, steps=2, arrival=0.0, seed=0):
    return Job(
        name=name,
        workload=workload,
        num_steps=steps,
        arrival_time=arrival,
        graph_seed=seed,
    )


class FakeEstimator:
    """Dict-free deterministic estimator: solo = 1s, co-run = 1.5x slowest."""

    def __init__(self):
        self.stats = EstimatorStats()

    def step_time(self, machine_name, jobs):
        jobs = list(jobs)
        self.stats.requests += 1
        base = 1.0 if machine_name.startswith("desktop") else 2.0
        slow = max(base * (1.5 if j.kind == "ser-b" else 1.0) for j in jobs)
        return slow * (1.5 if len(jobs) > 1 else 1.0)

    def solo_time(self, machine_name, job):
        return self.step_time(machine_name, (job,))

    def prewarm(self, machine_names, jobs, max_corun=1):
        return 0


def small_run(**kwargs):
    sim = FleetSimulator(
        ["desktop-8c", "laptop-4c"], policy="first-fit", estimator=FakeEstimator()
    )
    jobs = [
        job("a", arrival=0.0),
        job("b", SYN_B, steps=3, arrival=0.5),
        job("c", arrival=1.0, steps=4),
        job("d", SYN_B, arrival=6.0),
    ]
    return sim.run(jobs, prewarm=False, **kwargs)


class TestFleetResultRoundTrip:
    def assert_round_trips(self, result):
        payload = result.to_dict()
        rebuilt = FleetResult.from_dict(payload)
        assert rebuilt.to_dict() == payload
        # And through an actual JSON encode/decode (tuples -> lists).
        rebuilt_json = FleetResult.from_dict(json.loads(json.dumps(payload)))
        assert rebuilt_json.to_dict() == payload

    def test_plain_run(self):
        self.assert_round_trips(small_run())

    def test_faulted_run(self):
        plan = FaultPlan(events=(MachineCrash(time=1.5, machine="m0"),))
        result = small_run(faults=plan)
        assert result.retries or result.failures or result.lost_steps
        self.assert_round_trips(result)

    def test_admission_run(self):
        result = small_run(admission={"queue_limit": 1})
        self.assert_round_trips(result)

    def test_overheadless_round_trip(self):
        result = small_run()
        payload = result.to_dict(include_overhead=False)
        rebuilt = FleetResult.from_dict(payload)
        assert rebuilt.to_dict(include_overhead=False) == payload
        # Missing overhead keys default to zero, not garbage.
        assert rebuilt.scheduler_overhead_seconds == 0.0
        assert rebuilt.events_processed == 0

    def test_derived_metrics_recomputed(self):
        result = small_run()
        payload = result.to_dict()
        payload["mean_wait_time"] = 1e9  # a tampered derived figure
        rebuilt = FleetResult.from_dict(payload)
        assert rebuilt.mean_wait_time == result.mean_wait_time

    def test_machine_report_round_trip(self):
        result = small_run()
        entries = result.to_dict()["machine_reports"]
        assert len(entries) == len(result.machine_reports)
        for entry, report in zip(entries, result.machine_reports):
            assert MachineReport.from_dict(entry) == report
            assert MachineReport.from_dict(json.loads(json.dumps(entry))) == report


class TestJobRoundTrip:
    def test_round_trip(self):
        original = job("x", SYN_B, steps=5, arrival=2.5, seed=9)
        assert Job.from_dict(original.to_dict()) == original
        assert Job.from_dict(json.loads(json.dumps(original.to_dict()))) == original

    def test_defaults(self):
        rebuilt = Job.from_dict(
            {"name": "y", "workload": {"model": "resnet50"}, "num_steps": 2}
        )
        assert rebuilt.arrival_time == 0.0
        assert rebuilt.graph_seed == 0


ARRIVAL_CASES = [
    PoissonArrivals(num_jobs=6, seed=3, mean_interarrival=1.5),
    DiurnalArrivals(num_jobs=6, seed=3, period=40.0, amplitude=0.5),
    BurstyArrivals(num_jobs=6, seed=3, burst_size=2, tail_alpha=1.2),
    ReplayArrivals(trace=generate_trace(4, seed=1)),
]


class TestArrivalRoundTrip:
    @pytest.mark.parametrize("process", ARRIVAL_CASES, ids=lambda p: p.kind)
    def test_symmetric_inverse(self, process):
        rebuilt = arrival_from_dict(process.to_dict())
        assert rebuilt == process
        assert rebuilt.materialize() == process.materialize()

    @pytest.mark.parametrize("process", ARRIVAL_CASES, ids=lambda p: p.kind)
    def test_through_json(self, process):
        rebuilt = arrival_from_dict(json.loads(json.dumps(process.to_dict())))
        assert rebuilt.materialize() == process.materialize()

    def test_custom_workload_catalog_survives(self):
        process = PoissonArrivals(num_jobs=5, seed=2, workloads=(SYN_A, SYN_B))
        spec = process.to_dict()
        assert "workloads" in spec  # non-default catalogs must be explicit
        rebuilt = arrival_from_dict(spec)
        assert rebuilt == process
        assert rebuilt.materialize() == process.materialize()

    def test_default_catalog_stays_shape_only(self):
        assert "workloads" not in PoissonArrivals(num_jobs=5).to_dict()

    def test_rejects_non_dict_and_bad_workloads(self):
        with pytest.raises(ValueError):
            arrival_from_dict("poisson")
        with pytest.raises(ValueError, match="workload catalog"):
            arrival_from_dict(
                {"kind": "poisson", "num_jobs": 2, "workloads": [{"bogus": 1}]}
            )

    def test_replay_requires_trace(self):
        with pytest.raises(ValueError):
            arrival_from_dict({"kind": "replay"})


class TestRegistryDeepValidation:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="invalid arrival spec"):
            register_arrival_spec("ser-bad-kind", {"kind": "lunar"})

    def test_rejects_malformed_shape_parameters(self):
        with pytest.raises(ValueError, match="invalid arrival spec"):
            register_arrival_spec(
                "ser-bad-shape", {"kind": "poisson", "mean_interarrival": -1.0}
            )
        assert "ser-bad-shape" not in scenarios.ARRIVAL_SPECS

    def test_valid_spec_registers(self):
        name = "ser-valid"
        try:
            register_arrival_spec(name, {"kind": "bursty", "burst_size": 3})
            assert scenarios.ARRIVAL_SPECS[name] == {"kind": "bursty", "burst_size": 3}
        finally:
            scenarios.ARRIVAL_SPECS.pop(name, None)
            scenarios._ARRIVAL_SPEC_DESCRIPTIONS.pop(name, None)
