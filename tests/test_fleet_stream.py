"""Open-loop streaming fleet: arrivals, admission control, SLO metrics.

The tentpole contract: arrival processes are seeded lazy generators the
simulator pulls event-by-event — a streamed run is byte-identical to
the same trace pre-materialised, on both simulator paths, under every
shed policy, with or without a fault plan.  The satellites pin the
admission semantics (reject-at-arrival / drop-oldest / deadline-expire),
the exact-percentile and windowed-series metrics, the ``generate_trace``
delegation (zero-padded names, shared graph seeds, ``num_jobs=0``) and
the spec-resolution surface (registered names, JSON, dicts, replays).
"""

from __future__ import annotations

import json

import pytest

from repro.fleet import (
    AdmissionController,
    ArrivalProcess,
    BurstyArrivals,
    DiurnalArrivals,
    FleetSimulator,
    Job,
    PoissonArrivals,
    ReplayArrivals,
    exact_percentiles,
    generate_fault_plan,
    generate_trace,
    resolve_arrivals,
)
from repro.fleet.arrivals import NO_ADMISSION, name_width, resolve_admission
from repro.fleet.simulator import _QueueDepthLog, _windowed_completions
from repro.scenarios import (
    Workload,
    available_arrival_specs,
    get_arrival_spec,
    register_arrival_spec,
)
from test_fleet_faults import SYN_A, SYN_B, SYN_C, deterministic_dict, fake_estimator

POLICIES = ("first-fit", "load-balanced", "interference-aware")
WORKLOADS = (SYN_A, SYN_B, SYN_C)
MACHINES = ["desktop-8c", "laptop-4c", "cloud-vm-16v"]

PROCESSES = {
    "poisson": lambda n, seed: PoissonArrivals(
        num_jobs=n, seed=seed, mean_interarrival=0.5, workloads=WORKLOADS,
        min_steps=2, max_steps=8,
    ),
    "diurnal": lambda n, seed: DiurnalArrivals(
        num_jobs=n, seed=seed, mean_interarrival=0.5, workloads=WORKLOADS,
        min_steps=2, max_steps=8, period=20.0, amplitude=0.9,
    ),
    "bursty": lambda n, seed: BurstyArrivals(
        num_jobs=n, seed=seed, mean_interarrival=0.5, workloads=WORKLOADS,
        min_steps=2, max_steps=8, burst_size=5, tail_alpha=1.4,
    ),
}

ADMISSIONS = (
    AdmissionController(queue_limit=3),
    AdmissionController(queue_limit=2, shed_policy="drop-oldest"),
    AdmissionController(deadline=3.0, shed_policy="deadline-expire"),
)


def simulate(source, *, policy="first-fit", compressed=True, admission=None, faults=None):
    sim = FleetSimulator(
        MACHINES,
        policy=policy,
        estimator=fake_estimator(MACHINES),
        compressed=compressed,
        admission=admission,
    )
    return sim.run(source, prewarm=False, faults=faults)


class TestStreamedEqualsMaterialised:
    """The acceptance gate: lazy pull == upfront trace, byte for byte."""

    @pytest.mark.parametrize("kind", sorted(PROCESSES))
    @pytest.mark.parametrize("policy", POLICIES)
    def test_every_process_every_policy(self, kind, policy):
        for seed, admission in zip((0, 1, 2), ADMISSIONS):
            make = PROCESSES[kind]
            trace = make(30, seed).materialize()
            digests = {
                deterministic_dict(
                    simulate(
                        make(30, seed) if streamed else trace,
                        policy=policy,
                        compressed=compressed,
                        admission=admission,
                    )
                )
                for streamed in (False, True)
                for compressed in (False, True)
            }
            assert len(digests) == 1, (
                f"{kind}/{policy}/seed {seed}: streamed and materialised "
                "runs diverged across simulator paths"
            )

    @pytest.mark.parametrize("kind", sorted(PROCESSES))
    def test_streamed_equivalence_under_faults(self, kind):
        make = PROCESSES[kind]
        trace = make(25, 5).materialize()
        plan = generate_fault_plan(
            [f"m{i}" for i in range(len(MACHINES))],
            horizon=max(trace[-1].arrival_time * 1.5, 5.0),
            seed=99,
            crash_rate=0.4,
            straggler_rate=0.4,
        )
        admission = AdmissionController(queue_limit=3)
        digests = {
            deterministic_dict(
                simulate(
                    make(25, 5) if streamed else trace,
                    compressed=compressed,
                    admission=admission,
                    faults=plan,
                )
            )
            for streamed in (False, True)
            for compressed in (False, True)
        }
        assert len(digests) == 1

    def test_process_is_a_factory(self):
        # Two .jobs() pulls from one process yield identical streams.
        process = PROCESSES["bursty"](12, 3)
        assert process.materialize() == process.materialize()
        first = simulate(process)
        second = simulate(process)
        assert deterministic_dict(first) == deterministic_dict(second)


class TestAdmissionSemantics:
    def overload(self, n=30, seed=0):
        return PROCESSES["poisson"](n, seed)

    def test_reject_at_arrival_bounds_the_queue(self):
        result = simulate(
            self.overload(), admission=AdmissionController(queue_limit=2)
        )
        assert result.rejections, "sustained overload should shed"
        assert result.peak_queue_depth <= 2
        assert all(r.reason == "reject-at-arrival" for r in result.rejections)
        # A rejected job never appears anywhere downstream.
        rejected = {r.job for r in result.rejections}
        placed = {p.job for p in result.placements}
        assert not rejected & placed
        # Rejected at the door: zero wait by construction.
        assert all(r.wait_time == 0.0 for r in result.rejections)

    def test_drop_oldest_sheds_the_head_and_admits_the_newcomer(self):
        result = simulate(
            self.overload(),
            admission=AdmissionController(queue_limit=2, shed_policy="drop-oldest"),
        )
        assert result.rejections
        assert all(r.reason == "drop-oldest" for r in result.rejections)
        # The shed victim waited in the queue before being dropped.
        assert any(r.wait_time > 0.0 for r in result.rejections)
        assert result.peak_queue_depth <= 2

    def test_deadline_expire_sheds_only_still_queued_jobs(self):
        deadline = 2.0
        result = simulate(
            self.overload(),
            admission=AdmissionController(
                deadline=deadline, shed_policy="deadline-expire"
            ),
        )
        assert result.rejections
        for rejection in result.rejections:
            assert rejection.reason == "deadline-expire"
            assert rejection.rejected_time == pytest.approx(
                rejection.arrival_time + deadline
            )
        # Expired and completed sets are disjoint.
        expired = {r.job for r in result.rejections}
        done = {c.job for c in result.completions}
        assert not expired & done

    @pytest.mark.parametrize("admission", ADMISSIONS, ids=lambda a: a.shed_policy)
    def test_accounting_invariant(self, admission):
        result = simulate(self.overload(40, 7), admission=admission)
        assert (
            len(result.completions) + len(result.failures) + len(result.rejections)
            == result.num_jobs
            == 40
        )
        assert result.shed_rate == len(result.rejections) / 40

    def test_no_admission_is_inert(self):
        free = simulate(self.overload())
        explicit = simulate(self.overload(), admission=NO_ADMISSION)
        assert deterministic_dict(free) == deterministic_dict(explicit)
        assert free.rejections == ()
        assert free.shed_rate == 0.0

    def test_policies_see_the_queue_limit(self):
        seen = []

        class Probe:
            name = "probe"

            def place(self, job, fleet):
                seen.append((fleet.queue_limit, fleet.queue_depth))
                for machine in fleet.machines:
                    if machine.accepting and machine.free_slots > 0:
                        return machine.machine_id
                return None

        sim = FleetSimulator(
            MACHINES,
            policy=Probe(),
            estimator=fake_estimator(MACHINES),
            admission=AdmissionController(queue_limit=4),
        )
        sim.run(self.overload(15), prewarm=False)
        assert seen
        assert all(limit == 4 for limit, _ in seen)
        assert all(depth <= 4 for _, depth in seen)

    def test_controller_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(queue_limit=0)
        with pytest.raises(ValueError):
            AdmissionController(deadline=0.0, shed_policy="deadline-expire")
        with pytest.raises(ValueError):
            AdmissionController(shed_policy="drop-oldest")  # needs queue_limit
        with pytest.raises(ValueError):
            AdmissionController(shed_policy="deadline-expire")  # needs deadline
        with pytest.raises(ValueError):
            AdmissionController(queue_limit=2, shed_policy="lottery")
        round_trip = AdmissionController.from_dict(
            AdmissionController(
                queue_limit=5, deadline=2.5, shed_policy="deadline-expire"
            ).to_dict()
        )
        assert round_trip.queue_limit == 5 and round_trip.deadline == 2.5
        assert resolve_admission({"queue_limit": 9}).queue_limit == 9


class TestSloMetrics:
    def test_exact_percentiles_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
        out = exact_percentiles(values)
        assert out == {"p50": 5.0, "p95": 10.0, "p99": 10.0}
        assert exact_percentiles([3.0], percentiles=(1, 50, 100)) == {
            "p1": 3.0, "p50": 3.0, "p100": 3.0,
        }
        assert exact_percentiles([]) == {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        # Nearest rank is an observed value, never an interpolation.
        sample = [0.5, 1.5, 9.0]
        assert all(v in sample for v in exact_percentiles(sample).values())

    def test_result_percentiles_match_completions(self):
        result = simulate(PROCESSES["poisson"](25, 1))
        waits = sorted(c.wait_time for c in result.completions)
        assert result.wait_percentiles["p50"] in waits
        assert result.wait_percentiles["p99"] == waits[-1] or (
            result.wait_percentiles["p99"] in waits
        )
        turnarounds = [c.finish_time - c.arrival_time for c in result.completions]
        assert result.turnaround_percentiles["p99"] == pytest.approx(
            exact_percentiles(turnarounds)["p99"]
        )

    def test_queue_depth_log_windows(self):
        log = _QueueDepthLog(10.0)
        log.record(1.0, 2)
        log.record(4.0, 5)   # window 0 max -> 5
        log.record(12.0, 1)  # window 1 opens carrying depth 5, then 1
        log.record(33.0, 7)  # windows 2 carries 1; window 3 max 7
        series = log.finish()
        assert series == (5, 5, 1, 7)

    def test_windowed_series_on_the_result(self):
        window = 5.0
        sim = FleetSimulator(
            MACHINES,
            policy="first-fit",
            estimator=fake_estimator(MACHINES),
            series_window=window,
            admission=AdmissionController(queue_limit=3),
        )
        result = sim.run(PROCESSES["poisson"](30, 2), prewarm=False)
        assert result.series_window == window
        assert result.peak_queue_depth == max(result.queue_depth_series)
        expected_len = int(max(c.finish_time for c in result.completions) // window) + 1
        assert len(result.throughput_series) == expected_len
        assert sum(result.throughput_series) == len(result.completions)
        assert len(result.goodput_series) == expected_len
        # Goodput counts completed training steps, so it dominates the
        # per-window job count (every job trains at least one step).
        assert all(
            g >= t for g, t in zip(result.goodput_series, result.throughput_series)
        )
        assert sum(result.goodput_series) == sum(
            c.num_steps for c in result.completions
        )

    def test_windowed_completions_empty(self):
        assert _windowed_completions([], 25.0) == ((), ())

    def test_series_window_validated(self):
        with pytest.raises(ValueError):
            FleetSimulator(MACHINES, series_window=0.0)

    def test_metrics_are_in_the_determinism_digest(self):
        result = simulate(
            PROCESSES["poisson"](20, 3), admission=AdmissionController(queue_limit=2)
        )
        payload = result.to_dict(include_overhead=False)
        for key in (
            "rejections",
            "shed_rate",
            "wait_percentiles",
            "turnaround_percentiles",
            "queue_depth_series",
            "throughput_series",
            "goodput_series",
            "peak_queue_depth",
            "series_window",
        ):
            assert key in payload, f"digest is missing {key}"
        assert payload["rejections"], "overload digest should carry rejections"


class TestGenerateTraceDelegation:
    def test_poisson_process_matches_generate_trace(self):
        for seed in (0, 5, 42):
            process = PoissonArrivals(
                num_jobs=40, seed=seed, mean_interarrival=1.5,
                workloads=WORKLOADS, min_steps=2, max_steps=9,
            )
            trace = generate_trace(
                40, seed=seed, mean_interarrival=1.5,
                workloads=WORKLOADS, min_steps=2, max_steps=9,
            )
            assert process.materialize() == trace

    def test_zero_jobs_is_an_empty_trace(self):
        assert generate_trace(0) == ()
        outcome = simulate(())
        assert outcome.num_jobs == 0 and outcome.makespan == 0.0

    def test_names_zero_pad_to_the_trace_length(self):
        assert name_width(1) == 3
        assert name_width(1000) == 3
        assert name_width(1001) == 4
        assert name_width(1_000_000) == 6
        small = generate_trace(5, seed=1, workloads=WORKLOADS)
        assert all(job.name.startswith("job-00") for job in small)
        big = PoissonArrivals(num_jobs=1200, seed=1, workloads=WORKLOADS)
        names = [job.name for job in big.jobs()]
        assert names[0].startswith("job-0000-")
        assert names[-1].startswith("job-1199-")
        assert names == sorted(names)

    def test_identical_kinds_share_graph_seeds(self):
        trace = generate_trace(30, seed=4, workloads=WORKLOADS)
        seeds_by_kind: dict[str, set[int]] = {}
        for job in trace:
            seeds_by_kind.setdefault(job.kind, set()).add(job.graph_seed)
        for kind, seeds in seeds_by_kind.items():
            assert len(seeds) == 1, f"kind {kind} got {len(seeds)} graph seeds"

    def test_generation_validation(self):
        with pytest.raises(ValueError):
            generate_trace(-1)
        with pytest.raises(ValueError):
            generate_trace(5, workloads=())
        with pytest.raises(ValueError):
            generate_trace(5, min_steps=0)
        with pytest.raises(ValueError):
            generate_trace(5, min_steps=9, max_steps=3)
        with pytest.raises(ValueError):
            generate_trace(5, mean_interarrival=0.0)


class TestSpecResolution:
    def test_registered_names(self):
        assert "overload" in available_arrival_specs()
        spec = get_arrival_spec("overload")
        assert spec["kind"] == "poisson"
        process = resolve_arrivals("overload", num_jobs=10, seed=3)
        assert isinstance(process, PoissonArrivals)
        assert process.num_jobs == 10 and process.seed == 3
        with pytest.raises(KeyError):
            get_arrival_spec("no-such-arrival-spec")

    def test_json_and_dict_specs(self):
        process = resolve_arrivals(
            json.dumps({"kind": "diurnal", "num_jobs": 8, "period": 30.0})
        )
        assert isinstance(process, DiurnalArrivals) and process.period == 30.0
        process = resolve_arrivals({"kind": "bursty", "num_jobs": 4, "burst_size": 2})
        assert isinstance(process, BurstyArrivals) and process.burst_size == 2

    def test_defaults_fill_only_missing_keys(self):
        process = resolve_arrivals(
            {"kind": "poisson", "num_jobs": 6, "seed": 11},
            num_jobs=99,
            seed=0,
            mean_interarrival=7.0,
        )
        assert process.num_jobs == 6 and process.seed == 11
        assert process.mean_interarrival == 7.0

    def test_sequences_become_replays(self):
        trace = generate_trace(6, seed=2, workloads=WORKLOADS)
        process = resolve_arrivals(trace)
        assert isinstance(process, ReplayArrivals)
        assert process.materialize() == trace
        assert isinstance(process, ArrivalProcess)
        streamed = simulate(process)
        materialised = simulate(trace)
        assert deterministic_dict(streamed) == deterministic_dict(materialised)

    def test_replay_rejects_malformed_traces(self):
        job = Job(name="a", workload=Workload(synthetic_ops=8), num_steps=1)
        dup = Job(name="a", workload=Workload(synthetic_ops=8), num_steps=1)
        with pytest.raises(ValueError):
            ReplayArrivals(trace=(job, dup))

    def test_register_arrival_spec_round_trip(self):
        register_arrival_spec(
            "test-stream-spec",
            {"kind": "poisson", "mean_interarrival": 0.1},
            description="test-only",
            overwrite=True,
        )
        process = resolve_arrivals("test-stream-spec", num_jobs=3)
        assert process.mean_interarrival == 0.1
        with pytest.raises(ValueError):
            register_arrival_spec("test-stream-spec", {"kind": "poisson"})
        with pytest.raises(ValueError):
            register_arrival_spec("bad-spec", {"mean_interarrival": 1.0})
