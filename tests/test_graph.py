"""Tests for the dataflow graph layer: shapes, ops, graph, builder, traversal."""

from __future__ import annotations

import pytest

from repro.graph.builder import GraphBuilder
from repro.graph.dataflow import DataflowGraph
from repro.graph.op import OpInstance, OpSignature
from repro.graph.shapes import TensorShape, shape
from repro.graph.traversal import (
    critical_path_length,
    max_width,
    ready_frontier,
    serial_time,
    topological_order,
)


class TestTensorShape:
    def test_elements_and_bytes(self):
        s = TensorShape((32, 8, 8, 384))
        assert s.num_elements == 32 * 8 * 8 * 384
        assert s.num_bytes == s.num_elements * 4

    def test_accessors(self):
        s = shape(32, 17, 17, 384)
        assert s.batch == 32
        assert s.channels == 384
        assert s.spatial == (17, 17)
        assert s.rank == 4
        assert len(s) == 4
        assert s[1] == 17
        assert list(s) == [32, 17, 17, 384]

    def test_with_batch(self):
        s = shape(32, 8, 8, 64).with_batch(16)
        assert s.dims == (16, 8, 8, 64)

    def test_str(self):
        assert str(shape(32, 8, 8, 384)) == "(32,8,8,384)"

    def test_invalid_dims_rejected(self):
        with pytest.raises(ValueError):
            TensorShape((0, 3))
        with pytest.raises(ValueError):
            TensorShape((2, 3), dtype_bytes=0)

    def test_hashable_and_equal(self):
        assert shape(2, 3) == shape(2, 3)
        assert hash(shape(2, 3)) == hash(shape(2, 3))


class TestOpInstance:
    def test_signature_groups_by_type_and_shapes(self):
        a = OpInstance("a", "Conv2D", (shape(32, 8, 8, 64),), shape(32, 8, 8, 64))
        b = OpInstance("b", "Conv2D", (shape(32, 8, 8, 64),), shape(32, 8, 8, 64))
        c = OpInstance("c", "Conv2D", (shape(32, 4, 4, 64),), shape(32, 4, 4, 64))
        assert a.signature == b.signature
        assert a.signature != c.signature
        assert isinstance(a.signature, OpSignature)

    def test_byte_accounting(self):
        op = OpInstance("x", "Mul", (shape(10, 10), shape(10, 10)), shape(10, 10))
        assert op.total_input_bytes == 2 * 100 * 4
        assert op.total_bytes == 3 * 100 * 4
        assert op.total_input_elements == 200

    def test_validation(self):
        with pytest.raises(ValueError):
            OpInstance("", "Mul", (shape(2),), shape(2))
        with pytest.raises(ValueError):
            OpInstance("x", "", (shape(2),), shape(2))
        with pytest.raises(ValueError):
            OpInstance("x", "Mul", (shape(2),), shape(2), implementation="cuda")

    def test_tunable_flag(self):
        mkl = OpInstance("x", "Mul", (shape(2),), shape(2), implementation="mkl")
        eigen = OpInstance("y", "Mul", (shape(2),), shape(2), implementation="eigen")
        assert mkl.is_tunable and not eigen.is_tunable

    def test_primary_input(self):
        op = OpInstance("x", "Mul", (shape(4, 4),), shape(4, 4))
        assert op.primary_input() == shape(4, 4)
        empty = OpInstance("y", "Const", (), shape(1))
        with pytest.raises(ValueError):
            empty.primary_input()


def _diamond_graph() -> DataflowGraph:
    """a -> {b, c} -> d"""
    g = DataflowGraph("diamond")
    s = shape(4, 4)
    a = OpInstance("a", "Conv2D", (s,), s)
    b = OpInstance("b", "Relu", (s,), s)
    c = OpInstance("c", "Mul", (s, s), s)
    d = OpInstance("d", "Add", (s, s), s)
    g.add_op(a)
    g.add_op(b, deps=[a])
    g.add_op(c, deps=[a])
    g.add_op(d, deps=[b, c])
    return g


class TestDataflowGraph:
    def test_basic_structure(self):
        g = _diamond_graph()
        assert len(g) == 4
        assert g.num_edges == 4
        assert g.sources() == ("a",)
        assert g.sinks() == ("d",)
        assert set(g.successors("a")) == {"b", "c"}
        assert set(g.predecessors("d")) == {"b", "c"}

    def test_duplicate_names_rejected(self):
        g = _diamond_graph()
        with pytest.raises(ValueError):
            g.add_op(OpInstance("a", "Relu", (shape(2),), shape(2)))

    def test_unknown_dependency_rejected(self):
        g = DataflowGraph()
        with pytest.raises(KeyError):
            g.add_op(OpInstance("x", "Relu", (shape(2),), shape(2)), deps=["missing"])

    def test_cycle_rejected(self):
        g = _diamond_graph()
        with pytest.raises(ValueError):
            g.add_dependency("d", "a")
        # graph unchanged after the rejected edge
        g.validate()

    def test_self_dependency_rejected(self):
        g = _diamond_graph()
        with pytest.raises(ValueError):
            g.add_dependency("a", "a")

    def test_empty_graph_invalid(self):
        with pytest.raises(ValueError):
            DataflowGraph().validate()

    def test_op_types_histogram(self):
        g = _diamond_graph()
        assert g.op_types() == {"Conv2D": 1, "Relu": 1, "Mul": 1, "Add": 1}
        assert len(g.instances_of("Relu")) == 1

    def test_subgraph(self):
        g = _diamond_graph()
        sub = g.subgraph(["a", "b"])
        assert len(sub) == 2
        assert sub.num_edges == 1
        with pytest.raises(KeyError):
            g.subgraph(["a", "zzz"])


class TestTraversal:
    def test_topological_order_respects_dependencies(self):
        g = _diamond_graph()
        order = topological_order(g)
        assert order.index("a") < order.index("b") < order.index("d")
        assert order.index("a") < order.index("c") < order.index("d")

    def test_ready_frontier(self):
        g = _diamond_graph()
        assert ready_frontier(g, []) == ("a",)
        assert ready_frontier(g, ["a"]) == ("b", "c")
        assert ready_frontier(g, ["a", "b"]) == ("c",)
        assert ready_frontier(g, ["a", "b", "c"]) == ("d",)
        with pytest.raises(KeyError):
            ready_frontier(g, ["nope"])

    def test_critical_path_and_serial_time(self):
        g = _diamond_graph()
        cost = {"a": 1.0, "b": 2.0, "c": 5.0, "d": 1.0}
        assert critical_path_length(g, cost) == pytest.approx(7.0)
        assert serial_time(g, cost) == pytest.approx(9.0)
        with pytest.raises(ValueError):
            critical_path_length(g, {"a": -1.0, "b": 0, "c": 0, "d": 0})

    def test_max_width(self):
        g = _diamond_graph()
        assert max_width(g) == 2


class TestGraphBuilder:
    def test_chain_and_join(self):
        b = GraphBuilder("demo")
        s = shape(8, 8)
        chain = b.chain(
            [("Conv2D", [s], s), ("Relu", [s], s)],
            scope="layer1",
        )
        other = b.add("Mul", inputs=[s, s], output=s, deps=[chain[0]])
        joined = b.join("Add", [chain[-1], other], inputs=[s, s], output=s)
        g = b.build()
        assert len(g) == 4
        assert set(g.predecessors(joined.name)) == {chain[-1].name, other.name}

    def test_unique_names_generated(self):
        b = GraphBuilder("demo")
        s = shape(2, 2)
        first = b.add("Relu", inputs=[s], output=s, scope="blk")
        second = b.add("Relu", inputs=[s], output=s, scope="blk")
        assert first.name != second.name

    def test_explicit_name(self):
        b = GraphBuilder("demo")
        s = shape(2, 2)
        op = b.add("Relu", inputs=[s], output=s, name="my_relu")
        assert op.name == "my_relu"

    def test_join_requires_branches(self):
        b = GraphBuilder("demo")
        s = shape(2, 2)
        with pytest.raises(ValueError):
            b.join("Add", [], inputs=[s], output=s)
