"""Tests for the end-to-end runtime, baselines, profiling views and API."""

from __future__ import annotations

import pytest

from repro.api import available_models, build_model_graph, default_machine, quick_schedule
from repro.baselines.manual_opt import ManualOptimizer
from repro.baselines.tf_default import UniformPolicy, default_policy, recommended_policy
from repro.core.config import RuntimeConfig
from repro.core.runtime import TrainingRuntime
from repro.execsim.simulator import StepSimulator
from repro.models import build_model
from repro.profiling.profiler import StepProfiler
from repro.profiling.reports import format_op_type_report, format_timeline
from repro.profiling.timeline import Timeline


@pytest.fixture(scope="module")
def reduced_resnet():
    return build_model("resnet50", stage_blocks=(1, 1, 1, 1))


@pytest.fixture(scope="module")
def reduced_lstm():
    return build_model("lstm", num_steps=4)


class TestBaselines:
    def test_recommended_policy_settings(self, knl):
        policy = recommended_policy(knl)
        assert policy.intra_op == 68
        assert policy.inter_op == 1

    def test_default_policy_oversubscribes(self, knl):
        policy = default_policy(knl)
        assert policy.intra_op == 272
        assert policy.inter_op == 272

    def test_tf_default_much_slower_than_recommendation(self, knl, reduced_resnet):
        """The paper notes the out-of-the-box default is far slower."""
        sim = StepSimulator(knl)
        rec = sim.run_step(reduced_resnet, recommended_policy(knl))
        default = sim.run_step(reduced_resnet, default_policy(knl))
        assert default.step_time > rec.step_time * 2

    def test_uniform_policy_validation(self):
        with pytest.raises(ValueError):
            UniformPolicy(0, 1)
        with pytest.raises(ValueError):
            UniformPolicy(1, 0)

    def test_manual_optimizer_finds_no_worse_than_recommendation(self, knl, reduced_resnet):
        sim = StepSimulator(knl)
        rec = sim.run_step(reduced_resnet, recommended_policy(knl))
        optimizer = ManualOptimizer(knl, intra_candidates=(34, 68), inter_candidates=(1, 2))
        search = optimizer.search(reduced_resnet, simulator=sim)
        assert search.best_time <= rec.step_time * 1.001
        assert search.configurations_tried == 4
        best = optimizer.best_step(reduced_resnet, simulator=sim)
        assert best.step_time == pytest.approx(search.best_time, rel=0.05)

    def test_manual_optimizer_validation(self, knl):
        with pytest.raises(ValueError):
            ManualOptimizer(knl, intra_candidates=(), inter_candidates=(1,))
        with pytest.raises(ValueError):
            ManualOptimizer(knl, intra_candidates=(0,), inter_candidates=(1,))


class TestTrainingRuntime:
    def test_report_speedup_over_recommendation(self, knl, reduced_resnet):
        runtime = TrainingRuntime(knl)
        report = runtime.run(reduced_resnet)
        assert report.speedup_vs_recommendation > 1.0
        assert report.profiling_signatures > 10
        assert report.step_time > 0

    def test_strategy_ladder_is_monotone(self, knl, reduced_resnet):
        """Each additional strategy must not slow the step down (much)."""
        runtime = TrainingRuntime(knl)
        comparison = runtime.compare_strategies(reduced_resnet)
        assert comparison.strategies_1_2 <= comparison.recommendation * 1.02
        assert comparison.strategies_1_2_3 <= comparison.strategies_1_2 * 1.02
        assert comparison.all_strategies <= comparison.strategies_1_2_3 * 1.05

    def test_ours_at_least_matches_manual(self, knl, reduced_resnet):
        runtime = TrainingRuntime(knl)
        comparison = runtime.compare_strategies(
            reduced_resnet,
            include_manual=True,
            manual_optimizer=ManualOptimizer(
                knl, intra_candidates=(16, 34, 68), inter_candidates=(1, 2, 4)
            ),
        )
        speedups = comparison.speedups_vs_recommendation()
        assert speedups["all_strategies"] >= speedups["manual"] * 0.95

    def test_lstm_benefits_from_concurrency_control(self, knl, reduced_lstm):
        """LSTM's small ops make per-op thread selection itself valuable."""
        runtime = TrainingRuntime(knl)
        comparison = runtime.compare_strategies(reduced_lstm)
        increments = comparison.incremental_speedups()
        assert increments["strategies_1_2_vs_recommendation"] > 1.1

    def test_num_steps_validation(self, knl, reduced_resnet):
        runtime = TrainingRuntime(knl)
        with pytest.raises(ValueError):
            runtime.run(reduced_resnet, num_steps=0)

    def test_profiling_overhead_is_small(self, knl, reduced_resnet):
        """The profiling steps are a negligible fraction of a real training
        run (the paper: < 0.05% of steps)."""
        runtime = TrainingRuntime(knl)
        model = runtime.profile(reduced_resnet)
        assert model.profiling_steps_used() < 60  # out of thousands of steps


class TestProfilingViews:
    @pytest.fixture(scope="class")
    def trace(self, knl, reduced_resnet):
        sim = StepSimulator(knl)
        return sim.run_step(reduced_resnet, recommended_policy(knl)).trace

    def test_top_op_types_ordering(self, trace):
        profiler = StepProfiler(trace)
        top = profiler.top_op_types(5)
        assert len(top) == 5
        totals = [s.total_time for s in top]
        assert totals == sorted(totals, reverse=True)

    def test_conv_backprop_among_top_ops(self, trace):
        """Table VI: convolution gradients dominate the CNN profiles."""
        profiler = StepProfiler(trace)
        top_names = [s.op_type for s in profiler.top_op_types(5)]
        assert any("Conv2D" in name for name in top_names)

    def test_total_time_of_missing_type(self, trace):
        assert StepProfiler(trace).total_time_of("DoesNotExist") == 0.0

    def test_timeline_lanes_consistent(self, trace):
        timeline = Timeline(trace)
        assert timeline.num_lanes >= 1
        # Entries in one lane never overlap.
        by_lane: dict[int, list] = {}
        for entry in timeline.entries:
            by_lane.setdefault(entry.lane, []).append(entry)
        for entries in by_lane.values():
            entries.sort(key=lambda e: e.start)
            for a, b in zip(entries, entries[1:]):
                assert b.start >= a.end - 1e-12

    def test_timeline_queries(self, trace):
        timeline = Timeline(trace)
        first = timeline.entries[0]
        assert timeline.concurrency_at(first.start + first.duration / 2) >= 1
        assert timeline.between(first.start, first.end)
        with pytest.raises(ValueError):
            timeline.between(1.0, 0.5)

    def test_reports_render(self, trace):
        profiler = StepProfiler(trace)
        report = format_op_type_report(profiler, top=5)
        assert "op type" in report
        timeline_report = format_timeline(Timeline(trace), limit=10)
        assert "lane" in timeline_report


class TestApi:
    def test_available_models(self):
        assert "resnet50" in available_models()

    def test_build_model_graph(self):
        graph = build_model_graph("dcgan", batch_size=8)
        assert len(graph) > 50

    def test_default_machine_is_knl(self):
        assert default_machine().topology.num_cores == 68

    def test_quick_schedule_reduced_model(self):
        outcome = quick_schedule("resnet50", stage_blocks=(1, 1, 1, 1))
        assert outcome.speedup_vs_recommendation > 1.0
        assert "speedup" in str(outcome)
