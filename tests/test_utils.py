"""Tests for repro.utils: units, statistics, seeding and table rendering."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.utils.seeding import SeedSequenceFactory, make_rng
from repro.utils.stats import (
    geometric_mean,
    harmonic_mean,
    mean_absolute_percentage_error,
    paper_accuracy,
    r_squared,
)
from repro.utils.tables import TextTable
from repro.utils.units import GB, KB, MB, format_bytes, format_time


class TestUnits:
    def test_constants_are_powers_of_two(self):
        assert KB == 1024
        assert MB == 1024 * KB
        assert GB == 1024 * MB

    def test_format_time_units(self):
        assert format_time(2.5) == "2.500 s"
        assert format_time(0.0032).endswith("ms")
        assert format_time(3.2e-6).endswith("us")
        assert format_time(5e-9).endswith("ns")

    def test_format_time_negative(self):
        assert format_time(-0.5).startswith("-")

    def test_format_bytes(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(3 * MB) == "3.00 MiB"
        assert format_bytes(2 * GB) == "2.00 GiB"
        assert format_bytes(1536) == "1.50 KiB"


class TestStats:
    def test_geometric_mean_simple(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_harmonic_mean(self):
        assert harmonic_mean([1.0, 1.0]) == pytest.approx(1.0)
        assert harmonic_mean([2.0, 6.0]) == pytest.approx(3.0)

    def test_mape_and_accuracy(self):
        true = [1.0, 2.0, 4.0]
        pred = [1.1, 1.8, 4.0]
        mape = mean_absolute_percentage_error(true, pred)
        assert mape == pytest.approx((0.1 + 0.1 + 0.0) / 3)
        assert paper_accuracy(true, pred) == pytest.approx(1.0 - mape)

    def test_accuracy_clamped_at_zero(self):
        assert paper_accuracy([1.0, 1.0], [10.0, 10.0]) == 0.0

    def test_mape_rejects_zero_truth(self):
        with pytest.raises(ValueError):
            mean_absolute_percentage_error([0.0, 1.0], [1.0, 1.0])

    def test_r_squared_perfect_and_mean(self):
        y = [1.0, 2.0, 3.0, 4.0]
        assert r_squared(y, y) == pytest.approx(1.0)
        assert r_squared(y, [2.5] * 4) == pytest.approx(0.0)

    def test_r_squared_shape_mismatch(self):
        with pytest.raises(ValueError):
            r_squared([1.0, 2.0], [1.0])


class TestSeeding:
    def test_make_rng_deterministic(self):
        a = make_rng(7).integers(0, 1000, size=5)
        b = make_rng(7).integers(0, 1000, size=5)
        assert np.array_equal(a, b)

    def test_seed_factory_children_are_stable_and_distinct(self):
        factory = SeedSequenceFactory(42)
        assert factory.child_seed("counters") == factory.child_seed("counters")
        assert factory.child_seed("counters") != factory.child_seed("noise")

    def test_seed_factory_rngs_independent_of_order(self):
        f1 = SeedSequenceFactory(1)
        f2 = SeedSequenceFactory(1)
        a_first = f1.rng("a").random()
        _ = f2.rng("b").random()
        a_second = f2.rng("a").random()
        assert a_first == pytest.approx(a_second)

    def test_rngs_list(self):
        factory = SeedSequenceFactory(3)
        rngs = factory.rngs(["x", "y"])
        assert len(rngs) == 2


class TestTextTable:
    def test_render_contains_headers_and_rows(self):
        table = TextTable(["op", "time"], title="demo")
        table.add_row(["Conv2D", 4.7])
        text = table.render()
        assert "demo" in text
        assert "Conv2D" in text
        assert "op" in text and "time" in text

    def test_row_length_mismatch_rejected(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            TextTable([])

    def test_float_formatting(self):
        table = TextTable(["v"])
        table.add_row([0.12345])
        table.add_row([1234.5])
        text = table.render()
        assert "0.1234" in text or "0.1235" in text
        assert "1234" in text
