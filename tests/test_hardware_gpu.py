"""Tests for the P100-like GPU model."""

from __future__ import annotations

import pytest

from repro.hardware.gpu import GpuSpec, p100_gpu


class TestGpuSpec:
    def test_p100_headline_numbers(self):
        gpu = p100_gpu()
        assert gpu.num_sms == 56
        assert gpu.total_cores == 3584
        assert gpu.l2_size == 4 * 1024 * 1024

    def test_peak_and_effective_flops(self):
        gpu = p100_gpu()
        assert gpu.effective_flops < gpu.peak_flops
        assert gpu.peak_flops > 8e12  # ~9.3 TFLOP/s FP32

    def test_occupancy_increases_with_blocks(self):
        gpu = p100_gpu()
        low = gpu.occupancy(1024, 14)
        mid = gpu.occupancy(1024, 56)
        high = gpu.occupancy(1024, 112)
        assert low < mid <= high <= 1.0

    def test_occupancy_increases_with_threads_per_block(self):
        gpu = p100_gpu()
        assert gpu.occupancy(128, 56) < gpu.occupancy(1024, 56)

    def test_occupancy_clamped_to_one(self):
        gpu = p100_gpu()
        assert gpu.occupancy(1024, 10_000) <= 1.0

    def test_occupancy_rounds_to_warps(self):
        gpu = p100_gpu()
        # 33 threads occupy two warps, same as 64 threads.
        assert gpu.occupancy(33, 56) == pytest.approx(gpu.occupancy(64, 56))

    def test_occupancy_invalid_inputs(self):
        gpu = p100_gpu()
        with pytest.raises(ValueError):
            gpu.occupancy(0, 56)
        with pytest.raises(ValueError):
            gpu.occupancy(128, 0)

    def test_scheduling_overhead_grows_with_blocks(self):
        gpu = p100_gpu()
        assert gpu.scheduling_overhead(1024, 896) > gpu.scheduling_overhead(1024, 56)

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            GpuSpec(num_sms=0)
