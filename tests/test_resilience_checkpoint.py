"""Unit tests for repro.resilience.checkpoint: snapshot write/read,
incremental row segments, retention, fallback, and signal handling."""

import os
import pickle
import signal
import threading

import pytest

from repro.resilience.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointConfig,
    CheckpointError,
    Checkpointer,
    GracefulInterrupt,
    checkpoint_dir,
    list_checkpoint_runs,
    resolve_checkpoint,
    resolve_checkpoint_run,
)

RUN = "abcd1234efgh5678"


def make(tmp_path, **kw):
    kw.setdefault("root", tmp_path)
    kw.setdefault("background", False)  # deterministic file layout
    return Checkpointer(RUN, CheckpointConfig(**kw), manifest={"config": {}})


def state_at(n):
    return {
        "cursor": n,
        "placements": [("job", i) for i in range(n)],
        "completions": [("done", i) for i in range(n // 2)],
    }


class TestCheckpointConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            CheckpointConfig(interval=0)
        with pytest.raises(ValueError):
            CheckpointConfig(keep=0)
        with pytest.raises(ValueError):
            CheckpointConfig(interrupt_after=-1)

    def test_resolve_checkpoint_coercions(self, tmp_path):
        assert resolve_checkpoint(None, run_id=RUN) is None
        assert resolve_checkpoint(False, run_id=RUN) is None
        ck = resolve_checkpoint(True, run_id=RUN)
        assert isinstance(ck, Checkpointer)
        assert resolve_checkpoint(128, run_id=RUN).config.interval == 128
        via_dict = resolve_checkpoint(
            {"interval": 7, "root": tmp_path}, run_id=RUN
        )
        assert via_dict.config.interval == 7
        assert resolve_checkpoint(via_dict, run_id=RUN) is via_dict
        with pytest.raises(TypeError):
            resolve_checkpoint(3.5, run_id=RUN)


class TestSaveAndOpen:
    def test_round_trip_restores_rows_and_state(self, tmp_path):
        ck = make(tmp_path)
        ck.save(100, state_at(10))
        ck.save(200, state_at(25))

        opened, payload = Checkpointer.open(RUN, root=tmp_path)
        assert payload["events"] == 200
        assert payload["state"]["cursor"] == 25
        assert payload["state"]["placements"] == [("job", i) for i in range(25)]
        assert payload["state"]["completions"] == [("done", i) for i in range(12)]
        # The continued sequence picks up seq, cursor and delta bases.
        assert opened.seq == 2
        assert opened._rows_persisted == {"placements": 25, "completions": 12}

    def test_rows_are_delta_segments(self, tmp_path):
        ck = make(tmp_path)
        ck.save(100, state_at(10))
        ck.save(200, state_at(25))
        directory = checkpoint_dir(RUN, tmp_path)
        segments = sorted(directory.glob("rows-*.pkl"))
        assert len(segments) == 2
        second = pickle.loads(segments[1].read_bytes())
        # Only the rows appended since the first save are re-serialised.
        assert second["base"] == {"placements": 10, "completions": 5}
        assert second["rows"]["placements"] == [("job", i) for i in range(10, 25)]

    def test_prune_keeps_newest_snapshots_but_all_segments(self, tmp_path):
        ck = make(tmp_path, keep=2)
        for n in range(1, 6):
            ck.save(n * 100, state_at(n * 4))
        directory = checkpoint_dir(RUN, tmp_path)
        snapshots = sorted(p.name for p in directory.glob("ck-*.pkl"))
        assert snapshots == ["ck-00000004.pkl", "ck-00000005.pkl"]
        # Row segments are never pruned: together they hold each row once.
        assert len(list(directory.glob("rows-*.pkl"))) == 5

    def test_torn_newest_snapshot_falls_back(self, tmp_path):
        ck = make(tmp_path)
        ck.save(100, state_at(10))
        ck.save(200, state_at(25))
        directory = checkpoint_dir(RUN, tmp_path)
        newest = sorted(directory.glob("ck-*.pkl"))[-1]
        newest.write_bytes(b"\xde\xad\xbe\xef")
        _, payload = Checkpointer.open(RUN, root=tmp_path)
        assert payload["events"] == 100
        assert payload["state"]["placements"] == [("job", i) for i in range(10)]

    def test_torn_row_segment_falls_back_to_older_snapshot(self, tmp_path):
        ck = make(tmp_path)
        ck.save(100, state_at(10))
        ck.save(200, state_at(25))
        directory = checkpoint_dir(RUN, tmp_path)
        # Rot the *second* delta: the newest snapshot's rows can no longer
        # be spliced, but the first snapshot only needs the first segment.
        sorted(directory.glob("rows-*.pkl"))[-1].write_bytes(b"rot")
        _, payload = Checkpointer.open(RUN, root=tmp_path)
        assert payload["events"] == 100

    def test_all_snapshots_torn_raises(self, tmp_path):
        ck = make(tmp_path)
        ck.save(100, state_at(10))
        for path in checkpoint_dir(RUN, tmp_path).glob("ck-*.pkl"):
            path.write_bytes(b"nope")
        with pytest.raises(CheckpointError):
            Checkpointer.open(RUN, root=tmp_path)

    def test_incompatible_schema_version_is_skipped(self, tmp_path):
        ck = make(tmp_path)
        path = ck.save(100, state_at(10))
        payload = pickle.loads(path.read_bytes())
        assert payload["version"] == CHECKPOINT_SCHEMA_VERSION
        payload["version"] = CHECKPOINT_SCHEMA_VERSION + 1
        path.write_bytes(pickle.dumps(payload))
        with pytest.raises(CheckpointError):
            Checkpointer.open(RUN, root=tmp_path)

    def test_complete_removes_directory(self, tmp_path):
        ck = make(tmp_path)
        ck.save(100, state_at(10))
        assert checkpoint_dir(RUN, tmp_path).is_dir()
        ck.complete()
        assert not checkpoint_dir(RUN, tmp_path).exists()

    def test_keep_on_success_preserves_snapshots(self, tmp_path):
        ck = make(tmp_path, keep_on_success=True)
        ck.save(100, state_at(10))
        ck.complete()
        assert checkpoint_dir(RUN, tmp_path).is_dir()


@pytest.mark.skipif(not hasattr(os, "fork"), reason="needs os.fork")
class TestBackgroundWriter:
    def test_forked_saves_land_and_round_trip(self, tmp_path):
        ck = Checkpointer(
            RUN,
            CheckpointConfig(root=tmp_path, background=True),
            manifest={"config": {}},
        )
        ck.save(100, state_at(10))
        ck.save(200, state_at(25))
        ck._reap(block=True)
        assert not ck._children
        _, payload = Checkpointer.open(RUN, root=tmp_path)
        assert payload["events"] == 200
        assert payload["state"]["placements"] == [("job", i) for i in range(25)]

    def test_final_save_is_synchronous(self, tmp_path):
        ck = Checkpointer(
            RUN,
            CheckpointConfig(root=tmp_path, background=True),
            manifest={"config": {}},
        )
        path = ck.save(100, state_at(10), wait=True)
        # No in-flight writers, and the snapshot is durably readable now.
        assert not ck._children
        assert pickle.loads(path.read_bytes())["events"] == 100


class TestResolution:
    def test_listing_and_prefix_resolution(self, tmp_path):
        make(tmp_path).save(1, state_at(1))
        other = "zzzz9999aaaa0000"
        Checkpointer(
            other, CheckpointConfig(root=tmp_path, background=False)
        ).save(1, state_at(1))
        assert set(list_checkpoint_runs(tmp_path)) == {RUN, other}
        assert resolve_checkpoint_run(RUN[:6], tmp_path) == RUN
        with pytest.raises(KeyError):
            resolve_checkpoint_run("ab", tmp_path)  # too short
        with pytest.raises(KeyError):
            resolve_checkpoint_run("ffff", tmp_path)  # no match

    def test_ambiguous_prefix(self, tmp_path):
        twin = RUN[:8] + "deadbeef"
        for run in (RUN, twin):
            Checkpointer(
                run, CheckpointConfig(root=tmp_path, background=False)
            ).save(1, state_at(1))
        with pytest.raises(KeyError, match="ambiguous"):
            resolve_checkpoint_run(RUN[:6], tmp_path)


class TestGracefulInterrupt:
    def test_first_signal_requests_stop(self, tmp_path):
        ck = make(tmp_path)
        with GracefulInterrupt(ck):
            os.kill(os.getpid(), signal.SIGINT)
            # The handler must swallow the signal (no KeyboardInterrupt)
            # and flag the checkpointer instead.
            assert ck.stop_requested
            assert ck._trigger == 0
        # Previous disposition restored on exit.
        assert signal.getsignal(signal.SIGINT) is signal.default_int_handler

    def test_noop_off_main_thread(self, tmp_path):
        ck = make(tmp_path)
        seen = {}

        def target():
            with GracefulInterrupt(ck) as guard:
                seen["installed"] = bool(guard._previous)

        thread = threading.Thread(target=target)
        thread.start()
        thread.join()
        assert seen == {"installed": False}
