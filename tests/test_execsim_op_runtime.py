"""Tests for the single-operation execution-time model.

These tests check the *behavioural* properties the paper's runtime relies
on rather than absolute numbers: interior optima, their ordering across
operation types, their growth with input size, and sane breakdowns.
"""

from __future__ import annotations

import pytest

from repro.execsim.op_runtime import execution_time, optimal_configuration, sweep_thread_counts
from repro.hardware.affinity import AffinityMode
from repro.ops.cost import characterize

from tests.conftest import make_conv_op, make_elementwise_op


class TestExecutionTime:
    def test_positive_and_finite(self, knl, conv_op):
        chars = characterize(conv_op)
        breakdown = execution_time(chars, knl, 16)
        assert 0 < breakdown.total < 10
        assert breakdown.total >= breakdown.compute_time

    def test_invalid_threads_rejected(self, knl, conv_op):
        with pytest.raises(ValueError):
            execution_time(characterize(conv_op), knl, 0)

    def test_more_threads_help_up_to_a_point(self, knl, conv_op):
        chars = characterize(conv_op)
        t1 = execution_time(chars, knl, 1, AffinityMode.SPREAD).total
        t16 = execution_time(chars, knl, 16, AffinityMode.SHARED).total
        assert t16 < t1 / 4

    def test_oversubscription_adds_overhead(self, knl, conv_op):
        chars = characterize(conv_op)
        t68 = execution_time(chars, knl, 68).total
        t272 = execution_time(chars, knl, 272).total
        assert t272 > t68

    def test_reconfiguration_penalty(self, knl, conv_op):
        chars = characterize(conv_op)
        base = execution_time(chars, knl, 34).total
        reconfigured = execution_time(chars, knl, 34, reconfigured=True).total
        assert reconfigured == pytest.approx(base + knl.reconfiguration_cost)

    def test_memory_bound_fraction_higher_for_elementwise(self, knl, conv_op, elementwise_op):
        conv = execution_time(characterize(conv_op), knl, 34)
        mul = execution_time(characterize(elementwise_op), knl, 34)
        assert mul.memory_bound_fraction > conv.memory_bound_fraction

    def test_bandwidth_demand_consistent(self, knl, elementwise_op):
        breakdown = execution_time(characterize(elementwise_op), knl, 34)
        assert breakdown.bandwidth_demand == pytest.approx(
            breakdown.bytes_from_memory / breakdown.total
        )

    def test_infeasible_spread_placement_promoted(self, knl, conv_op):
        # 40 threads cannot be spread one-per-tile on 34 tiles; the model
        # silently falls back to the shared layout instead of failing.
        chars = characterize(conv_op)
        breakdown = execution_time(chars, knl, 40, AffinityMode.SPREAD)
        assert breakdown.total > 0


class TestSweepAndOptimum:
    def test_sweep_covers_68_cases_on_knl(self, knl, conv_op):
        sweep = sweep_thread_counts(characterize(conv_op), knl)
        assert len(sweep) == 68

    def test_fig1_optimum_ordering(self, knl):
        """Filter-grad < input-grad < forward conv optimum threads (Fig. 1)."""
        optima = {}
        for op_type in ("Conv2DBackpropFilter", "Conv2DBackpropInput", "Conv2D"):
            chars = characterize(make_conv_op(op_type, (32, 8, 8, 384)))
            threads, _, _ = optimal_configuration(chars, knl)
            optima[op_type] = threads
        assert (
            optima["Conv2DBackpropFilter"]
            < optima["Conv2DBackpropInput"]
            < optima["Conv2D"]
        )
        # All optima sit strictly below the 68-thread recommendation.
        assert all(threads < 68 for threads in optima.values())

    def test_table2_optimum_grows_with_input_size(self, knl):
        """Larger inputs push the optimum toward the full chip (Table II)."""
        small = optimal_configuration(
            characterize(make_conv_op("Conv2DBackpropFilter", (32, 8, 8, 384))), knl
        )[0]
        large = optimal_configuration(
            characterize(make_conv_op("Conv2DBackpropFilter", (32, 8, 8, 2048))), knl
        )[0]
        assert large > small
        assert large >= 60

    def test_default_68_threads_loses_meaningfully_on_small_convs(self, knl):
        """Fig. 1 reports up to ~17% loss for the recommendation."""
        chars = characterize(make_conv_op("Conv2DBackpropFilter", (32, 8, 8, 384)))
        _, _, best = optimal_configuration(chars, knl)
        at_68 = execution_time(chars, knl, 68, AffinityMode.SHARED).total
        loss = (at_68 - best) / at_68
        assert 0.08 < loss < 0.35

    def test_small_ops_prefer_few_threads(self, knl):
        chars = characterize(make_elementwise_op("Mul", (20, 200)))
        threads, _, _ = optimal_configuration(chars, knl)
        assert threads <= 12

    def test_optimum_is_global_minimum_of_sweep(self, knl, conv_op):
        chars = characterize(conv_op)
        threads, affinity, best = optimal_configuration(chars, knl)
        sweep = sweep_thread_counts(chars, knl)
        assert best == pytest.approx(min(b.total for b in sweep.values()))
        assert sweep[(threads, affinity)].total == pytest.approx(best)

    def test_curve_is_roughly_convex_around_optimum(self, knl):
        """The paper observes the time-vs-threads curve behaves as a convex
        function; check no deep secondary minima exist for the shared layout."""
        chars = characterize(make_conv_op("Conv2DBackpropFilter", (32, 8, 8, 384)))
        counts = list(range(2, 69, 2))
        times = [execution_time(chars, knl, c, AffinityMode.SHARED).total for c in counts]
        best_index = times.index(min(times))
        # strictly decreasing before the optimum, non-decreasing after (with slack)
        for i in range(1, best_index):
            assert times[i] <= times[i - 1] * 1.02
        for i in range(best_index + 1, len(times)):
            assert times[i] >= times[best_index] * 0.98
