"""Fault injection: equivalence under faults, per-fault accounting, guards.

The tentpole contract: ``repro.fleet.faults`` layers deterministic
machine crashes, joins, graceful drains, straggler windows and job
preemptions over any trace, and the round-compression fast path stays
byte-identical to the one-event-per-round reference loop under every
plan (the randomized sweep below).  The satellites pin the per-fault
accounting (retries / preemptions / lost steps / downtime / attempts),
trace validation, the livelock watchdog vs dead-fleet abandonment, plan
serialization and the zero-cost-when-unused guarantee.
"""

from __future__ import annotations

import json

import pytest

from repro.fleet import (
    AdmissionController,
    FaultInjector,
    FaultPlan,
    FleetSimulator,
    FleetStalled,
    Job,
    JobPreempt,
    MachineCrash,
    MachineJoin,
    MachineLeave,
    Straggler,
    generate_fault_plan,
    generate_trace,
    resolve_fault_plan,
    validate_trace,
)
from repro.fleet.estimates import EstimatorStats
from repro.scenarios import Workload, available_fault_specs, get_fault_spec

SYN_A = Workload(synthetic_ops=24, synthetic_width=4, label="kind-a")
SYN_B = Workload(synthetic_ops=24, synthetic_width=4, heavy_fraction=0.6, label="kind-b")
SYN_C = Workload(synthetic_ops=16, synthetic_width=2, heavy_fraction=0.3, label="kind-c")

POLICIES = ("first-fit", "load-balanced", "interference-aware")


def job(name, workload=SYN_A, steps=2, arrival=0.0, seed=0):
    return Job(
        name=name,
        workload=workload,
        num_steps=steps,
        arrival_time=arrival,
        graph_seed=seed,
    )


class FakeEstimator:
    """Deterministic dict-driven estimator (no graph simulation)."""

    def __init__(self, solo, pair_factor=1.5):
        self.solo = solo
        self.pair_factor = pair_factor
        self.stats = EstimatorStats()

    def step_time(self, machine_name, jobs):
        jobs = list(jobs)
        self.stats.requests += 1
        if len(jobs) == 1:
            return self.solo[(machine_name, jobs[0].kind)]
        slowest = max(self.solo[(machine_name, j.kind)] for j in jobs)
        return slowest * self.pair_factor

    def solo_time(self, machine_name, job):
        return self.step_time(machine_name, (job,))

    def prewarm(self, machine_names, jobs, max_corun=1):
        return 0


BASES = {"desktop-8c": 1.0, "laptop-4c": 3.0, "cloud-vm-16v": 2.0, "arm-server-64c": 1.5}


def fake_estimator(machines, pair_factor=1.5):
    solo = {}
    for name in set(machines) | set(BASES):
        base = BASES[name]
        solo[(name, "kind-a")] = base
        solo[(name, "kind-b")] = 1.5 * base
        solo[(name, "kind-c")] = 0.7 * base
    return FakeEstimator(solo, pair_factor)


def deterministic_dict(result):
    return json.dumps(result.to_dict(include_overhead=False), sort_keys=True)


def run_both_paths(machines, policy, jobs, faults, *, pair_factor=1.5, admission=None):
    """One trace + plan through both simulator paths; returns results and
    tracker snapshots."""
    results, trackers = [], []
    for compressed in (False, True):
        sim = FleetSimulator(
            machines,
            policy=policy,
            estimator=fake_estimator(machines, pair_factor),
            compressed=compressed,
            admission=admission,
        )
        results.append(sim.run(jobs, prewarm=False, faults=faults))
        trackers.append(sim.tracker.snapshot())
    return results, trackers


#: Admission configurations the sweep cycles through (by seed index):
#: faults and backpressure must compose without breaking equivalence.
SWEEP_ADMISSIONS = (
    None,
    AdmissionController(queue_limit=3),
    AdmissionController(queue_limit=2, shed_policy="drop-oldest"),
    AdmissionController(deadline=4.0, shed_policy="deadline-expire"),
)


class TestFaultEquivalenceSweep:
    """The acceptance gate: random plans, every policy, byte-identical."""

    @pytest.mark.parametrize("policy", POLICIES)
    def test_random_fault_plans_byte_identical(self, policy):
        machines = ["desktop-8c", "laptop-4c", "cloud-vm-16v", "desktop-8c"]
        plans_checked = 0
        for seed in range(20):
            jobs = generate_trace(
                12,
                seed=seed,
                workloads=(SYN_A, SYN_B, SYN_C),
                min_steps=2,
                max_steps=25,
                mean_interarrival=1.5,
            )
            horizon = jobs[-1].arrival_time * 1.5
            plan = generate_fault_plan(
                [f"m{i}" for i in range(len(machines))],
                horizon=max(horizon, 5.0),
                seed=1000 + seed,
                crash_rate=0.3,
                straggler_rate=0.4,
                preempt_rate=0.2,
                job_names=[j.name for j in jobs],
                join_machines=("arm-server-64c",) if seed % 3 == 0 else (),
                max_retries=2 + seed % 3,
            )
            assert plan.events, f"seed {seed} produced an empty plan"
            admission = SWEEP_ADMISSIONS[seed % len(SWEEP_ADMISSIONS)]
            (reference, compressed), (tracker_ref, tracker_fast) = run_both_paths(
                machines, policy, jobs, plan, admission=admission
            )
            assert deterministic_dict(reference) == deterministic_dict(compressed), (
                f"paths diverged under plan seed {seed} (admission {admission})"
            )
            assert tracker_ref == tracker_fast
            offered = reference.num_jobs
            assert (
                len(reference.completions)
                + len(reference.failures)
                + len(reference.rejections)
                == offered
            )
            plans_checked += 1
        assert plans_checked == 20

    def test_fault_accounting_matches_across_paths(self):
        # Equivalence covers the digest; make the fault fields explicit.
        machines = ["desktop-8c", "laptop-4c"]
        jobs = generate_trace(
            10, seed=2, workloads=(SYN_A, SYN_B), min_steps=4, max_steps=20,
            mean_interarrival=1.0,
        )
        plan = FaultPlan(
            events=(
                Straggler(time=3.0, machine="m0", factor=2.0, duration=10.0),
                MachineCrash(time=8.0, machine="m1"),
                JobPreempt(time=5.0, job=jobs[0].name),
            )
        )
        (reference, compressed), _ = run_both_paths(machines, "first-fit", jobs, plan)
        assert reference.retries == compressed.retries
        assert reference.preemptions == compressed.preemptions
        assert reference.lost_steps == compressed.lost_steps
        assert [f.job for f in reference.failures] == [
            f.job for f in compressed.failures
        ]


class TestZeroCostWhenUnused:
    def test_empty_plan_byte_identical_to_no_plan(self):
        machines = ["desktop-8c", "laptop-4c"]
        jobs = generate_trace(8, seed=1, workloads=(SYN_A, SYN_B))
        outcomes = []
        for faults in (None, FaultPlan(), FaultInjector(FaultPlan())):
            sim = FleetSimulator(
                machines,
                policy="load-balanced",
                estimator=fake_estimator(machines),
                faults=faults,
            )
            outcomes.append(deterministic_dict(sim.run(jobs, prewarm=False)))
        assert outcomes[0] == outcomes[1] == outcomes[2]

    def test_empty_plan_processes_no_extra_events(self):
        machines = ["desktop-8c"]
        jobs = [job("a", steps=3)]
        results = []
        for faults in (None, FaultPlan()):
            sim = FleetSimulator(
                machines,
                policy="first-fit",
                estimator=fake_estimator(machines),
                faults=faults,
            )
            results.append(sim.run(jobs, prewarm=False))
        assert results[0].events_processed == results[1].events_processed


class TestCrashAccounting:
    def two_machine_crash(self, max_retries=3):
        # Load-balanced puts one job per machine; m0 crashes mid-round
        # and its job retries on the surviving m1.
        machines = ["desktop-8c", "desktop-8c"]
        jobs = [job("a", steps=4), job("b", steps=4, arrival=0.1)]
        plan = FaultPlan(
            events=(MachineCrash(time=2.5, machine="m0"),),
            max_retries=max_retries,
        )
        sim = FleetSimulator(
            machines,
            policy="load-balanced",
            estimator=fake_estimator(machines),
            compressed=True,
        )
        return sim.run(jobs, prewarm=False, faults=plan)

    def test_crash_requeues_with_retry_accounting(self):
        result = self.two_machine_crash()
        assert result.retries == 1
        # kind-a on desktop-8c runs 1 s rounds: the round in flight at
        # t=2.5 is lost and "a" restarts from the 2-completed-rounds
        # boundary on m1.
        assert result.lost_steps == 1
        by_name = {c.job: c for c in result.completions}
        assert by_name["a"].attempts == 2
        assert by_name["b"].attempts == 1
        assert by_name["a"].machine_id == "m1"
        m0 = next(m for m in result.machine_reports if m.machine_id == "m0")
        assert m0.retries == 1
        assert m0.lost_steps == 1
        assert m0.downtime > 0.0
        # Aborted rounds never count as executed rounds or busy time.
        assert m0.rounds == 2
        assert m0.busy_time == pytest.approx(2.0)

    def test_retry_budget_exhaustion_fails_the_job(self):
        # max_retries=1: the first crash already exceeds the budget.
        result = self.two_machine_crash(max_retries=1)
        assert [f.job for f in result.failures] == ["a"]
        failure = result.failures[0]
        assert failure.attempts == 1
        assert failure.failed_time == pytest.approx(2.5)
        assert "a" not in {c.job for c in result.completions}
        # The surviving job still completes normally.
        assert {c.job for c in result.completions} == {"b"}

    def test_crash_on_dead_machine_is_noop(self):
        machines = ["desktop-8c", "desktop-8c"]
        jobs = [job("a", steps=3)]
        plan = FaultPlan(
            events=(
                MachineCrash(time=1.5, machine="m0"),
                MachineCrash(time=2.0, machine="m0"),
            )
        )
        sim = FleetSimulator(
            machines, policy="first-fit", estimator=fake_estimator(machines)
        )
        result = sim.run(jobs, prewarm=False, faults=plan)
        assert result.retries == 1
        assert len(result.completions) == 1


class TestPreemptAccounting:
    def test_preempt_requeues_without_burning_retry_budget(self):
        machines = ["desktop-8c"]
        jobs = [job("a", steps=4)]
        plan = FaultPlan(events=(JobPreempt(time=1.5, job="a"),))
        sim = FleetSimulator(
            machines, policy="first-fit", estimator=fake_estimator(machines)
        )
        result = sim.run(jobs, prewarm=False, faults=plan)
        assert result.preemptions == 1
        assert result.retries == 0
        assert result.lost_steps == 1  # the round in flight at t=1.5
        completion = result.completions[0]
        assert completion.attempts == 1  # preemption is not a retry
        # 1 round done by t=1.5, 3 remain after the immediate re-place:
        # finish = 1.5 + 3 x 1.0.
        assert completion.finish_time == pytest.approx(4.5)

    def test_preempt_unknown_or_finished_job_is_noop(self):
        machines = ["desktop-8c"]
        jobs = [job("a", steps=2)]
        plan = FaultPlan(
            events=(
                JobPreempt(time=0.5, job="ghost"),
                JobPreempt(time=50.0, job="a"),  # long after "a" finished
            )
        )
        sim = FleetSimulator(
            machines, policy="first-fit", estimator=fake_estimator(machines)
        )
        result = sim.run(jobs, prewarm=False, faults=plan)
        assert result.preemptions == 0
        assert result.completions[0].finish_time == pytest.approx(2.0)


class TestLeaveDrain:
    def test_leave_drains_then_dies(self):
        machines = ["desktop-8c", "laptop-4c"]
        # "a" runs on m0 when the drain starts; "b" arrives after and
        # must land on the slow m1 because m0 no longer accepts.
        jobs = [job("a", steps=4), job("b", steps=2, arrival=1.5)]
        plan = FaultPlan(events=(MachineLeave(time=1.0, machine="m0"),))
        sim = FleetSimulator(
            machines, policy="first-fit", estimator=fake_estimator(machines)
        )
        result = sim.run(jobs, prewarm=False, faults=plan)
        by_name = {c.job: c for c in result.completions}
        assert by_name["a"].machine_id == "m0"  # resident runs to completion
        assert by_name["a"].finish_time == pytest.approx(4.0)
        assert by_name["b"].machine_id == "m1"
        m0 = next(m for m in result.machine_reports if m.machine_id == "m0")
        assert m0.downtime > 0.0  # left the fleet after draining
        assert result.retries == 0 and result.lost_steps == 0

    def test_leave_idle_machine_dies_immediately(self):
        machines = ["desktop-8c", "desktop-8c"]
        jobs = [job("a", steps=2, arrival=2.0)]
        plan = FaultPlan(events=(MachineLeave(time=0.5, machine="m0"),))
        sim = FleetSimulator(
            machines, policy="first-fit", estimator=fake_estimator(machines)
        )
        result = sim.run(jobs, prewarm=False, faults=plan)
        assert result.completions[0].machine_id == "m1"


class TestJoin:
    def test_join_adds_capacity_mid_trace(self):
        machines = ["desktop-8c"]
        # Saturate m0 (max_corun=2 -> two residents), queue the third job,
        # then join a machine: the queued job must land on the new m1.
        jobs = [
            job("a", steps=10),
            job("b", steps=10),
            job("c", steps=4, arrival=0.5),
        ]
        plan = FaultPlan(events=(MachineJoin(time=2.0, machine_name="laptop-4c"),))
        sim = FleetSimulator(
            machines, policy="first-fit", estimator=fake_estimator(machines)
        )
        result = sim.run(jobs, prewarm=False, faults=plan)
        by_name = {c.job: c for c in result.completions}
        assert by_name["c"].machine_id == "m1"
        assert by_name["c"].start_time == pytest.approx(2.0)
        assert len(result.machine_reports) == 2
        m1 = next(m for m in result.machine_reports if m.machine_id == "m1")
        assert m1.machine_name == "laptop-4c"

    def test_joined_machine_can_crash_later(self):
        machines = ["desktop-8c"]
        jobs = [job("a", steps=3)]
        plan = FaultPlan(
            events=(
                MachineJoin(time=0.5, machine_name="laptop-4c"),
                MachineCrash(time=1.0, machine="m1"),
            )
        )
        sim = FleetSimulator(
            machines, policy="first-fit", estimator=fake_estimator(machines)
        )
        result = sim.run(jobs, prewarm=False, faults=plan)  # no ValueError
        assert len(result.completions) == 1


class TestStragglerWindows:
    def test_window_scales_rounds_inside_it(self):
        machines = ["desktop-8c"]
        jobs = [job("a", steps=4)]  # 1 s rounds un-scaled
        plan = FaultPlan(
            events=(Straggler(time=1.0, machine="m0", factor=2.0, duration=10.0),)
        )
        sim = FleetSimulator(
            machines, policy="first-fit", estimator=fake_estimator(machines)
        )
        result = sim.run(jobs, prewarm=False, faults=plan)
        # Round 1 before the window (1 s); round 2 starts at the very
        # instant the window opens and still prices at 1 s — a round
        # completing (and its successor starting) at a fault instant
        # precedes the fault; rounds 3-4 run inside the window (2 s each).
        assert result.completions[0].finish_time == pytest.approx(6.0)

    def test_in_flight_round_keeps_its_start_price(self):
        machines = ["desktop-8c"]
        jobs = [job("a", steps=3)]
        # Window opens mid-round at t=0.5: the in-flight round keeps its
        # 1 s start price; round 2 starts at 1.0 inside the window (2 s)
        # and ends at 3.0, past the close at 2.5, keeping its 2 s price;
        # round 3 starts after the close and is back to 1 s.
        plan = FaultPlan(
            events=(Straggler(time=0.5, machine="m0", factor=2.0, duration=2.0),)
        )
        sim = FleetSimulator(
            machines, policy="first-fit", estimator=fake_estimator(machines)
        )
        result = sim.run(jobs, prewarm=False, faults=plan)
        assert result.completions[0].finish_time == pytest.approx(4.0)

    def test_straggler_does_not_pollute_the_estimator(self):
        # The estimator sees only unscaled queries: a second, fault-free
        # run against the same FakeEstimator returns unscaled times.
        machines = ["desktop-8c"]
        estimator = fake_estimator(machines)
        sim = FleetSimulator(machines, policy="first-fit", estimator=estimator)
        plan = FaultPlan(
            events=(Straggler(time=0.0, machine="m0", factor=3.0, duration=100.0),)
        )
        faulted = sim.run([job("a", steps=2)], prewarm=False, faults=plan)
        assert faulted.makespan == pytest.approx(6.0)
        clean = sim.run([job("a", steps=2)], prewarm=False)
        assert clean.makespan == pytest.approx(2.0)


class TestTraceValidation:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate job name"):
            validate_trace([job("a"), job("b"), job("a")])

    @staticmethod
    def smuggled(name, steps=2, arrival=0.0):
        # Job.__post_init__ already rejects these at construction time;
        # validate_trace guards against values smuggled past it (external
        # tooling, __setattr__ tricks), so build one that way.
        bad = job(name)
        object.__setattr__(bad, "num_steps", steps)
        object.__setattr__(bad, "arrival_time", arrival)
        return bad

    def test_job_constructor_rejects_bad_fields(self):
        with pytest.raises(ValueError, match="num_steps"):
            job("a", steps=0)
        with pytest.raises(ValueError, match="arrival_time"):
            job("a", arrival=-0.5)

    def test_non_positive_steps_rejected(self):
        with pytest.raises(ValueError, match="non-positive num_steps"):
            validate_trace([self.smuggled("a", steps=0)])

    def test_negative_arrival_rejected(self):
        with pytest.raises(ValueError, match="negative arrival_time"):
            validate_trace([self.smuggled("a", arrival=-0.5)])

    def test_simulator_run_validates(self):
        sim = FleetSimulator(
            ["desktop-8c"], policy="first-fit", estimator=fake_estimator(["desktop-8c"])
        )
        with pytest.raises(ValueError, match="duplicate job name"):
            sim.run([job("x"), job("x")], prewarm=False)


class TestWatchdogAndDeadFleet:
    def test_all_machines_crashed_before_first_arrival_terminates(self):
        # The small-fix satellite: a fully dead fleet must terminate with
        # every job failed (attempts == max_retries), not hang.
        machines = ["desktop-8c", "laptop-4c"]
        jobs = [job("a", steps=3, arrival=5.0), job("b", steps=2, arrival=6.0)]
        plan = FaultPlan(
            events=(
                MachineCrash(time=1.0, machine="m0"),
                MachineCrash(time=2.0, machine="m1"),
            ),
            max_retries=3,
        )
        sim = FleetSimulator(
            machines, policy="first-fit", estimator=fake_estimator(machines)
        )
        result = sim.run(jobs, prewarm=False, faults=plan)
        assert not result.completions
        assert sorted(f.job for f in result.failures) == ["a", "b"]
        assert all(f.attempts == 3 for f in result.failures)
        assert all(f.kind == "kind-a" for f in result.failures)

    def test_dead_fleet_equivalent_across_paths(self):
        machines = ["desktop-8c"]
        jobs = [job("a", steps=3, arrival=2.0)]
        plan = FaultPlan(events=(MachineCrash(time=0.5, machine="m0"),))
        (reference, compressed), _ = run_both_paths(machines, "first-fit", jobs, plan)
        assert deterministic_dict(reference) == deterministic_dict(compressed)
        assert [f.job for f in reference.failures] == ["a"]

    def test_policy_livelock_raises_fleet_stalled(self):
        class NeverPlace:
            name = "never-place"

            def place(self, job, fleet):
                return None

        sim = FleetSimulator(
            ["desktop-8c"], policy=NeverPlace(), estimator=fake_estimator(["desktop-8c"])
        )
        with pytest.raises(FleetStalled) as excinfo:
            sim.run([job("a", steps=2)], prewarm=False)
        assert excinfo.value.jobs == ("a",)
        assert "a" in str(excinfo.value)


class TestPlanSerialization:
    PLAN = FaultPlan(
        events=(
            MachineCrash(time=3.0, machine="m0"),
            MachineJoin(time=4.0, machine_name="laptop-4c"),
            MachineLeave(time=5.0, machine="m1"),
            Straggler(time=1.0, machine="m2", factor=2.5, duration=7.0),
            JobPreempt(time=6.0, job="job-x"),
        ),
        max_retries=5,
    )

    def test_round_trip_exact(self):
        assert FaultPlan.from_dict(self.PLAN.to_dict()) == self.PLAN
        # ... and through actual JSON text.
        assert FaultPlan.from_dict(json.loads(json.dumps(self.PLAN.to_dict()))) == self.PLAN

    def test_resolve_accepts_every_spec_shape(self, tmp_path):
        as_dict = self.PLAN.to_dict()
        as_json = json.dumps(as_dict)
        path = tmp_path / "plan.json"
        path.write_text(as_json)
        for value in (self.PLAN, FaultInjector(self.PLAN), as_dict, as_json, str(path)):
            assert resolve_fault_plan(value) == self.PLAN
        assert resolve_fault_plan(None) is None

    def test_resolve_registered_names(self):
        names = available_fault_specs()
        assert "single-crash" in names
        for name in names:
            plan = resolve_fault_plan(name)
            assert isinstance(plan, FaultPlan)
            assert plan == FaultPlan.from_dict(get_fault_spec(name))

    def test_resolve_rejects_garbage(self):
        with pytest.raises(ValueError, match="registered fault-spec name"):
            resolve_fault_plan("no-such-spec-or-json")
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.from_dict({"events": [{"kind": "meteor", "time": 1.0}]})

    def test_event_validation(self):
        with pytest.raises(ValueError):
            MachineCrash(time=-1.0, machine="m0")
        with pytest.raises(ValueError):
            Straggler(time=0.0, machine="m0", factor=0.0, duration=1.0)
        with pytest.raises(ValueError):
            Straggler(time=0.0, machine="m0", factor=2.0, duration=0.0)
        with pytest.raises(KeyError):
            MachineJoin(time=0.0, machine_name="not-a-zoo-machine")
        with pytest.raises(ValueError):
            FaultPlan(max_retries=0)

    def test_validate_for_unknown_machine_ids(self):
        plan = FaultPlan(events=(MachineCrash(time=1.0, machine="m9"),))
        with pytest.raises(ValueError, match="unknown machine ids m9"):
            FleetSimulator(
                ["desktop-8c"],
                policy="first-fit",
                estimator=fake_estimator(["desktop-8c"]),
            ).run([job("a")], prewarm=False, faults=plan)

    def test_generated_plans_are_seeded_values(self):
        kwargs = dict(
            horizon=50.0,
            crash_rate=0.5,
            straggler_rate=0.5,
            preempt_rate=0.5,
            job_names=("a", "b"),
            join_machines=("laptop-4c",),
        )
        first = generate_fault_plan(["m0", "m1"], seed=7, **kwargs)
        second = generate_fault_plan(["m0", "m1"], seed=7, **kwargs)
        other = generate_fault_plan(["m0", "m1"], seed=8, **kwargs)
        assert first == second
        assert first != other
        with pytest.raises(ValueError, match="crash_rate"):
            generate_fault_plan(["m0"], horizon=10.0, crash_rate=1.5)
        with pytest.raises(ValueError, match="horizon"):
            generate_fault_plan(["m0"], horizon=0.0)

    def test_timeline_expands_and_orders(self):
        plan = FaultPlan(
            events=(
                Straggler(time=2.0, machine="m0", factor=2.0, duration=3.0),
                MachineCrash(time=2.0, machine="m1"),
            )
        )
        timeline = plan.timeline()
        assert [(i.time, i.action) for i in timeline] == [
            (2.0, "straggler-start"),  # plan order breaks the t=2.0 tie
            (2.0, "crash"),
            (5.0, "straggler-end"),
        ]
