"""Tests for the experiment harness (one per table/figure of the paper).

These run reduced configurations to stay fast; the benchmark harness under
``benchmarks/`` regenerates the full-size artefacts.
"""

from __future__ import annotations

import pytest

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments import (
    fig1_threads,
    fig3_strategies,
    fig4_corun_events,
    fig5_gpu_intraop,
    table1_parallelism,
    table2_input_size,
    table3_corun,
    table4_regression,
    table5_hillclimb,
    table6_topops,
    table7_gpu_corun,
)
from repro.experiments.cli import main as cli_main


class TestExperimentRegistry:
    def test_every_paper_artifact_has_an_experiment(self):
        assert set(ALL_EXPERIMENTS) == {
            "fig1", "fig3", "fig4", "fig5",
            "table1", "table2", "table3", "table4", "table5", "table6", "table7",
            # beyond the paper: Table III raised to fleet scale
            "fleet",
        }

    def test_every_experiment_declares_paper_reference(self):
        for module in ALL_EXPERIMENTS.values():
            assert hasattr(module, "PAPER_REFERENCE")
            assert module.PAPER_REFERENCE


class TestMotivationExperiments:
    def test_fig1_optima_below_recommendation(self):
        result = fig1_threads.run(thread_counts=tuple(range(2, 66, 4)))
        for op_type, (threads, _) in result.optima.items():
            assert threads < 64, op_type
        # Ordering of the three operations matches the paper.
        assert (
            result.optima["Conv2DBackpropFilter"][0]
            <= result.optima["Conv2DBackpropInput"][0]
            <= result.optima["Conv2D"][0]
        )
        report = fig1_threads.format_report(result)
        assert "Conv2DBackpropFilter" in report

    def test_table2_optimum_grows_with_input_size(self):
        result = table2_input_size.run(operations=("Conv2DBackpropFilter",))
        small = result.entry("Conv2DBackpropFilter", (32, 8, 8, 384))
        large = result.entry("Conv2DBackpropFilter", (32, 8, 8, 2048))
        assert large.best_threads > small.best_threads
        assert small.performance_variance > large.performance_variance
        assert "Table II" in table2_input_size.format_report(result)

    def test_table3_split_corun_wins(self):
        result = table3_corun.run()
        assert result.split_speedup > result.hyperthreading_speedup >= 0.95
        assert result.split_speedup > 1.2
        assert "Serial execution" in table3_corun.format_report(result)

    def test_table1_recommendation_not_optimal_but_oversubscription_worse(self):
        result = table1_parallelism.run(models=("dcgan",), reduced=True)
        best = max(
            result.speedup("dcgan", inter, intra)
            for inter in table1_parallelism.INTER_OP
            for intra in table1_parallelism.INTRA_OP
        )
        assert best > 1.0
        assert result.speedup("dcgan", 2, 136) < 0.7
        assert "Table I" in table1_parallelism.format_report(result)


class TestModelAccuracyExperiments:
    def test_table5_accuracy_decreases_with_interval(self):
        result = table5_hillclimb.run(models=("dcgan",), intervals=(2, 16), reduced=True)
        assert result.accuracy[("dcgan", 2)] > result.accuracy[("dcgan", 16)]
        assert result.accuracy[("dcgan", 2)] > 0.85
        assert "x=2" in table5_hillclimb.format_report(result)

    def test_table4_empty_regressor_mapping_uses_defaults(self):
        result = table4_regression.run(
            sample_counts=(1,), regressors={}, reduced=True,
            max_train_ops=4, max_test_ops=2,
        )
        assert set(name for name, _ in result.accuracy) == set(
            table4_regression.default_regressor_factories()
        )

    def test_table4_regression_worse_than_hill_climbing(self):
        regressors = {"ols": table4_regression.default_regressor_factories()["ols"],
                      "k_neighbors": table4_regression.default_regressor_factories()["k_neighbors"]}
        table4 = table4_regression.run(
            sample_counts=(4,), regressors=regressors, reduced=True,
            max_train_ops=12, max_test_ops=4,
        )
        table5 = table5_hillclimb.run(models=("dcgan",), intervals=(4,), reduced=True)
        best_regression = max(table4.accuracy.values())
        assert table5.accuracy[("dcgan", 4)] > best_regression
        assert "Table IV" in table4_regression.format_report(table4)


class TestSchedulingExperiments:
    @pytest.fixture(scope="class")
    def fig3(self):
        return fig3_strategies.run(models=("dcgan",), include_manual=True, reduced=True)

    def test_fig3_ours_beats_recommendation_and_matches_manual(self, fig3):
        speedups = fig3.speedups()["dcgan"]
        assert speedups["all_strategies"] > 1.1
        assert speedups["all_strategies"] >= speedups["manual"] * 0.9
        assert "Figure 3" in fig3_strategies.format_report(fig3)

    def test_fig3_increments_not_regressive(self, fig3):
        increments = fig3.increments()["dcgan"]
        assert increments["strategies_1_2_vs_recommendation"] >= 0.98
        assert increments["strategy_3_vs_strategies_1_2"] >= 1.0
        assert increments["strategy_4_vs_strategy_3"] >= 0.95

    def test_fig4_corunning_is_dynamic(self):
        result = fig4_corun_events.run(models=("dcgan",), reduced=True, max_events=2000)
        averages = result.averages()
        assert averages[("dcgan", "with_s4")] >= averages[("dcgan", "without_s4")] * 0.95
        series = result.with_s4["dcgan"]
        assert len(set(series)) > 1  # concurrency varies over the step
        assert "Figure 4" in fig4_corun_events.format_report(result)

    def test_table6_strategies_rarely_hurt_top_ops(self):
        result = table6_topops.run(models=("dcgan",), reduced=True, top_n=5)
        entries = result.for_model("dcgan")
        assert len(entries) == 5
        # A few individual op types may regress slightly (Strategy 2 uses the
        # largest instance's thread count for every instance), but the top
        # operations as a group must improve.
        for entry in entries:
            assert entry.speedup > 0.75
        improved = [entry for entry in entries if entry.speedup >= 1.0]
        assert len(improved) >= 3
        total_rec = sum(entry.recommendation_time for entry in entries)
        total_s12 = sum(entry.strategies_1_2_time for entry in entries)
        assert total_s12 <= total_rec * 1.02
        assert "Table VI" in table6_topops.format_report(result)


class TestGpuExperiments:
    def test_fig5_default_launch_not_optimal(self):
        result = fig5_gpu_intraop.run()
        assert result.default_gap_threads("BiasAdd") > 0.05
        assert result.default_gap_threads("MaxPooling") > 0.05
        assert "Figure 5a" in fig5_gpu_intraop.format_report(result)

    def test_table7_corun_speedups_in_paper_range(self):
        result = table7_gpu_corun.run()
        for op in table7_gpu_corun.PAPER_REFERENCE:
            assert 1.5 < result.speedup(op) <= 2.0
        assert "Table VII" in table7_gpu_corun.format_report(result)


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out and "table7" in out

    def test_unknown_experiment(self, capsys):
        assert cli_main(["nope"]) == 2

    def test_run_single_cheap_experiment(self, capsys, tmp_path, monkeypatch):
        # Keep the CLI's default-on cache out of the repo's .sweep_cache:
        # a stale entry there could otherwise mask model-code edits.
        monkeypatch.setenv("REPRO_SWEEP_CACHE_DIR", str(tmp_path))
        assert cli_main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out

    def test_jobs_and_cache_flags(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        assert cli_main(["table3", "--jobs", "2", "--cache-dir", str(cache_dir)]) == 0
        assert "Table III" in capsys.readouterr().out
        assert any(cache_dir.rglob("*.pkl"))  # results were persisted
        assert cli_main(["table3", "--no-cache"]) == 0
        assert "Table III" in capsys.readouterr().out

    def test_invalid_jobs_rejected(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["table3", "--jobs", "0"])

    def test_forwarding_handles_wrapped_run(self, capsys, monkeypatch, tmp_path):
        """_run_one must inspect signatures, not __code__ (which breaks on
        functools-wrapped run functions)."""
        import functools
        import types

        from repro import experiments as experiments_package
        from repro.experiments import cli, table3_corun

        @functools.wraps(table3_corun.run)
        def wrapped_run(*args, **kwargs):
            wrapped_run.called_with = kwargs
            return table3_corun.run(*args, **kwargs)

        module = types.SimpleNamespace(
            run=wrapped_run,
            format_report=table3_corun.format_report,
            PAPER_REFERENCE=table3_corun.PAPER_REFERENCE,
        )
        monkeypatch.setenv("REPRO_SWEEP_CACHE_DIR", str(tmp_path))
        monkeypatch.setitem(experiments_package.ALL_EXPERIMENTS, "wrapped", module)
        assert cli.main(["wrapped"]) == 0
        assert "Table III" in capsys.readouterr().out
        assert "executor" in wrapped_run.called_with
        assert "reduced" not in wrapped_run.called_with  # run() doesn't take it


class TestExperimentsBenchHarness:
    def test_report_structure_and_gates(self, tmp_path, monkeypatch):
        from benchmarks import experiments_bench

        report = experiments_bench.run_experiments_benchmark(("table3", "fig5"), jobs=2)
        assert report["reports_identical"]
        assert report["phases"]["process-warm"]["tasks_executed"] == 0
        assert report["phases"]["process-warm"]["cache_hits"] > 0
        path = experiments_bench.write_bench_json(report, tmp_path / "bench.json")
        assert path.exists()
        # The gate checker flags a made-up regression.
        bad = dict(report, headline_speedup=1.0)
        assert any("below" in failure for failure in experiments_bench.check_gates(bad))
        broken = dict(report, reports_identical=False, mismatched_experiments=["table3"])
        assert any("diverged" in failure for failure in experiments_bench.check_gates(broken))
        assert "headline speedup" in experiments_bench.format_report(report)
