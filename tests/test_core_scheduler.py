"""Tests for the runtime configuration, interference tracker and scheduler."""

from __future__ import annotations

import pytest

from repro.baselines.tf_default import recommended_policy
from repro.core.config import RuntimeConfig
from repro.core.hill_climbing import HillClimbingModel
from repro.core.interference import InterferenceTracker
from repro.core.oracle import OraclePerformanceModel
from repro.core.scheduler import RuntimeSchedulerPolicy
from repro.execsim.simulator import PlacementKind, StepSimulator
from repro.execsim.standalone import StandaloneRunner
from repro.graph.builder import GraphBuilder
from repro.graph.shapes import TensorShape
from repro.models import build_model


class TestRuntimeConfig:
    def test_defaults_enable_everything(self):
        config = RuntimeConfig()
        assert config.label == "S1+S2+S3+S4"

    def test_ablation_constructors(self):
        assert RuntimeConfig.strategies_1_2().label == "S1+S2"
        assert RuntimeConfig.strategies_1_2_3().label == "S1+S2+S3"
        assert RuntimeConfig.all_strategies().label == "S1+S2+S3+S4"

    def test_with_strategies(self):
        config = RuntimeConfig().with_strategies(s4=False)
        assert config.strategy4_hyperthreading is False
        assert config.strategy3_corun is True

    def test_s2_requires_s1(self):
        with pytest.raises(ValueError):
            RuntimeConfig(strategy1_per_op_concurrency=False, strategy2_stable_concurrency=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            RuntimeConfig(hill_climbing_interval=0)
        with pytest.raises(ValueError):
            RuntimeConfig(corun_candidates=0)
        with pytest.raises(ValueError):
            RuntimeConfig(profiling_noise_sigma=-1)


class TestInterferenceTracker:
    def test_blacklists_bad_pairs(self):
        tracker = InterferenceTracker(threshold=0.5)
        tracker.record("Conv2D", "Mul", 0.2)
        assert tracker.allowed("Conv2D", "Mul")
        tracker.record("Conv2D", "Mul", 0.8)
        assert not tracker.allowed("Conv2D", "Mul")
        assert not tracker.allowed("Mul", "Conv2D")  # symmetric
        assert ("Conv2D", "Mul") in tracker.blacklisted_pairs()

    def test_allowed_with_all(self):
        tracker = InterferenceTracker(threshold=0.3)
        tracker.record("A", "B", 0.9)
        assert not tracker.allowed_with_all("A", ["C", "B"])
        assert tracker.allowed_with_all("A", ["C", "D"])

    def test_observations_and_clear(self):
        tracker = InterferenceTracker()
        tracker.record("A", "B", 0.1)
        tracker.record("B", "A", 0.2)
        assert tracker.observations("A", "B") == (0.1, 0.2)
        tracker.clear()
        assert tracker.observations("A", "B") == ()

    def test_negative_slowdown_clamped(self):
        tracker = InterferenceTracker()
        tracker.record("A", "B", -0.5)
        assert tracker.observations("A", "B") == (0.0,)

    def test_history_is_capped(self):
        tracker = InterferenceTracker(history=4)
        for value in range(10):
            tracker.record("A", "B", value / 100.0)
        observed = tracker.observations("A", "B")
        assert len(observed) == 4
        assert observed == (0.06, 0.07, 0.08, 0.09)

    def test_history_validation(self):
        with pytest.raises(ValueError):
            InterferenceTracker(history=0)
        unbounded = InterferenceTracker(history=None)
        for value in range(300):
            unbounded.record("A", "B", 0.0)
        assert len(unbounded.observations("A", "B")) == 300

    def test_snapshot_merge_shares_knowledge(self):
        left = InterferenceTracker(threshold=0.5)
        left.record("resnet50", "dcgan", 0.9)  # blacklisted on this machine
        left.record("resnet50", "lstm", 0.1)
        right = InterferenceTracker(threshold=0.5)
        right.merge(left.snapshot())
        assert not right.allowed("dcgan", "resnet50")
        assert right.observations("resnet50", "lstm") == (0.1,)
        # Merging a tracker directly works too, and is additive.
        third = InterferenceTracker(threshold=0.5)
        third.record("lstm", "resnet50", 0.2)
        right.merge(third)
        assert right.observations("resnet50", "lstm") == (0.1, 0.2)

    def test_snapshot_is_deterministic(self):
        tracker = InterferenceTracker()
        tracker.record("B", "A", 0.7)
        tracker.record("C", "A", 0.8)
        assert tracker.snapshot() == tracker.snapshot()
        assert tracker.snapshot().num_observations == 2

    def test_mean_slowdown(self):
        tracker = InterferenceTracker()
        assert tracker.mean_slowdown("A", "B") is None
        tracker.record("A", "B", 0.2)
        tracker.record("A", "B", 0.4)
        assert tracker.mean_slowdown("B", "A") == pytest.approx(0.3)

    def test_arbitrary_hashable_keys(self):
        # The same class serves op-type pairs and e.g. (model, batch) pairs.
        tracker = InterferenceTracker(threshold=0.5)
        tracker.record(("resnet50", 32), ("dcgan", 64), 0.9)
        assert not tracker.allowed(("dcgan", 64), ("resnet50", 32))
        assert tracker.allowed(("resnet50", 32), ("resnet50", 32))

    def test_partially_ordered_keys_stay_symmetric(self):
        # frozensets answer False to both a <= b and b <= a: the pair key
        # must still canonicalise identically for both argument orders.
        tracker = InterferenceTracker(threshold=0.5)
        a, b = frozenset({1}), frozenset({2})
        tracker.record(a, b, 0.9)
        assert not tracker.allowed(b, a)
        assert not tracker.allowed(a, b)
        tracker.record(b, a, 0.1)
        assert tracker.observations(a, b) == (0.9, 0.1)


def _wide_graph():
    """One big conv followed by several independent medium/small ops."""
    b = GraphBuilder("wide")
    big = TensorShape((32, 8, 8, 2048))
    mid = TensorShape((32, 8, 8, 384))
    small = TensorShape((32, 1024))
    conv = b.add("Conv2D", inputs=[big], output=big, attrs={"kernel": (3, 3)}, name="bigconv")
    for index in range(4):
        b.add("Conv2DBackpropInput", inputs=[mid, mid], output=mid,
              attrs={"kernel": (3, 3)}, name=f"medium{index}", deps=[conv])
    for index in range(4):
        b.add("Mul", inputs=[small, small], output=small, name=f"small{index}", deps=[conv])
    return b.build()


@pytest.fixture(scope="module")
def oracle_and_graph(knl):
    graph = _wide_graph()
    oracle = OraclePerformanceModel(knl)
    oracle.observe_graph(graph)
    return oracle, graph


class TestRuntimeSchedulerPolicy:
    def test_strategy2_assigns_one_thread_count_per_type(self, knl):
        graph = build_model("resnet50", stage_blocks=(1, 1, 1, 1))
        oracle = OraclePerformanceModel(knl)
        oracle.observe_graph(graph)
        policy = RuntimeSchedulerPolicy(oracle, RuntimeConfig.strategies_1_2())
        policy.on_step_begin(graph, knl)
        by_type: dict[str, set[int]] = {}
        for op in graph:
            assignment = policy.assignment_for(op.name)
            by_type.setdefault(op.op_type, set()).add(assignment.threads)
        assert all(len(threads) == 1 for threads in by_type.values())

    def test_strategy1_without_s2_varies_threads_per_instance(self, knl):
        graph = build_model("resnet50", stage_blocks=(1, 1, 1, 1))
        oracle = OraclePerformanceModel(knl)
        oracle.observe_graph(graph)
        config = RuntimeConfig(strategy2_stable_concurrency=False,
                               strategy3_corun=False, strategy4_hyperthreading=False)
        policy = RuntimeSchedulerPolicy(oracle, config)
        policy.on_step_begin(graph, knl)
        conv_threads = {
            policy.assignment_for(op.name).threads
            for op in graph.instances_of("Conv2DBackpropFilter")
        }
        assert len(conv_threads) > 1

    def test_serial_mode_runs_one_op_at_a_time(self, knl, oracle_and_graph):
        oracle, graph = oracle_and_graph
        policy = RuntimeSchedulerPolicy(oracle, RuntimeConfig.strategies_1_2())
        result = StepSimulator(knl).run_step(graph, policy)
        assert max(result.trace.corunning_series()) == 1

    def test_corun_mode_overlaps_operations(self, knl, oracle_and_graph):
        oracle, graph = oracle_and_graph
        policy = RuntimeSchedulerPolicy(oracle, RuntimeConfig.strategies_1_2_3())
        result = StepSimulator(knl).run_step(graph, policy)
        assert max(result.trace.corunning_series()) >= 2

    def test_corun_beats_serial_strategies(self, knl, oracle_and_graph):
        oracle, graph = oracle_and_graph
        sim = StepSimulator(knl)
        serial = sim.run_step(graph, RuntimeSchedulerPolicy(oracle, RuntimeConfig.strategies_1_2()))
        corun = sim.run_step(graph, RuntimeSchedulerPolicy(oracle, RuntimeConfig.strategies_1_2_3()))
        assert corun.step_time < serial.step_time

    def test_full_runtime_beats_recommendation(self, knl, oracle_and_graph):
        oracle, graph = oracle_and_graph
        sim = StepSimulator(knl)
        ours = sim.run_step(graph, RuntimeSchedulerPolicy(oracle, RuntimeConfig.all_strategies()))
        rec = sim.run_step(graph, recommended_policy(knl))
        assert ours.step_time < rec.step_time

    def test_hyperthread_packing_uses_smt_slots(self, knl, oracle_and_graph):
        oracle, graph = oracle_and_graph
        policy = RuntimeSchedulerPolicy(oracle, RuntimeConfig.all_strategies())
        result = StepSimulator(knl).run_step(graph, policy)
        # The big conv occupies all cores; if any small op was packed onto
        # hyper-threads the trace records it.
        hyper = [r for r in result.trace.records if r.used_hyperthreads]
        dedicated = [r for r in result.trace.records if not r.used_hyperthreads]
        assert len(dedicated) >= len(graph) - 4
        # Packing is opportunistic; when it happens it must be a small op.
        for record in hyper:
            assert record.op_type == "Mul"

    def test_interference_blacklist_prevents_corun(self, knl, oracle_and_graph):
        oracle, graph = oracle_and_graph
        tracker = InterferenceTracker(threshold=0.1)
        # Forbid every pairing involving the medium convs.
        for other in ("Conv2D", "Conv2DBackpropInput", "Mul"):
            tracker.record("Conv2DBackpropInput", other, 1.0)
        policy = RuntimeSchedulerPolicy(
            oracle, RuntimeConfig.strategies_1_2_3(), interference=tracker
        )
        result = StepSimulator(knl).run_step(graph, policy)
        # The medium convs never co-run with each other.
        records = {r.op_name: r for r in result.trace.records}
        mediums = [records[f"medium{i}"] for i in range(4)]
        for a in mediums:
            for b in mediums:
                if a.op_name == b.op_name:
                    continue
                overlap = min(a.finish_time, b.finish_time) - max(a.start_time, b.start_time)
                assert overlap <= 1e-9

    def test_unknown_signature_falls_back_to_all_cores(self, knl, oracle_and_graph):
        _, graph = oracle_and_graph
        empty_oracle = OraclePerformanceModel(knl)  # knows nothing
        policy = RuntimeSchedulerPolicy(empty_oracle, RuntimeConfig.strategies_1_2())
        policy.on_step_begin(graph, knl)
        assignment = policy.assignment_for("bigconv")
        assert assignment.threads == knl.topology.num_cores
