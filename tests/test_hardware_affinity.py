"""Tests for thread placement and the core allocator."""

from __future__ import annotations

import pytest

from repro.hardware.affinity import (
    AffinityMode,
    CoreAllocation,
    CoreAllocator,
    ThreadPlacement,
    prediction_cases,
)


class TestThreadPlacement:
    def test_spread_uses_one_thread_per_tile(self, knl):
        placement = ThreadPlacement.plan(10, AffinityMode.SPREAD, knl.topology)
        assert placement.tiles_used == 10
        assert placement.threads_per_tile == 1
        assert not placement.siblings_share_tile

    def test_shared_packs_two_per_tile(self, knl):
        placement = ThreadPlacement.plan(10, AffinityMode.SHARED, knl.topology)
        assert placement.tiles_used == 5
        assert placement.threads_per_tile == 2
        assert placement.siblings_share_tile

    def test_spread_limited_by_tiles(self, knl):
        with pytest.raises(ValueError):
            ThreadPlacement.plan(35, AffinityMode.SPREAD, knl.topology)

    def test_shared_limited_by_cores(self, knl):
        with pytest.raises(ValueError):
            ThreadPlacement.plan(69, AffinityMode.SHARED, knl.topology)

    def test_positive_thread_count_required(self, knl):
        with pytest.raises(ValueError):
            ThreadPlacement.plan(0, AffinityMode.SPREAD, knl.topology)

    def test_feasible_counts(self, knl):
        spread = ThreadPlacement.feasible_thread_counts(AffinityMode.SPREAD, knl.topology)
        shared = ThreadPlacement.feasible_thread_counts(AffinityMode.SHARED, knl.topology)
        assert spread == tuple(range(1, 35))
        assert shared == tuple(range(2, 69, 2))

    def test_prediction_cases_count_is_68_on_knl(self, knl):
        # Section III-B: 34 spread cases + 34 shared cases.
        assert len(prediction_cases(knl.topology)) == 68


class TestCoreAllocation:
    def test_duplicate_cores_rejected(self):
        with pytest.raises(ValueError):
            CoreAllocation(core_ids=(1, 1))

    def test_tiles(self, knl):
        allocation = CoreAllocation(core_ids=(0, 1, 2))
        assert allocation.tiles(knl.topology) == {0, 1}


class TestCoreAllocator:
    def test_allocate_prefers_whole_tiles(self, knl):
        allocator = CoreAllocator(knl.topology)
        allocation = allocator.allocate(4)
        tiles = allocation.tiles(knl.topology)
        assert len(tiles) == 2  # two whole tiles, not four half tiles

    def test_allocate_and_release_roundtrip(self, knl):
        allocator = CoreAllocator(knl.topology)
        assert allocator.free_cores == 68
        allocation = allocator.allocate(20)
        assert allocator.free_cores == 48
        allocator.release(allocation)
        assert allocator.free_cores == 68

    def test_over_allocation_rejected(self, knl):
        allocator = CoreAllocator(knl.topology)
        allocator.allocate(68)
        with pytest.raises(RuntimeError):
            allocator.allocate(1)

    def test_double_release_rejected(self, knl):
        allocator = CoreAllocator(knl.topology)
        allocation = allocator.allocate(2)
        allocator.release(allocation)
        with pytest.raises(RuntimeError):
            allocator.release(allocation)

    def test_hyperthread_slots_follow_busy_cores(self, knl):
        allocator = CoreAllocator(knl.topology)
        assert allocator.free_hyperthread_cores == 0
        allocator.allocate(10)
        assert allocator.free_hyperthread_cores == 10
        ht = allocator.allocate_hyperthreads(4)
        assert ht.smt_slot == 1
        assert allocator.free_hyperthread_cores == 6

    def test_hyperthread_over_allocation_rejected(self, knl):
        allocator = CoreAllocator(knl.topology)
        allocator.allocate(2)
        with pytest.raises(RuntimeError):
            allocator.allocate_hyperthreads(3)

    def test_release_hyperthreads(self, knl):
        allocator = CoreAllocator(knl.topology)
        allocator.allocate(10)
        ht = allocator.allocate_hyperthreads(5)
        allocator.release(ht)
        assert allocator.free_hyperthread_cores == 10

    def test_reserve_all(self, knl):
        allocator = CoreAllocator(knl.topology)
        allocation = allocator.reserve_all()
        assert allocation.num_cores == 68
        assert allocator.free_cores == 0
        assert allocator.snapshot() == {"free_primary": 0, "free_secondary": 68}

    def test_invalid_requests(self, knl):
        allocator = CoreAllocator(knl.topology)
        with pytest.raises(ValueError):
            allocator.allocate(0)
        with pytest.raises(ValueError):
            allocator.allocate_hyperthreads(0)
