"""Machine zoo: topology invariants, simulator equivalence, cache keys.

Every machine the zoo can hand out must satisfy the structural invariants
the scheduler relies on, the incremental simulator fast path must match
the reference implementation bit-for-bit on non-KNL topologies, and the
sweep cache must key results on the full machine description so two
machines can never serve each other's entries.
"""

from __future__ import annotations

import os

import pytest

from repro.baselines.tf_default import UniformPolicy, default_policy, recommended_policy
from repro.execsim.simulator import StepSimulator
from repro.graph.synthetic import synthetic_graph
from repro.hardware.affinity import (
    AffinityMode,
    CoreAllocator,
    ThreadPlacement,
    prediction_cases,
)
from repro.hardware.gpu import p100_gpu
from repro.hardware.hyperthread import SmtModel
from repro.hardware.knl import knl_machine
from repro.hardware.topology import CoreTopology, Machine
from repro.hardware.zoo import (
    MACHINE_ZOO,
    available_machines,
    describe_zoo,
    get_machine,
    make_machine,
    register_machine,
    resolve_machine,
    zoo_machines,
)
from repro.ops.cost import characterize
from repro.sweep.cache import content_key

ZOO_NAMES = available_machines()

#: Non-KNL machines the equivalence tests exercise (small enough to be fast).
EQUIVALENCE_MACHINES = ("desktop-8c", "cloud-vm-16v", "arm-server-64c", "gpu-node-16c")

#: Machine used by env-parameterised CI runs (`REPRO_TEST_MACHINE=<zoo name>`).
ENV_MACHINE = os.environ.get("REPRO_TEST_MACHINE", "desktop-8c")


class TestZooRegistry:
    def test_knl_is_an_entry(self):
        assert get_machine("knl") == knl_machine()

    def test_available_machines_nonempty(self):
        assert len(ZOO_NAMES) >= 6
        for name in ZOO_NAMES:
            assert isinstance(get_machine(name), Machine)

    def test_unknown_name_raises_with_candidates(self):
        with pytest.raises(KeyError, match="knl"):
            get_machine("cray-1")

    def test_resolve_machine(self):
        assert resolve_machine(None) == knl_machine()
        assert resolve_machine("desktop-8c") == get_machine("desktop-8c")
        machine = get_machine("laptop-4c")
        assert resolve_machine(machine) is machine

    def test_machines_are_distinct(self):
        machines = zoo_machines()
        assert len({m.name for m in machines}) == len(machines)
        assert len(set(machines)) == len(machines)

    def test_register_machine_round_trip(self):
        name = "test-tmp-machine"
        try:
            register_machine(name, lambda: make_machine(name, num_cores=2))
            assert get_machine(name).topology.num_cores == 2
            with pytest.raises(ValueError, match="already registered"):
                register_machine(name, lambda: make_machine(name, num_cores=2))
            register_machine(
                name, lambda: make_machine(name, num_cores=4), overwrite=True
            )
            assert get_machine(name).topology.num_cores == 4
        finally:
            MACHINE_ZOO.pop(name, None)

    def test_register_rejects_non_machine_factory(self):
        with pytest.raises(TypeError):
            register_machine("test-bad", lambda: object())
        assert "test-bad" not in MACHINE_ZOO

    def test_describe_zoo_lists_everything(self):
        text = describe_zoo()
        for name in ZOO_NAMES:
            assert name in text

    def test_gpu_node_carries_a_gpu(self):
        assert get_machine("gpu-node-16c").gpu == p100_gpu()
        assert get_machine("knl").gpu is None


class TestTopologyInvariants:
    """Property tests every zoo machine must satisfy."""

    @pytest.mark.parametrize("name", ZOO_NAMES)
    def test_tile_round_trip(self, name):
        topo = get_machine(name).topology
        for core in range(topo.num_cores):
            tile = topo.tile_of_core(core)
            assert core in topo.cores_of_tile(tile)
        seen: set[int] = set()
        for tile in range(topo.num_tiles):
            cores = topo.cores_of_tile(tile)
            assert len(cores) == topo.cores_per_tile
            assert all(topo.tile_of_core(c) == tile for c in cores)
            seen.update(cores)
        assert seen == set(range(topo.num_cores))

    @pytest.mark.parametrize("name", ZOO_NAMES)
    def test_socket_round_trip(self, name):
        topo = get_machine(name).topology
        seen: set[int] = set()
        for socket in range(topo.num_sockets):
            cores = topo.cores_of_socket(socket)
            assert len(cores) == topo.cores_per_socket
            assert all(topo.socket_of_core(c) == socket for c in cores)
            # Tiles never straddle sockets.
            for core in cores:
                assert set(topo.cores_of_tile(topo.tile_of_core(core))) <= set(cores)
            seen.update(cores)
        assert seen == set(range(topo.num_cores))

    @pytest.mark.parametrize("name", ZOO_NAMES)
    def test_logical_cpu_consistency(self, name):
        topo = get_machine(name).topology
        assert topo.num_logical_cpus == topo.num_cores * topo.smt_per_core
        assert topo.num_tiles * topo.cores_per_tile == topo.num_cores
        assert topo.num_sockets * topo.cores_per_socket == topo.num_cores

    @pytest.mark.parametrize("name", ZOO_NAMES)
    def test_prediction_cases_are_feasible(self, name):
        """Every (threads, affinity) case must produce a valid placement."""
        machine = get_machine(name)
        topo = machine.topology
        cases = prediction_cases(topo)
        assert len(cases) == len(set(cases))
        for threads, affinity in cases:
            placement = ThreadPlacement.plan(threads, affinity, topo)
            assert placement.cores_used <= topo.num_cores
            assert placement.tiles_used <= topo.num_tiles
            assert placement.threads_per_tile <= topo.cores_per_tile

    @pytest.mark.parametrize("name", ZOO_NAMES)
    def test_shared_counts_fill_tiles_evenly(self, name):
        topo = get_machine(name).topology
        shared = ThreadPlacement.feasible_thread_counts(AffinityMode.SHARED, topo)
        assert shared[-1] == topo.num_cores
        assert all(count % topo.cores_per_tile == 0 for count in shared)
        spread = ThreadPlacement.feasible_thread_counts(AffinityMode.SPREAD, topo)
        assert spread == tuple(range(1, topo.num_tiles + 1))

    def test_knl_prediction_cases_unchanged(self):
        """The paper's 68-case space must survive the generalisation."""
        cases = prediction_cases(knl_machine().topology)
        assert len(cases) == 68
        shared = [t for t, a in cases if a is AffinityMode.SHARED]
        assert shared == list(range(2, 69, 2))

    @pytest.mark.parametrize("name", ZOO_NAMES)
    def test_smt_model_covers_topology(self, name):
        machine = get_machine(name)
        assert machine.smt.max_threads_per_core >= machine.topology.smt_per_core


class TestMachineValidation:
    def test_smt_curve_must_cover_hardware_threads(self):
        with pytest.raises(ValueError, match="SmtModel describes"):
            make_machine(
                "bad-smt",
                num_cores=4,
                smt_per_core=4,
                smt_aggregate=(0.0, 1.0, 1.1),
            )

    def test_tiles_must_not_straddle_sockets(self):
        with pytest.raises(ValueError, match="straddle"):
            CoreTopology(num_cores=6, cores_per_tile=2, num_sockets=2)

    def test_cores_divisible_by_sockets(self):
        with pytest.raises(ValueError, match="num_sockets"):
            CoreTopology(num_cores=6, cores_per_tile=1, num_sockets=4)

    def test_per_core_bandwidth_below_ceiling(self):
        with pytest.raises(ValueError, match="ceiling"):
            make_machine(
                "bad-bw", num_cores=2, fast_bandwidth=10e9, per_core_bandwidth=20e9
            )

    def test_gpu_field_is_typed(self):
        machine = get_machine("desktop-8c")
        import dataclasses

        with pytest.raises(TypeError, match="gpu"):
            dataclasses.replace(machine, gpu="p100")


class TestAllocatorSmtGating:
    def test_no_hyperthread_slots_without_smt(self):
        topo = get_machine("arm-server-64c").topology
        allocator = CoreAllocator(topo)
        allocation = allocator.allocate(topo.num_cores)
        assert allocator.free_hyperthread_cores == 0
        with pytest.raises(RuntimeError, match="hyper-thread"):
            allocator.allocate_hyperthreads(1)
        allocator.release(allocation)
        # Partial allocations do not create slots either.
        allocator.allocate(4)
        assert allocator.free_hyperthread_cores == 0

    def test_smt_machines_still_offer_slots(self):
        topo = get_machine("desktop-8c").topology
        allocator = CoreAllocator(topo)
        allocator.allocate(topo.num_cores)
        assert allocator.free_hyperthread_cores == topo.num_cores


class _Partitioned:
    """Minimal partitioned co-run policy for the equivalence sweep."""

    name = "partitioned"

    def __init__(self, ways: int = 3) -> None:
        self.ways = ways

    def on_step_begin(self, graph, machine) -> None:
        self._threads = max(1, machine.num_cores // self.ways)

    def select_launches(self, context):
        from repro.execsim.simulator import LaunchRequest, PlacementKind

        slots = self.ways - len(context.running)
        if slots <= 0:
            return []
        return [
            LaunchRequest(op_name=op.name, threads=self._threads)
            for op in context.ready[:slots]
        ]


class TestSimulatorEquivalenceAcrossZoo:
    """StepSimulator(incremental=True) must match the reference on every
    topology, not just the KNL it was tuned on."""

    TOLERANCE = 1e-9

    @pytest.mark.parametrize("name", EQUIVALENCE_MACHINES)
    @pytest.mark.parametrize("seed", (0, 3))
    def test_incremental_matches_reference(self, name, seed):
        machine = get_machine(name)
        graph = synthetic_graph(60, seed=seed, width=6)
        for policy_factory in (
            lambda: recommended_policy(machine),
            lambda: default_policy(machine),
            lambda: UniformPolicy(max(1, machine.num_cores // 2), 2),
            lambda: _Partitioned(),
        ):
            reference = StepSimulator(machine, incremental=False).run_step(
                graph, policy_factory()
            )
            incremental = StepSimulator(machine).run_step(graph, policy_factory())
            assert incremental.step_time == pytest.approx(
                reference.step_time, rel=self.TOLERANCE
            ), f"{name}: {policy_factory().name} diverged"
            assert len(incremental.trace.events) == len(reference.trace.events)

    def test_env_selected_machine_equivalence(self):
        """CI runs the suite with REPRO_TEST_MACHINE set per zoo machine."""
        machine = get_machine(ENV_MACHINE)
        graph = synthetic_graph(80, seed=1, width=8)
        reference = StepSimulator(machine, incremental=False).run_step(
            graph, recommended_policy(machine)
        )
        incremental = StepSimulator(machine).run_step(
            graph, recommended_policy(machine)
        )
        assert incremental.step_time == pytest.approx(
            reference.step_time, rel=self.TOLERANCE
        )


class TestCacheKeysAcrossMachines:
    def test_machine_descriptions_hash_distinctly(self, conv_op):
        """The same task on two zoo machines must never share a cache key."""
        chars = characterize(conv_op)
        keys = {content_key("task", chars, get_machine(name)) for name in ZOO_NAMES}
        assert len(keys) == len(ZOO_NAMES)

    def test_gpu_and_sockets_enter_the_key(self):
        base = get_machine("desktop-8c")
        import dataclasses

        with_gpu = dataclasses.replace(base, gpu=p100_gpu())
        assert content_key("m", base) != content_key("m", with_gpu)
        topo = dataclasses.replace(base.topology, num_sockets=2)
        two_socket = dataclasses.replace(base, topology=topo)
        assert content_key("m", base) != content_key("m", two_socket)


class TestReviewRegressions:
    def test_default_smt_curve_extends_beyond_reference(self):
        machine = make_machine("smt8", num_cores=4, smt_per_core=8)
        assert machine.smt.max_threads_per_core == 8
        curve = machine.smt.aggregate_throughput
        assert all(b >= a for a, b in zip(curve, curve[1:]))

    def test_zoo_machines_empty_selection_is_empty(self):
        assert zoo_machines(()) == ()
        assert len(zoo_machines()) == len(ZOO_NAMES)

    def test_cli_reports_env_config_errors_cleanly(self, monkeypatch, capsys):
        from repro.experiments.cli import main

        monkeypatch.setenv("REPRO_SWEEP_NO_CACHE", "maybe")
        assert main(["table3"]) == 2
        err = capsys.readouterr().err
        assert "REPRO_SWEEP_NO_CACHE" in err and "Traceback" not in err

    def test_scenario_outcome_reports_zoo_keys(self):
        from repro.api import run_scenario
        from repro.scenarios import Scenario, Workload

        scenario = Scenario(
            "test-label", machine="knl", workloads=(Workload(model="dcgan"),)
        )
        assert run_scenario(scenario).machine == "knl"
        assert (
            run_scenario(scenario, machine="small-knl-8").machine == "small-knl-8"
        )
        assert (
            run_scenario(scenario, machine=get_machine("laptop-4c")).machine
            == "laptop-4c"
        )
