"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.graph.op import OpInstance
from repro.graph.shapes import TensorShape
from repro.hardware.knl import knl_machine, small_knl_machine


@pytest.fixture(scope="session")
def knl():
    """The full 68-core KNL machine model."""
    return knl_machine()


@pytest.fixture(scope="session")
def small_machine():
    """A small (8-core) KNL-like machine for fast simulator tests."""
    return small_knl_machine(8)


def make_conv_op(
    op_type: str = "Conv2D",
    dims: tuple[int, int, int, int] = (32, 8, 8, 384),
    out_channels: int | None = None,
    name: str | None = None,
) -> OpInstance:
    """A convolution-family op with Inception-like shapes."""
    n, h, w, c = dims
    k = out_channels or c
    act = TensorShape((n, h, w, c))
    grad = TensorShape((n, h, w, k))
    attrs = {"kernel": (3, 3), "stride": 1}
    label = name or f"{op_type}/{n}x{h}x{w}x{c}"
    if op_type == "Conv2D":
        return OpInstance(label, op_type, (act,), grad, attrs=attrs)
    if op_type == "Conv2DBackpropFilter":
        return OpInstance(label, op_type, (act, grad), TensorShape((3, 3, c, k)), attrs=attrs)
    if op_type == "Conv2DBackpropInput":
        return OpInstance(label, op_type, (act, grad), act, attrs=attrs)
    raise ValueError(op_type)


def make_elementwise_op(
    op_type: str = "Mul",
    dims: tuple[int, ...] = (32, 8, 8, 384),
    name: str | None = None,
) -> OpInstance:
    shape = TensorShape(dims)
    return OpInstance(name or f"{op_type}/{'x'.join(map(str, dims))}", op_type, (shape, shape), shape)


@pytest.fixture
def conv_op() -> OpInstance:
    return make_conv_op()


@pytest.fixture
def elementwise_op() -> OpInstance:
    return make_elementwise_op()
