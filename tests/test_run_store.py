"""The persistent run store: records, storage discipline, env contract."""

from __future__ import annotations

import dataclasses
import enum
import json
import multiprocessing
import pickle

import pytest

from repro.store import (
    RecordingError,
    RunRecord,
    RunStore,
    StoreIntegrityError,
    configure_store,
    default_store,
    jsonify,
    make_record,
    payload_digest,
    record_run,
    resolve_store,
    run_key,
    store_disabled,
)
from repro.store import store as store_module
from repro.sweep.executor import EnvironmentConfigError
from repro.version import __version__


def sample_record(metric=1.0, *, name="unit", config=None, **kwargs):
    return make_record(
        "test",
        name,
        config=config if config is not None else {"seed": 7},
        payload={"metric": metric},
        **kwargs,
    )


class TestJsonify:
    def test_primitives_pass_through(self):
        assert jsonify(None) is None
        assert jsonify(True) is True
        assert jsonify("x") == "x"
        assert jsonify(3) == 3
        assert jsonify(2.5) == 2.5

    def test_numpy_scalars_collapse(self):
        np = pytest.importorskip("numpy")
        assert jsonify(np.int64(4)) == 4
        assert type(jsonify(np.int64(4))) is int
        assert jsonify(np.float64(0.5)) == 0.5
        assert type(jsonify(np.float64(0.5))) is float

    def test_enum_uses_value(self):
        class Kind(enum.Enum):
            A = "a"

        assert jsonify(Kind.A) == "a"

    def test_dataclass_prefers_to_dict(self):
        @dataclasses.dataclass
        class WithToDict:
            x: int

            def to_dict(self):
                return {"renamed": self.x}

        assert jsonify(WithToDict(3)) == {"renamed": 3}

    def test_dataclass_field_walk_fallback(self):
        @dataclasses.dataclass
        class Plain:
            x: int
            ys: tuple

        assert jsonify(Plain(1, (2, 3))) == {"x": 1, "ys": [2, 3]}

    def test_sets_sort_deterministically(self):
        assert jsonify({3, 1, 2}) == [1, 2, 3]

    def test_non_string_mapping_key_rejected(self):
        with pytest.raises(RecordingError):
            jsonify({1: "x"})

    def test_unencodable_value_rejected(self):
        with pytest.raises(RecordingError):
            jsonify(lambda: None)

    def test_result_is_json_serializable(self):
        value = jsonify({"a": (1, 2), "b": {"c": frozenset({"y", "x"})}})
        assert json.loads(json.dumps(value)) == value


class TestRecordIdentity:
    def test_same_config_same_id(self):
        a = sample_record(1.0)
        b = sample_record(2.0)  # different payload, same identity
        assert a.run_id == b.run_id

    def test_config_change_changes_id(self):
        assert sample_record().run_id != sample_record(config={"seed": 8}).run_id

    def test_name_is_part_of_the_key(self):
        # Two experiments with identical configs must not collide.
        assert (
            run_key("experiment", "fig1", {"reduced": True})
            != run_key("experiment", "table2", {"reduced": True})
        )

    def test_version_is_stored_but_not_identity(self):
        record = sample_record()
        assert record.version == __version__
        assert record.run_id == run_key("test", "unit", record.config)

    def test_digest_excludes_drop_noise_keys(self):
        payload = {"metric": 1.0, "wall_seconds": 9.9}
        assert payload_digest(payload, excludes=("wall_seconds",)) == payload_digest(
            {"metric": 1.0}
        )

    def test_intact_and_tamper_detection(self):
        record = sample_record()
        assert record.intact
        tampered = dataclasses.replace(record, payload={"metric": 99.0})
        assert not tampered.intact

    def test_non_object_config_rejected(self):
        with pytest.raises(RecordingError):
            make_record("test", "unit", config=[1, 2], payload={})


class TestRunStore:
    def test_record_and_get_round_trip(self, tmp_path):
        store = RunStore(tmp_path)
        record = sample_record()
        assert store.record(record) == record.run_id
        assert store.get(record.run_id) == record

    def test_same_identity_overwrites(self, tmp_path):
        store = RunStore(tmp_path)
        store.record(sample_record(1.0, created=1.0))
        run_id = store.record(sample_record(2.0, created=2.0))
        assert len(store) == 1
        assert store.get(run_id).payload == {"metric": 2.0}

    def test_list_and_latest_filters(self, tmp_path):
        store = RunStore(tmp_path)
        store.record(sample_record(name="a", created=1.0))
        store.record(sample_record(name="b", created=2.0))
        assert [r.name for r in store.list_runs()] == ["a", "b"]
        assert store.latest(kind="test").name == "b"
        assert store.latest(name="a").name == "a"
        assert store.latest(kind="other") is None

    def test_prefix_resolution(self, tmp_path):
        store = RunStore(tmp_path)
        record = sample_record()
        store.record(record)
        assert store.resolve(record.run_id[:8]) == record.run_id
        assert store.load(record.run_id[:8]) == record
        with pytest.raises(KeyError, match="at least 4"):
            store.resolve(record.run_id[:3])
        with pytest.raises(KeyError, match="no run matching"):
            store.resolve("ffff" if not record.run_id.startswith("ffff") else "0000")

    def test_ambiguous_prefix_lists_matches(self, tmp_path):
        store = RunStore(tmp_path)
        a = sample_record(name="a")
        b = sample_record(name="b")
        # Force two entries under one shard sharing a 4-char prefix.
        fake_a = dataclasses.replace(a, run_id="abcd" + "0" * 60)
        fake_b = dataclasses.replace(b, run_id="abcd" + "1" * 60)
        store.record(fake_a)
        store.record(fake_b)
        with pytest.raises(KeyError, match="ambiguous"):
            store.resolve("abcd")

    def test_missing_entry_is_key_error(self, tmp_path):
        with pytest.raises(KeyError):
            RunStore(tmp_path).get("0" * 64)

    def test_corrupt_entry_self_heals(self, tmp_path):
        store = RunStore(tmp_path)
        record = sample_record()
        store.record(record)
        path = store._path(record.run_id)
        path.write_bytes(b"not a pickle")
        with pytest.raises(KeyError, match="corrupt"):
            store.get(record.run_id)
        assert not path.exists()

    def test_truncated_entry_self_heals(self, tmp_path):
        store = RunStore(tmp_path)
        record = sample_record()
        store.record(record)
        path = store._path(record.run_id)
        path.write_bytes(path.read_bytes()[:10])
        with pytest.raises(KeyError):
            store.get(record.run_id)
        assert not path.exists()

    def test_foreign_object_self_heals(self, tmp_path):
        store = RunStore(tmp_path)
        run_id = "ab" + "0" * 62
        path = store._path(run_id)
        path.parent.mkdir(parents=True)
        path.write_bytes(pickle.dumps({"not": "a record"}))
        with pytest.raises(KeyError, match="not a run record"):
            store.get(run_id)
        assert not path.exists()

    def test_tampered_payload_raises_and_is_kept(self, tmp_path):
        store = RunStore(tmp_path)
        record = sample_record()
        store.record(record)
        tampered = dataclasses.replace(record, payload={"metric": 99.0})
        path = store._path(record.run_id)
        path.write_bytes(pickle.dumps(tampered, protocol=pickle.HIGHEST_PROTOCOL))
        with pytest.raises(StoreIntegrityError):
            store.get(record.run_id)
        assert path.exists()  # kept for inspection, unlike corruption
        assert store.get(record.run_id, verify=False).payload == {"metric": 99.0}
        # Listings skip tampered entries without removing them.
        assert store.list_runs() and path.exists()

    def test_disabled_store_does_not_write(self, tmp_path):
        store = RunStore(tmp_path, enabled=False)
        assert store.record(sample_record()) is None
        assert len(store) == 0

    def test_clear(self, tmp_path):
        store = RunStore(tmp_path)
        store.record(sample_record(name="a"))
        store.record(sample_record(name="b"))
        assert store.clear() == 2
        assert len(store) == 0


def _concurrent_writer(args):
    root, index = args
    store = RunStore(root)
    record = make_record(
        "test", f"writer-{index}", config={"i": index}, payload={"value": index}
    )
    return store.record(record)


class TestConcurrentWriters:
    def test_parallel_writes_never_tear(self, tmp_path):
        jobs = [(str(tmp_path), i) for i in range(16)]
        with multiprocessing.Pool(4) as pool:
            run_ids = pool.map(_concurrent_writer, jobs)
        store = RunStore(tmp_path)
        assert len(set(run_ids)) == 16
        for run_id in run_ids:
            assert store.get(run_id).intact
        # The same identities hammered concurrently still read back clean.
        same = [(str(tmp_path), 0) for _ in range(8)]
        with multiprocessing.Pool(4) as pool:
            repeated = pool.map(_concurrent_writer, same)
        assert len(set(repeated)) == 1
        assert store.get(repeated[0]).payload == {"value": 0}


class TestEnvironmentContract:
    @pytest.fixture(autouse=True)
    def reset_default(self, monkeypatch):
        monkeypatch.setattr(store_module, "_default_store", None)
        monkeypatch.delenv(store_module.STORE_DIR_ENV, raising=False)
        monkeypatch.delenv(store_module.STORE_DISABLE_ENV, raising=False)

    def test_library_default_is_disabled(self):
        store = default_store()
        assert not store.enabled
        assert resolve_store(None) is None

    def test_store_dir_env_opts_in(self, monkeypatch, tmp_path):
        monkeypatch.setenv(store_module.STORE_DIR_ENV, str(tmp_path))
        store = default_store()
        assert store.enabled and store.root == tmp_path
        assert resolve_store(None) is store

    def test_disable_env_beats_everything(self, monkeypatch, tmp_path):
        monkeypatch.setenv(store_module.STORE_DIR_ENV, str(tmp_path))
        monkeypatch.setenv(store_module.STORE_DISABLE_ENV, "1")
        assert store_disabled()
        assert not default_store().enabled
        assert resolve_store(str(tmp_path)) is None
        assert resolve_store(RunStore(tmp_path)) is None

    @pytest.mark.parametrize("raw", ["maybe", "2", " garbage "])
    def test_disable_env_garbage_raises(self, monkeypatch, raw):
        monkeypatch.setenv(store_module.STORE_DISABLE_ENV, raw)
        with pytest.raises(EnvironmentConfigError):
            store_disabled()
        with pytest.raises(EnvironmentConfigError):
            resolve_store(None)

    @pytest.mark.parametrize("raw", ["0", "false", "no", "off", ""])
    def test_disable_env_falsy_spellings(self, monkeypatch, raw):
        monkeypatch.setenv(store_module.STORE_DISABLE_ENV, raw)
        assert not store_disabled()

    def test_configure_store_opts_in(self, tmp_path):
        configured = configure_store(tmp_path)
        assert configured.enabled
        assert resolve_store(None) is configured
        configure_store(enabled=False)
        assert resolve_store(None) is None

    def test_resolve_store_coercions(self, tmp_path):
        assert resolve_store(False) is None
        opened = resolve_store(str(tmp_path))
        assert isinstance(opened, RunStore) and opened.enabled
        passthrough = RunStore(tmp_path)
        assert resolve_store(passthrough) is passthrough
        assert resolve_store(RunStore(tmp_path, enabled=False)) is None
        with pytest.raises(TypeError):
            resolve_store(42)


class TestRecordRun:
    def test_none_store_is_noop(self):
        assert record_run(None, "test", "x", config={}, payload={}) is None

    def test_records_through_enabled_store(self, tmp_path):
        store = RunStore(tmp_path)
        run_id = record_run(store, "test", "x", config={"a": 1}, payload={"b": 2})
        assert store.get(run_id).payload == {"b": 2}

    def test_unencodable_payload_is_swallowed(self, tmp_path):
        store = RunStore(tmp_path)
        assert (
            record_run(store, "test", "x", config={}, payload={"f": lambda: None})
            is None
        )
        assert len(store) == 0
