"""Tests for the synthetic graph generator and scenario diversity."""

from __future__ import annotations

import pytest

from repro.baselines.tf_default import UniformPolicy, recommended_policy
from repro.execsim.simulator import StepSimulator
from repro.graph.synthetic import MAX_OPS, MIN_OPS, synthetic_graph, synthetic_suite
from repro.graph.traversal import topological_order


class TestSyntheticGraph:
    def test_exact_size(self):
        for size in (100, 257, 500):
            assert len(synthetic_graph(size)) == size

    def test_deterministic_per_seed(self):
        a = synthetic_graph(150, seed=3)
        b = synthetic_graph(150, seed=3)
        assert [op.name for op in a] == [op.name for op in b]
        assert [op.signature for op in a] == [op.signature for op in b]
        assert sorted(a.to_networkx().edges) == sorted(b.to_networkx().edges)

    def test_seeds_differ(self):
        a = synthetic_graph(150, seed=0)
        b = synthetic_graph(150, seed=1)
        assert [op.signature for op in a] != [op.signature for op in b]

    def test_valid_dag_with_branching(self):
        graph = synthetic_graph(300, seed=7)
        graph.validate()
        order = topological_order(graph)
        assert len(order) == 300
        # Layered generation with width > 1 must produce real branching.
        assert graph.num_edges > len(graph)

    def test_mixes_heavy_and_light_ops(self):
        graph = synthetic_graph(400, seed=5)
        types = graph.op_types()
        assert any(t in types for t in ("Conv2D", "MatMul"))
        assert any(t in types for t in ("Mul", "Add", "Relu"))

    def test_size_bounds_enforced(self):
        with pytest.raises(ValueError):
            synthetic_graph(MIN_OPS - 1)
        with pytest.raises(ValueError):
            synthetic_graph(MAX_OPS + 1)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            synthetic_graph(100, width=0)
        with pytest.raises(ValueError):
            synthetic_graph(100, heavy_fraction=1.5)
        with pytest.raises(ValueError):
            synthetic_graph(100, skip_probability=-0.1)

    def test_suite_covers_scaling_range(self):
        suite = synthetic_suite((100, 200), seed=1)
        assert set(suite) == {100, 200}
        assert all(len(g) == size for size, g in suite.items())


class TestSyntheticScenarioDiversity:
    """The generator's graphs must run under every scheduling scenario."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("size", [100, 250])
    def test_runs_under_serial_recommendation(self, knl, size, seed):
        graph = synthetic_graph(size, seed=seed)
        result = StepSimulator(knl).run_step(graph, recommended_policy(knl))
        assert result.step_time > 0
        assert len(result.trace.records) == size

    @pytest.mark.parametrize(
        "intra,inter", [(34, 2), (17, 4), (272, 272)], ids=["inter2", "inter4", "tfdefault"]
    )
    def test_runs_under_corunning_policies(self, knl, intra, inter):
        graph = synthetic_graph(200, seed=11)
        result = StepSimulator(knl).run_step(graph, UniformPolicy(intra, inter))
        assert result.step_time > 0
        assert len(result.trace.records) == 200
        if inter > 1:
            assert max(result.trace.corunning_series()) >= 2

    def test_wide_graphs_corun_more_than_narrow(self, knl):
        narrow = synthetic_graph(150, seed=4, width=2)
        wide = synthetic_graph(150, seed=4, width=16)
        policy = UniformPolicy(17, 8)
        narrow_result = StepSimulator(knl).run_step(narrow, policy)
        wide_result = StepSimulator(knl).run_step(wide, UniformPolicy(17, 8))
        assert max(wide_result.trace.corunning_series()) >= max(
            narrow_result.trace.corunning_series()
        )
