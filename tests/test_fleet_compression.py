"""Round-compression fast path: equivalence, canonical mixes, prewarm.

The compressed fleet simulator batch-advances stable job mixes as
multi-round segments; these tests pin the contract that it is a pure
optimisation — ``FleetSimulator(compressed=True)`` and the seed
``compressed=False`` loop produce byte-identical deterministic outcomes
(``FleetResult.to_dict(include_overhead=False)``) — plus the satellite
guarantees around ``canonical_mix`` signature stability and estimator
memo accounting.
"""

from __future__ import annotations

import json

import pytest

from repro.core.config import RuntimeConfig
from repro.fleet import (
    FleetSimulator,
    Job,
    StepTimeEstimator,
    canonical_mix,
    corun_step_time,
    generate_trace,
)
from repro.fleet.estimates import EstimatorStats
from repro.scenarios import Workload
from repro.sweep import SweepCache, SweepExecutor

SYN_A = Workload(synthetic_ops=24, synthetic_width=4, label="kind-a")
SYN_B = Workload(synthetic_ops=24, synthetic_width=4, heavy_fraction=0.6, label="kind-b")
SYN_C = Workload(synthetic_ops=16, synthetic_width=2, heavy_fraction=0.3, label="kind-c")


def job(name, workload=SYN_A, steps=2, arrival=0.0, seed=0):
    return Job(
        name=name,
        workload=workload,
        num_steps=steps,
        arrival_time=arrival,
        graph_seed=seed,
    )


class FakeEstimator:
    """Deterministic dict-driven estimator (no graph simulation)."""

    def __init__(self, solo, pair_factor=1.5, pair_factors=None):
        self.solo = solo
        self.pair_factor = pair_factor
        self.pair_factors = pair_factors or {}
        self.stats = EstimatorStats()

    def step_time(self, machine_name, jobs):
        jobs = list(jobs)
        self.stats.requests += 1
        if len(jobs) == 1:
            return self.solo[(machine_name, jobs[0].kind)]
        slowest = max(self.solo[(machine_name, j.kind)] for j in jobs)
        kinds = tuple(sorted(j.kind for j in jobs))
        return slowest * self.pair_factors.get(kinds, self.pair_factor)

    def solo_time(self, machine_name, job):
        return self.step_time(machine_name, (job,))

    def prewarm(self, machine_names, jobs, max_corun=1):
        return 0


BASES = {"desktop-8c": 1.0, "laptop-4c": 3.0, "cloud-vm-16v": 2.0, "arm-server-64c": 1.5}


def fake_estimator(machines, pair_factor=1.5, pair_factors=None):
    solo = {}
    for name in machines:
        base = BASES[name]
        solo[(name, "kind-a")] = base
        solo[(name, "kind-b")] = 1.5 * base
        solo[(name, "kind-c")] = 0.7 * base
    return FakeEstimator(solo, pair_factor, pair_factors)


def deterministic_dict(result):
    return json.dumps(result.to_dict(include_overhead=False), sort_keys=True)


def run_both_paths(machines, policy, jobs, *, estimator_kwargs=None, preseed=None):
    """Run one trace through both simulator paths; return the two results."""
    results = []
    for compressed in (False, True):
        sim = FleetSimulator(
            machines,
            policy=policy,
            estimator=fake_estimator(machines, **(estimator_kwargs or {})),
            compressed=compressed,
        )
        if preseed:
            for pair in preseed:
                sim.tracker.record(*pair)
        results.append(sim.run(jobs, prewarm=False))
    return results


class TestCompressionEquivalence:
    @pytest.mark.parametrize(
        "policy", ["first-fit", "load-balanced", "interference-aware"]
    )
    @pytest.mark.parametrize("pair_factor", [1.1, 1.5, 2.5])
    def test_generated_traces_byte_identical(self, policy, pair_factor):
        machines = ["desktop-8c", "laptop-4c", "desktop-8c"]
        for seed in range(4):
            jobs = generate_trace(
                12,
                seed=seed,
                workloads=(SYN_A, SYN_B, SYN_C),
                min_steps=2,
                max_steps=25,
                mean_interarrival=1.5,
            )
            reference, compressed = run_both_paths(
                machines, policy, jobs, estimator_kwargs={"pair_factor": pair_factor}
            )
            assert deterministic_dict(reference) == deterministic_dict(compressed)

    @pytest.mark.parametrize(
        "policy", ["first-fit", "load-balanced", "interference-aware"]
    )
    def test_simultaneous_arrivals_byte_identical(self, policy):
        # Many jobs at t=0 on identical machines keep round boundaries
        # exactly tied across machines for the whole simulation — the
        # worst case for the compressed path's global flush ordering.
        machines = ["desktop-8c"] * 4
        jobs = [
            job(
                f"j{i}",
                workload=(SYN_A if i % 3 else SYN_B),
                steps=4 + (i % 9),
                arrival=0.0,
            )
            for i in range(10)
        ]
        reference, compressed = run_both_paths(
            machines, policy, jobs, estimator_kwargs={"pair_factor": 2.5}
        )
        assert deterministic_dict(reference) == deterministic_dict(compressed)

    def test_long_jobs_compress_to_few_events(self):
        # The whole point: O(total steps) reference events collapse to
        # O(mix changes) while the outcome stays byte-identical.
        # Lightly loaded on purpose: a saturated fleet re-consults the
        # policy every round (queued jobs), which compression must not
        # skip — the fast path pays off on sanely provisioned fleets.
        machines = ["desktop-8c", "laptop-4c", "cloud-vm-16v", "desktop-8c"]
        jobs = generate_trace(
            30,
            seed=3,
            workloads=(SYN_A, SYN_B),
            min_steps=50,
            max_steps=150,
            mean_interarrival=100.0,
        )
        reference, compressed = run_both_paths(machines, "load-balanced", jobs)
        assert deterministic_dict(reference) == deterministic_dict(compressed)
        total_rounds = sum(m.rounds for m in reference.machine_reports)
        assert reference.events_processed > total_rounds  # one per round + arrivals
        assert compressed.events_processed < total_rounds / 5

    def test_preseeded_blacklist_byte_identical(self):
        machines = ["desktop-8c", "laptop-4c"]
        jobs = [
            job("a", steps=6),
            job("b", workload=SYN_B, steps=6),
            job("c", workload=SYN_C, steps=3, arrival=0.5),
        ]
        reference, compressed = run_both_paths(
            machines,
            "interference-aware",
            jobs,
            preseed=[("kind-a", "kind-b", 2.0)],
        )
        assert deterministic_dict(reference) == deterministic_dict(compressed)

    def test_max_corun_three_byte_identical(self):
        # Larger gangs: three residents, pairwise interference records.
        machines = ["desktop-8c", "laptop-4c"]
        jobs = generate_trace(
            10,
            seed=1,
            workloads=(SYN_A, SYN_B, SYN_C),
            min_steps=3,
            max_steps=20,
            mean_interarrival=1.0,
        )
        results = []
        for compressed in (False, True):
            sim = FleetSimulator(
                machines,
                policy="first-fit",
                estimator=fake_estimator(machines, pair_factor=1.3),
                max_corun=3,
                compressed=compressed,
            )
            results.append(sim.run(jobs, prewarm=False))
        assert deterministic_dict(results[0]) == deterministic_dict(results[1])

    def test_real_estimator_pr4_trace_all_policies(self):
        # The acceptance gate: the PR 4 benchmark trace (50 jobs, arrival
        # seed 42, five-machine reference fleet) through the real
        # merged-graph estimator, byte-identical under every policy.
        from repro.api import DEFAULT_FLEET

        jobs = generate_trace(50, seed=42)
        estimator = StepTimeEstimator()  # shared memo across all six runs
        for policy in ("first-fit", "load-balanced", "interference-aware"):
            outcomes = []
            for compressed in (False, True):
                sim = FleetSimulator(
                    DEFAULT_FLEET,
                    policy=policy,
                    estimator=estimator,
                    compressed=compressed,
                )
                outcomes.append(deterministic_dict(sim.run(jobs)))
            assert outcomes[0] == outcomes[1], policy

    def test_compressed_interference_observations_match(self):
        # Not just the blacklist: the full per-pair observation history
        # of the fleet-wide tracker matches the reference loop's.
        machines = ["desktop-8c", "laptop-4c"]
        jobs = generate_trace(
            12,
            seed=5,
            workloads=(SYN_A, SYN_B),
            min_steps=4,
            max_steps=30,
            mean_interarrival=1.0,
        )
        trackers = []
        for compressed in (False, True):
            sim = FleetSimulator(
                machines,
                policy="first-fit",
                estimator=fake_estimator(machines, pair_factor=1.8),
                compressed=compressed,
            )
            sim.run(jobs, prewarm=False)
            trackers.append(sim.tracker.snapshot())
        assert trackers[0] == trackers[1]


class TestCanonicalMixStability:
    def test_ordering_invariance(self):
        jobs = [
            job("a", SYN_A, seed=1),
            job("b", SYN_B, seed=2),
            job("c", SYN_C, seed=3),
        ]
        import itertools

        signatures = {
            canonical_mix(perm) for perm in itertools.permutations(jobs)
        }
        assert len(signatures) == 1

    def test_job_identity_does_not_leak_into_signature(self):
        # Different names, arrivals and step counts, same workload class:
        # one signature (that is what makes estimates reusable).
        first = canonical_mix(
            [job("x", SYN_A, steps=3, arrival=0.0), job("y", SYN_B, steps=9)]
        )
        second = canonical_mix(
            [job("p", SYN_B, steps=1, arrival=7.5), job("q", SYN_A, steps=2)]
        )
        assert first == second

    def test_cross_process_cache_key_equality(self, tmp_path):
        # The signature must hash identically through the sweep cache
        # regardless of construction order and across a process boundary:
        # the second (process-backend) run must be all cache hits.
        entries_fwd = canonical_mix([job("a", SYN_A), job("b", SYN_B)])
        entries_rev = canonical_mix([job("b", SYN_B), job("a", SYN_A)])
        assert entries_fwd == entries_rev
        config = RuntimeConfig()
        cache_dir = tmp_path / "cache"
        with SweepExecutor("serial", cache=SweepCache(cache_dir)) as executor:
            first = executor.map(
                corun_step_time, [(entries_fwd, "laptop-4c", config)]
            )[0]
        with SweepExecutor(
            "process", jobs=1, cache=SweepCache(cache_dir)
        ) as executor:
            second = executor.map(
                corun_step_time, [(entries_rev, "laptop-4c", config)]
            )[0]
            assert executor.stats.cache_hits == 1
        assert first == second

    def test_memo_hits_equal_requested_minus_computed(self):
        # Regression: the estimator traffic reported on a FleetResult
        # must satisfy memo_hits == estimates_requested - estimates_computed,
        # including prewarmed estimates (which count as both).
        machines = ("laptop-4c", "desktop-8c")
        jobs = generate_trace(6, seed=2)
        estimator = StepTimeEstimator()
        sim = FleetSimulator(machines, policy="load-balanced", estimator=estimator)
        result = sim.run(jobs)
        assert result.estimates_requested - result.estimates_computed >= 0
        assert (
            estimator.stats.memo_hits
            == estimator.stats.requests - estimator.stats.computed
        )
        # A rerun is served entirely from the memo: zero new simulations.
        rerun = sim.run(jobs)
        assert rerun.estimates_computed == 0
        assert rerun.estimates_requested - rerun.estimates_computed == (
            rerun.estimates_requested
        )


class TestMixPrewarm:
    def test_prewarm_mixes_covers_every_corun_signature(self):
        estimator = StepTimeEstimator()
        jobs = [job("a", SYN_A), job("b", SYN_B), job("c", SYN_A)]
        # Two distinct classes on one machine: 2 solos + 3 pair multisets.
        computed = estimator.prewarm(["laptop-4c"], jobs, max_corun=2)
        assert computed == 5
        # Every pair estimate is now a memo hit.
        before = estimator.stats.computed
        estimator.step_time("laptop-4c", [jobs[0], jobs[1]])
        estimator.step_time("laptop-4c", [jobs[0], jobs[2]])
        estimator.step_time("laptop-4c", [jobs[1], jobs[1]])
        assert estimator.stats.computed == before

    def test_prewarm_mixes_keeps_simulation_memo_only(self):
        machines = ("laptop-4c", "desktop-8c")
        jobs = generate_trace(8, seed=4, workloads=(SYN_A, SYN_B))
        estimator = StepTimeEstimator()
        sim = FleetSimulator(
            machines, policy="first-fit", estimator=estimator, max_corun=2
        )
        result = sim.run(jobs, prewarm="mixes")
        # Everything the event loop needed was prewarmed: computed equals
        # the full mix closure (2 classes -> 2 solos + 3 pairs, per kind).
        assert result.estimates_requested > result.estimates_computed
        rerun = sim.run(jobs, prewarm="mixes")
        assert rerun.estimates_computed == 0

    def test_prewarm_rejects_bad_max_corun(self):
        with pytest.raises(ValueError):
            StepTimeEstimator().prewarm(["laptop-4c"], [job("a")], max_corun=0)
