"""Tests for the discrete-event step simulator and the contention model."""

from __future__ import annotations

import pytest

from repro.baselines.tf_default import UniformPolicy, recommended_policy
from repro.execsim.contention import RunningOpView, corun_slowdowns, interference_loss
from repro.execsim.events import EventKind
from repro.execsim.simulator import (
    LaunchRequest,
    PlacementKind,
    SchedulingContext,
    StepSimulator,
)
from repro.execsim.standalone import StandaloneConfig, StandaloneRunner
from repro.graph.builder import GraphBuilder
from repro.graph.shapes import TensorShape
from repro.graph.traversal import critical_path_length, serial_time

from tests.conftest import make_conv_op, make_elementwise_op


def build_small_graph() -> "DataflowGraph":  # noqa: F821 - doc only
    """conv -> {mul, bias} -> add, plus an independent conv."""
    b = GraphBuilder("small")
    s = TensorShape((8, 16, 16, 32))
    conv = b.add("Conv2D", inputs=[s], output=s, attrs={"kernel": (3, 3)})
    mul = b.add("Mul", inputs=[s, s], output=s, deps=[conv])
    bias = b.add("BiasAdd", inputs=[s, TensorShape((32,))], output=s, deps=[conv])
    b.add("Add", inputs=[s, s], output=s, deps=[mul, bias])
    b.add("Conv2D", inputs=[s], output=s, attrs={"kernel": (3, 3)}, name="independent")
    return b.build()


class TestStepSimulator:
    def test_all_ops_execute_exactly_once(self, knl):
        graph = build_small_graph()
        sim = StepSimulator(knl)
        result = sim.run_step(graph, recommended_policy(knl))
        assert len(result.trace.records) == len(graph)
        assert {r.op_name for r in result.trace.records} == {op.name for op in graph}

    def test_dependencies_respected(self, knl):
        graph = build_small_graph()
        sim = StepSimulator(knl)
        result = sim.run_step(graph, recommended_policy(knl))
        finish = {r.op_name: r.finish_time for r in result.trace.records}
        start = {r.op_name: r.start_time for r in result.trace.records}
        for op in graph:
            for dep in graph.predecessors(op.name):
                assert start[op.name] >= finish[dep] - 1e-12

    def test_step_time_bounds(self, knl):
        """Makespan lies between the critical path and the serial sum."""
        graph = build_small_graph()
        sim = StepSimulator(knl)
        result = sim.run_step(graph, UniformPolicy(34, 2))
        durations = {r.op_name: r.duration for r in result.trace.records}
        lower = critical_path_length(graph, durations)
        upper = serial_time(graph, durations)
        assert lower - 1e-9 <= result.step_time <= upper + 1e-9

    def test_events_are_consistent(self, knl):
        graph = build_small_graph()
        sim = StepSimulator(knl)
        result = sim.run_step(graph, recommended_policy(knl))
        events = result.trace.events
        assert events[0].kind is EventKind.STEP_BEGIN
        assert events[-1].kind is EventKind.STEP_END
        launches = [e for e in events if e.kind is EventKind.LAUNCH]
        finishes = [e for e in events if e.kind is EventKind.FINISH]
        assert len(launches) == len(finishes) == len(graph)
        times = [e.time for e in events]
        assert times == sorted(times)

    def test_recommendation_runs_serially(self, knl):
        graph = build_small_graph()
        sim = StepSimulator(knl)
        result = sim.run_step(graph, recommended_policy(knl))
        # inter-op = 1: never more than one running operation.
        assert max(result.trace.corunning_series()) == 1

    def test_inter_op_2_coruns(self, knl):
        graph = build_small_graph()
        sim = StepSimulator(knl)
        result = sim.run_step(graph, UniformPolicy(34, 2))
        assert max(result.trace.corunning_series()) >= 2

    def test_deterministic_without_noise(self, knl):
        graph = build_small_graph()
        a = StepSimulator(knl).run_step(graph, recommended_policy(knl)).step_time
        b = StepSimulator(knl).run_step(graph, recommended_policy(knl)).step_time
        assert a == pytest.approx(b)

    def test_noise_changes_durations_but_not_correctness(self, knl):
        graph = build_small_graph()
        sim = StepSimulator(knl, noise_sigma=0.05, seed=1)
        result = sim.run_step(graph, recommended_policy(knl))
        assert len(result.trace.records) == len(graph)

    def test_policy_launching_not_ready_op_rejected(self, knl):
        graph = build_small_graph()

        class BadPolicy:
            name = "bad"

            def on_step_begin(self, graph, machine):
                pass

            def select_launches(self, context: SchedulingContext):
                return [LaunchRequest(op_name="Add_0", threads=4)]

        sim = StepSimulator(knl)
        with pytest.raises(ValueError):
            sim.run_step(graph, BadPolicy())

    def test_lazy_policy_triggers_forced_launches(self, knl):
        """A policy that never launches anything must not deadlock the step."""
        graph = build_small_graph()

        class LazyPolicy:
            name = "lazy"

            def on_step_begin(self, graph, machine):
                pass

            def select_launches(self, context):
                return []

        sim = StepSimulator(knl)
        result = sim.run_step(graph, LazyPolicy())
        assert result.forced_launches == len(graph)
        assert len(result.trace.records) == len(graph)

    def test_speedup_over(self, knl):
        graph = build_small_graph()
        sim = StepSimulator(knl)
        rec = sim.run_step(graph, recommended_policy(knl))
        other = sim.run_step(graph, UniformPolicy(34, 2))
        assert other.speedup_over(rec) == pytest.approx(rec.step_time / other.step_time)


class TestStandaloneRunner:
    def test_measure_matches_sweep(self, knl, conv_op):
        runner = StandaloneRunner(knl)
        sweep = runner.sweep(conv_op)
        threads, affinity, best = runner.best_configuration(conv_op)
        assert sweep[(threads, affinity)].total == pytest.approx(best)

    def test_run_repeats_scale_linearly_without_noise(self, knl, conv_op):
        runner = StandaloneRunner(knl)
        single = runner.run(conv_op, 16)
        thousand = runner.run(conv_op, 16, repeats=1000)
        assert thousand == pytest.approx(single * 1000)

    def test_corun_serial_vs_split(self, knl):
        """Table III behaviour: split-core co-run beats serial execution."""
        runner = StandaloneRunner(knl)
        a = make_conv_op("Conv2DBackpropFilter", (32, 8, 8, 2048), name="a")
        b = make_conv_op("Conv2DBackpropInput", (32, 8, 8, 2048), name="b")
        serial = runner.corun(
            [StandaloneConfig(a, 68), StandaloneConfig(b, 68)], serialize=True
        )
        split = runner.corun([StandaloneConfig(a, 34), StandaloneConfig(b, 34)])
        assert split.step_time < serial.step_time
        speedup = serial.step_time / split.step_time
        assert 1.2 < speedup < 2.0

    def test_corun_hyperthreading_between_serial_and_split(self, knl):
        runner = StandaloneRunner(knl)
        a = make_conv_op("Conv2DBackpropFilter", (32, 8, 8, 2048), name="a")
        b = make_conv_op("Conv2DBackpropInput", (32, 8, 8, 2048), name="b")
        serial = runner.corun(
            [StandaloneConfig(a, 68), StandaloneConfig(b, 68)], serialize=True
        )
        smt = runner.corun(
            [
                StandaloneConfig(a, 68, placement=PlacementKind.DEDICATED),
                StandaloneConfig(b, 68, placement=PlacementKind.HYPERTHREAD),
            ]
        )
        split = runner.corun([StandaloneConfig(a, 34), StandaloneConfig(b, 34)])
        assert split.step_time < smt.step_time <= serial.step_time * 1.05

    def test_duplicate_names_rejected(self, knl, conv_op):
        runner = StandaloneRunner(knl)
        with pytest.raises(ValueError):
            runner.corun([StandaloneConfig(conv_op, 4), StandaloneConfig(conv_op, 4)])

    def test_empty_corun_rejected(self, knl):
        runner = StandaloneRunner(knl)
        with pytest.raises(ValueError):
            runner.corun([])


class TestContentionModel:
    def _view(self, key, cores, threads, *, pinned=True, demand=0.0, mbf=0.0):
        return RunningOpView(
            key=key,
            core_ids=tuple(cores),
            threads=threads,
            bandwidth_demand=demand,
            memory_bound_fraction=mbf,
            memory_bound_char=0.3,
            pinned=pinned,
        )

    def test_single_op_on_dedicated_cores_has_no_slowdown(self, knl):
        views = [self._view("a", range(34), 34)]
        factors = corun_slowdowns(views, knl)
        assert factors["a"] == pytest.approx(1.0, abs=1e-6)

    def test_disjoint_pinned_ops_do_not_slow_each_other(self, knl):
        views = [
            self._view("a", range(0, 34), 34),
            self._view("b", range(34, 68), 34),
        ]
        factors = corun_slowdowns(views, knl)
        assert factors["a"] == pytest.approx(1.0, abs=1e-6)
        assert factors["b"] == pytest.approx(1.0, abs=1e-6)

    def test_core_sharing_slows_both(self, knl):
        views = [
            self._view("a", range(68), 68),
            self._view("b", range(68), 68, pinned=False),
        ]
        factors = corun_slowdowns(views, knl)
        assert factors["a"] > 1.4
        assert factors["b"] > 1.4

    def test_unpinned_pools_pay_more_than_pinned_smt(self, knl):
        pinned = corun_slowdowns(
            [self._view("a", range(68), 68), self._view("b", range(68), 68)], knl
        )
        unpinned = corun_slowdowns(
            [
                self._view("a", range(68), 68, pinned=False),
                self._view("b", range(68), 68, pinned=False),
            ],
            knl,
        )
        assert unpinned["a"] > pinned["a"]

    def test_bandwidth_contention_stretches_memory_bound_ops(self, knl):
        bw = knl.memory.fast_bandwidth
        views = [
            self._view("a", range(0, 34), 34, demand=bw, mbf=0.9),
            self._view("b", range(34, 68), 34, demand=bw, mbf=0.9),
        ]
        factors = corun_slowdowns(views, knl)
        assert factors["a"] > 1.5

    def test_duplicate_keys_rejected(self, knl):
        views = [self._view("a", range(4), 4), self._view("a", range(4, 8), 4)]
        with pytest.raises(ValueError):
            corun_slowdowns(views, knl)

    def test_empty_views(self, knl):
        assert corun_slowdowns([], knl) == {}

    def test_interference_loss(self):
        losses = interference_loss({"a": 1.0}, {"a": 1.4})
        assert losses["a"] == pytest.approx(0.4)
        assert interference_loss({"a": 1.0}, {"a": 0.9})["a"] == 0.0
        with pytest.raises(ValueError):
            interference_loss({"a": 0.0}, {"a": 1.0})
