"""Unit tests for the sweep engine: cache keys, storage, executor backends."""

from __future__ import annotations

import dataclasses

import pytest

from repro.hardware.knl import knl_machine
from repro.ops.characteristics import OpCharacteristics
from repro.sweep import (
    SweepCache,
    SweepExecutor,
    SweepTask,
    UncacheableValue,
    cached_call,
    content_key,
    op_sweep,
    op_sweep_totals,
)
from repro.sweep import executor as executor_module


# Module-level task functions (picklable for the process backend).
def _square(x: int) -> int:
    return x * x


def _pair(x: int, y: int) -> tuple[int, int]:
    return (y, x)


def _total_flops(chars: OpCharacteristics, scale: float) -> float:
    return chars.flops * scale


_CHARS = OpCharacteristics(
    flops=1e9,
    bytes_touched=2e8,
    working_set=5e5,
    serial_fraction=0.02,
    reuse_potential=0.7,
    parallel_grains=4096,
)


class TestContentKey:
    def test_stable_across_equal_values(self):
        a = content_key("task", _total_flops, (_CHARS, 2.0))
        b = content_key(
            "task",
            _total_flops,
            (dataclasses.replace(_CHARS), 2.0),
        )
        assert a == b

    def test_sensitive_to_arguments(self):
        base = content_key("task", _total_flops, (_CHARS, 2.0))
        assert content_key("task", _total_flops, (_CHARS, 3.0)) != base
        changed = dataclasses.replace(_CHARS, flops=2e9)
        assert content_key("task", _total_flops, (changed, 2.0)) != base

    def test_sensitive_to_machine_description(self):
        machine = knl_machine()
        base = content_key("sweep", _CHARS, machine)
        smaller = dataclasses.replace(
            machine, topology=dataclasses.replace(machine.topology, num_cores=34)
        )
        assert content_key("sweep", _CHARS, smaller) != base

    def test_sensitive_to_package_version(self, monkeypatch):
        from repro.sweep import cache as cache_module

        base = content_key("task", _square, (3,))
        monkeypatch.setattr(cache_module, "__version__", "999.0.0")
        assert content_key("task", _square, (3,)) != base

    def test_sensitive_to_function_identity(self):
        assert content_key("task", _square, (3,)) != content_key("task", _pair, (3,))

    def test_rejects_lambdas_and_unknown_objects(self):
        with pytest.raises(UncacheableValue):
            content_key("task", lambda x: x, (1,))
        with pytest.raises(UncacheableValue):
            content_key("task", _square, (object(),))

    def test_rejects_bound_methods(self):
        """A bound method's key would drop the instance state — two caches
        with different roots must not share results."""
        with pytest.raises(UncacheableValue):
            content_key("task", SweepCache("a").lookup, ("k",))


class TestSweepCache:
    def test_roundtrip(self, tmp_path):
        cache = SweepCache(tmp_path)
        key = content_key("task", _square, (4,))
        hit, _ = cache.lookup(key)
        assert not hit
        cache.store(key, {"answer": 16})
        hit, value = cache.lookup(key)
        assert hit and value == {"answer": 16}
        assert len(cache) == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = SweepCache(tmp_path)
        key = content_key("task", _square, (5,))
        cache.store(key, 25)
        path = cache._path(key)
        path.write_bytes(b"not a pickle")
        hit, _ = cache.lookup(key)
        assert not hit
        assert cache.stats.errors == 1
        assert not path.exists()  # dropped, will be rewritten

    def test_disabled_cache_never_stores(self, tmp_path):
        cache = SweepCache(tmp_path, enabled=False)
        key = content_key("task", _square, (6,))
        cache.store(key, 36)
        assert len(cache) == 0
        assert not cache.lookup(key)[0]

    def test_clear(self, tmp_path):
        cache = SweepCache(tmp_path)
        for value in range(3):
            cache.store(content_key("task", _square, (value,)), value)
        assert len(cache) == 3
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_empty_cache_is_truthy(self, tmp_path):
        assert SweepCache(tmp_path)  # `cache or fallback` must keep `cache`


class TestSweepExecutor:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_results_in_input_order(self, backend):
        executor = SweepExecutor(backend, jobs=4)
        args = [(i, i + 1) for i in range(20)]
        assert executor.map(_pair, args) == [(i + 1, i) for i in range(20)]

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_parallel_matches_serial(self, backend):
        serial = SweepExecutor("serial").map(_square, [(i,) for i in range(10)])
        parallel = SweepExecutor(backend, jobs=4).map(_square, [(i,) for i in range(10)])
        assert parallel == serial

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            SweepExecutor("fibers")
        with pytest.raises(ValueError):
            SweepExecutor("serial", jobs=0)

    def test_cache_hits_skip_execution(self, tmp_path):
        first = SweepExecutor("serial", cache=SweepCache(tmp_path))
        assert first.map(_square, [(i,) for i in range(5)]) == [0, 1, 4, 9, 16]
        assert first.stats.executed == 5

        second = SweepExecutor("serial", cache=SweepCache(tmp_path))
        assert second.map(_square, [(i,) for i in range(5)]) == [0, 1, 4, 9, 16]
        assert second.stats.executed == 0
        assert second.stats.cache_hits == 5

    def test_uncacheable_tasks_still_run(self, tmp_path):
        executor = SweepExecutor("serial", cache=SweepCache(tmp_path))
        doubler = lambda x: 2 * x  # noqa: E731 - deliberately unhashable
        assert executor.run([SweepTask(doubler, (21,))]) == [42]
        assert executor.stats.executed == 1
        assert len(executor.cache) == 0

    def test_opt_out_via_cacheable_flag(self, tmp_path):
        executor = SweepExecutor("serial", cache=SweepCache(tmp_path))
        executor.run([SweepTask(_square, (7,), cacheable=False)])
        assert len(executor.cache) == 0

    def test_process_backend_runs_closures_locally(self, tmp_path):
        executor = SweepExecutor("process", jobs=2, cache=SweepCache(tmp_path))
        doubler = lambda x: 2 * x  # noqa: E731
        results = executor.run(
            [SweepTask(_square, (3,)), SweepTask(doubler, (3,)), SweepTask(_square, (4,))]
        )
        assert results == [9, 6, 16]
        assert executor.stats.executed_local >= 1

    def test_worker_exception_propagates(self):
        with SweepExecutor("process", jobs=2) as executor:
            with pytest.raises(ZeroDivisionError):
                executor.map(_divide, [(1, 1), (1, 0)])

    def test_pool_reused_across_batches(self):
        with SweepExecutor("process", jobs=2) as executor:
            executor.map(_square, [(i,) for i in range(4)])
            pool = executor._pool
            assert pool is not None
            executor.map(_square, [(i,) for i in range(4, 8)])
            assert executor._pool is pool
        assert executor._pool is None  # context exit shuts the pool down


def _divide(a: int, b: int) -> float:
    return a / b


class TestDefaultExecutorConfiguration:
    def test_environment_configuration(self, monkeypatch, tmp_path):
        monkeypatch.setattr(executor_module, "_default_executor", None)
        monkeypatch.setenv(executor_module.BACKEND_ENV, "thread")
        monkeypatch.setenv(executor_module.JOBS_ENV, "3")
        monkeypatch.setenv(executor_module.NO_CACHE_ENV, "1")
        executor = executor_module.get_default_executor()
        assert executor.backend == "thread"
        assert executor.jobs == 3
        assert not executor.cache.enabled

    def test_library_default_is_uncached(self, monkeypatch):
        """Without explicit opt-in the default executor must not persist
        anything — otherwise a plain pytest run could later serve stale
        results after model-code edits."""
        monkeypatch.setattr(executor_module, "_default_executor", None)
        for env in (
            executor_module.BACKEND_ENV,
            executor_module.JOBS_ENV,
            executor_module.NO_CACHE_ENV,
        ):
            monkeypatch.delenv(env, raising=False)
        monkeypatch.delenv("REPRO_SWEEP_CACHE_DIR", raising=False)
        assert not executor_module.get_default_executor().cache.enabled

    def test_cache_dir_env_opts_in(self, monkeypatch, tmp_path):
        monkeypatch.setattr(executor_module, "_default_executor", None)
        monkeypatch.delenv(executor_module.NO_CACHE_ENV, raising=False)
        monkeypatch.setenv("REPRO_SWEEP_CACHE_DIR", str(tmp_path))
        executor = executor_module.get_default_executor()
        assert executor.cache.enabled
        assert executor.cache.root == tmp_path

    def test_configure_overrides(self, monkeypatch, tmp_path):
        monkeypatch.setattr(executor_module, "_default_executor", None)
        monkeypatch.delenv(executor_module.BACKEND_ENV, raising=False)
        executor = executor_module.configure(
            backend="thread", jobs=2, cache_dir=tmp_path, cache_enabled=True
        )
        assert executor is executor_module.get_default_executor()
        assert executor.backend == "thread"
        assert executor.cache.enabled
        assert executor.cache.root == tmp_path


class TestSharedTasks:
    def test_op_sweep_matches_direct_call(self):
        machine = knl_machine()
        from repro.execsim.op_runtime import sweep_thread_counts

        assert op_sweep(_CHARS, machine) == sweep_thread_counts(_CHARS, machine)
        totals = op_sweep_totals(_CHARS, machine)
        assert totals == {
            key: b.total for key, b in sweep_thread_counts(_CHARS, machine).items()
        }

    def test_cached_call_memoises(self, tmp_path):
        machine = knl_machine()
        cache = SweepCache(tmp_path)
        first = cached_call(cache, op_sweep_totals, _CHARS, machine)
        assert cache.stats.stores == 1
        second = cached_call(cache, op_sweep_totals, _CHARS, machine)
        assert cache.stats.hits == 1
        assert first == second

    def test_cached_call_without_cache(self):
        machine = knl_machine()
        assert cached_call(None, op_sweep_totals, _CHARS, machine)


class TestAvailableCpus:
    def test_default_jobs_respect_affinity_mask(self):
        """`jobs=None` must follow the process affinity mask, not the
        whole machine (containers/CI often restrict the mask)."""
        assert SweepExecutor("serial").jobs == executor_module.available_cpus()

    def test_available_cpus_matches_sched_getaffinity(self):
        import os

        if hasattr(os, "sched_getaffinity"):
            assert executor_module.available_cpus() == len(os.sched_getaffinity(0))
        else:  # pragma: no cover - macOS/Windows
            assert executor_module.available_cpus() == (os.cpu_count() or 1)


class TestEnvironmentParsing:
    @pytest.mark.parametrize("raw", ["1", "true", "TRUE", " yes ", "On"])
    def test_no_cache_truthy_spellings(self, monkeypatch, raw):
        monkeypatch.setenv(executor_module.NO_CACHE_ENV, raw)
        assert executor_module.no_cache_requested()

    @pytest.mark.parametrize("raw", ["", "0", "false", "No", " OFF "])
    def test_no_cache_falsy_spellings(self, monkeypatch, raw):
        monkeypatch.setenv(executor_module.NO_CACHE_ENV, raw)
        assert not executor_module.no_cache_requested()

    def test_no_cache_unset_is_false(self, monkeypatch):
        monkeypatch.delenv(executor_module.NO_CACHE_ENV, raising=False)
        assert not executor_module.no_cache_requested()

    def test_no_cache_invalid_raises(self, monkeypatch):
        monkeypatch.setenv(executor_module.NO_CACHE_ENV, "maybe")
        with pytest.raises(executor_module.EnvironmentConfigError, match="NO_CACHE"):
            executor_module.no_cache_requested()

    def test_backend_env_is_normalised(self, monkeypatch):
        monkeypatch.setattr(executor_module, "_default_executor", None)
        monkeypatch.setenv(executor_module.BACKEND_ENV, " Thread ")
        monkeypatch.delenv(executor_module.JOBS_ENV, raising=False)
        monkeypatch.delenv(executor_module.NO_CACHE_ENV, raising=False)
        assert executor_module.get_default_executor().backend == "thread"

    def test_backend_env_invalid_raises(self, monkeypatch):
        monkeypatch.setattr(executor_module, "_default_executor", None)
        monkeypatch.setenv(executor_module.BACKEND_ENV, "gpu")
        with pytest.raises(executor_module.EnvironmentConfigError, match="BACKEND"):
            executor_module.get_default_executor()

    @pytest.mark.parametrize("raw", ["two", "1.5", "0", "-3"])
    def test_jobs_env_invalid_raises(self, monkeypatch, raw):
        monkeypatch.setattr(executor_module, "_default_executor", None)
        monkeypatch.delenv(executor_module.BACKEND_ENV, raising=False)
        monkeypatch.delenv(executor_module.NO_CACHE_ENV, raising=False)
        monkeypatch.setenv(executor_module.JOBS_ENV, raw)
        with pytest.raises(executor_module.EnvironmentConfigError, match="JOBS"):
            executor_module.get_default_executor()

    def test_jobs_env_valid(self, monkeypatch):
        monkeypatch.setattr(executor_module, "_default_executor", None)
        monkeypatch.delenv(executor_module.BACKEND_ENV, raising=False)
        monkeypatch.delenv(executor_module.NO_CACHE_ENV, raising=False)
        monkeypatch.setenv(executor_module.JOBS_ENV, " 5 ")
        assert executor_module.get_default_executor().jobs == 5


class TestMixedTypeMapKeys:
    """Regression: dict canonicalisation sorted by repr(key) alone, which
    interleaves mixed-type keys unstably (the repr of a str key sorts
    before or after an int key depending on the digits involved)."""

    def test_sort_groups_by_type(self):
        from repro.sweep.cache import _canonical

        # With repr-only sorting, "0" (repr `'0'`, starting with a quote)
        # sorts before 1 but "2" sorts after 1 — the int/str interleaving
        # depended on the values.  Type-grouped sorting is stable.
        low = _canonical({1: "a", "0": "b"})
        high = _canonical({1: "a", "2": "b"})
        assert [type(k).__name__ for k, _ in low[1]] == ["int", "str"]
        assert [type(k).__name__ for k, _ in high[1]] == ["int", "str"]

    def test_mixed_keys_do_not_collide(self):
        assert content_key("t", {1: "a", "1": "b"}) != content_key(
            "t", {1: "b", "1": "a"}
        )
        assert content_key("t", {True: "a"}) != content_key("t", {1: "a"})

    def test_insertion_order_is_irrelevant(self):
        first = {1: "a", "0": "b", (2,): "c"}
        second = {(2,): "c", "0": "b", 1: "a"}
        assert content_key("t", first) == content_key("t", second)
