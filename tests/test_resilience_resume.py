"""Kill-and-resume gates: an interrupted run, resumed, must produce a
store digest byte-identical to its uninterrupted twin — across loop
modes, policies, faults and admission, including chained interrupts."""

import pytest

from repro.api import run_fleet
from repro.resilience import RunInterrupted, list_checkpoint_runs
from repro.resilience.resume import resume_fleet
from repro.store import RunStore

@pytest.fixture(scope="module", autouse=True)
def shared_estimate_cache(tmp_path_factory):
    """One on-disk estimate cache for every run in this module.

    The matrix replays the same workload dozens of times; without a
    shared cache each run_fleet call recomputes the whole co-run
    estimate table cold, which dominates the module's wall time.  The
    cache is value-identical (estimates are pure functions), so digests
    are unaffected — the determinism assertions below prove it.
    """
    from repro.sweep import executor as sweep_executor

    previous = sweep_executor._default_executor
    sweep_executor.configure(
        cache_dir=tmp_path_factory.mktemp("estimates"), cache_enabled=True
    )
    yield
    sweep_executor._default_executor = previous


#: A small-but-busy stream: faults + admission shedding keep every
#: recovery path (requeue, reject, deadline shed) inside the window.
WORKLOAD = dict(
    num_jobs=100,
    arrival_seed=11,
    mean_interarrival=0.05,
    faults="rolling-churn",
    queue_limit=25,
    deadline=35.0,
)

MODES = {
    "reference": dict(compressed=False),
    "compressed": dict(compressed=True),
    "sharded": dict(compressed=True, shards=2, fleet_backend="thread"),
}


def run_pair(tmp_path, *, policy, mode, interrupt_fraction=0.5):
    """Baseline run, interrupted twin, resumed — returns both digests."""
    store = RunStore(tmp_path / "store")
    root = tmp_path / "ck"
    kw = dict(WORKLOAD, policy=policy, store=store, **MODES[mode])
    baseline = run_fleet(**kw)
    want = store.load(baseline.run_id).digest
    interrupt_at = max(1, int(baseline.events_processed * interrupt_fraction))
    with pytest.raises(RunInterrupted) as excinfo:
        run_fleet(
            **kw,
            checkpoint={"interval": 50, "root": root, "interrupt_after": interrupt_at},
        )
    assert excinfo.value.run_id == baseline.run_id
    resumed = resume_fleet(baseline.run_id, root=root, store=store)
    assert resumed.run_id == baseline.run_id
    return want, store.load(resumed.run_id).digest


@pytest.mark.parametrize("mode", sorted(MODES))
@pytest.mark.parametrize(
    "policy", ["first-fit", "interference-aware", "load-balanced"]
)
def test_resume_is_byte_identical(tmp_path, policy, mode):
    want, got = run_pair(tmp_path, policy=policy, mode=mode)
    assert got == want


def test_double_interrupt_chained_resume(tmp_path):
    """Interrupt at 1/3, resume, interrupt again at 2/3, resume to the end."""
    store = RunStore(tmp_path / "store")
    root = tmp_path / "ck"
    kw = dict(WORKLOAD, policy="interference-aware", store=store, compressed=True)
    baseline = run_fleet(**kw)
    want = store.load(baseline.run_id).digest
    total = baseline.events_processed
    with pytest.raises(RunInterrupted):
        run_fleet(
            **kw,
            checkpoint={"interval": 40, "root": root, "interrupt_after": total // 3},
        )
    with pytest.raises(RunInterrupted):
        resume_fleet(
            baseline.run_id,
            root=root,
            store=store,
            checkpoint={"interval": 40, "interrupt_after": 2 * total // 3},
        )
    resumed = resume_fleet(baseline.run_id, root=root, store=store)
    assert store.load(resumed.run_id).digest == want


def test_completed_run_drops_its_checkpoints(tmp_path):
    root = tmp_path / "ck"
    run_fleet(
        num_jobs=40,
        arrival_seed=3,
        checkpoint={"interval": 25, "root": root},
    )
    assert list_checkpoint_runs(root) == ()


def test_resume_unknown_run_fails_cleanly(tmp_path):
    with pytest.raises(KeyError):
        resume_fleet("feedface", root=tmp_path / "empty")


class TestResumeCLI:
    def run_cli(self, argv, capsys):
        from repro.__main__ import main

        code = main(["resume", *argv])
        return code, capsys.readouterr().out

    def test_lists_resumable_runs(self, tmp_path, capsys):
        root = tmp_path / "ck"
        kw = dict(WORKLOAD, policy="first-fit", store=RunStore(tmp_path / "s"))
        baseline = run_fleet(**kw)
        with pytest.raises(RunInterrupted):
            run_fleet(
                **kw,
                checkpoint={
                    "interval": 50,
                    "root": root,
                    "interrupt_after": baseline.events_processed // 2,
                },
            )
        code, out = self.run_cli(["--root", str(root)], capsys)
        assert code == 0
        assert baseline.run_id in out

        code, out = self.run_cli(
            [baseline.run_id[:8], "--root", str(root), "--store", str(tmp_path / "s")],
            capsys,
        )
        assert code == 0
        assert baseline.run_id[:12] in out
        # The run completed: nothing left to resume.
        assert list_checkpoint_runs(root) == ()

    def test_unknown_run_exits_2(self, tmp_path, capsys):
        code, _ = self.run_cli(
            ["feedface", "--root", str(tmp_path / "none")], capsys
        )
        assert code == 2
