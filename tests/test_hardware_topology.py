"""Tests for the machine topology, memory and cache models."""

from __future__ import annotations

import pytest

from repro.hardware.cache import CacheModel
from repro.hardware.knl import knl_machine, small_knl_machine
from repro.hardware.memory import MemoryHierarchy
from repro.hardware.topology import CoreTopology


class TestCoreTopology:
    def test_knl_counts(self, knl):
        topo = knl.topology
        assert topo.num_cores == 68
        assert topo.num_tiles == 34
        assert topo.num_logical_cpus == 272

    def test_tile_mapping_roundtrip(self, knl):
        topo = knl.topology
        for tile in range(topo.num_tiles):
            for core in topo.cores_of_tile(tile):
                assert topo.tile_of_core(core) == tile

    def test_tile_of_core_bounds(self, knl):
        with pytest.raises(ValueError):
            knl.topology.tile_of_core(68)
        with pytest.raises(ValueError):
            knl.topology.cores_of_tile(34)

    def test_effective_flops_below_peak(self, knl):
        topo = knl.topology
        assert topo.effective_flops_per_core < topo.peak_flops_per_core

    def test_invalid_configurations_rejected(self):
        with pytest.raises(ValueError):
            CoreTopology(num_cores=0)
        with pytest.raises(ValueError):
            CoreTopology(num_cores=7, cores_per_tile=2)
        with pytest.raises(ValueError):
            CoreTopology(compute_efficiency=0.0)

    def test_small_machine_validation(self):
        with pytest.raises(ValueError):
            small_knl_machine(3)
        machine = small_knl_machine(8)
        assert machine.topology.num_cores == 8
        assert machine.topology.num_tiles == 4

    def test_machine_describe_mentions_cores(self, knl):
        assert "68 cores" in knl.describe()


class TestMemoryHierarchy:
    def test_bandwidth_scales_then_saturates(self):
        memory = MemoryHierarchy()
        one = memory.achievable_bandwidth(1)
        many = memory.achievable_bandwidth(68)
        assert one == pytest.approx(memory.per_core_bandwidth)
        assert many == pytest.approx(memory.fast_bandwidth)
        assert memory.achievable_bandwidth(0) == 0.0

    def test_bandwidth_monotone_in_cores(self):
        memory = MemoryHierarchy()
        values = [memory.achievable_bandwidth(n) for n in range(1, 69)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_contended_bandwidth_proportional_split(self):
        memory = MemoryHierarchy()
        half = memory.contended_bandwidth(34, 68)
        assert half == pytest.approx(memory.fast_bandwidth / 2)

    def test_contended_bandwidth_no_contention(self):
        memory = MemoryHierarchy()
        alone = memory.contended_bandwidth(4, 4)
        assert alone == pytest.approx(4 * memory.per_core_bandwidth)

    def test_invalid_inputs(self):
        memory = MemoryHierarchy()
        with pytest.raises(ValueError):
            memory.achievable_bandwidth(-1)
        with pytest.raises(ValueError):
            MemoryHierarchy(fast_bandwidth=0)


class TestCacheModel:
    def test_fit_fraction_bounds(self):
        cache = CacheModel()
        assert cache.fit_fraction(0) == 1.0
        assert cache.fit_fraction(cache.l2_size_per_tile) == pytest.approx(1.0)
        assert 0.0 < cache.fit_fraction(100 * cache.l2_size_per_tile) < 0.1

    def test_reuse_monotone_in_working_set(self):
        cache = CacheModel()
        small = cache.reuse_fraction(
            64 * 1024, siblings_share_tile=False, reuse_potential=0.8
        )
        large = cache.reuse_fraction(
            64 * 1024 * 1024, siblings_share_tile=False, reuse_potential=0.8
        )
        assert small > large

    def test_sibling_sharing_increases_reuse(self):
        cache = CacheModel()
        alone = cache.reuse_fraction(512 * 1024, siblings_share_tile=False, reuse_potential=0.5)
        shared = cache.reuse_fraction(512 * 1024, siblings_share_tile=True, reuse_potential=0.5)
        assert shared > alone

    def test_reuse_never_exceeds_ceiling(self):
        cache = CacheModel()
        reuse = cache.reuse_fraction(1024, siblings_share_tile=True, reuse_potential=1.0)
        assert reuse <= cache.reuse_ceiling

    def test_thrash_penalty(self):
        cache = CacheModel()
        assert cache.thrash_penalty(0) == 1.0
        assert cache.thrash_penalty(4) > cache.thrash_penalty(1)
        with pytest.raises(ValueError):
            cache.thrash_penalty(-1)

    def test_invalid_reuse_potential(self):
        with pytest.raises(ValueError):
            CacheModel().reuse_fraction(1.0, siblings_share_tile=False, reuse_potential=1.5)


class TestSmtModel:
    def test_throughput_monotone_in_threads(self, knl):
        smt = knl.smt
        values = [smt.core_throughput(k) for k in range(0, smt.max_threads_per_core + 1)]
        assert values[0] == 0.0
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_memory_bound_bonus(self, knl):
        smt = knl.smt
        compute = smt.core_throughput(2, memory_bound=0.0)
        memory = smt.core_throughput(2, memory_bound=1.0)
        assert memory > compute

    def test_per_thread_throughput_decreases(self, knl):
        smt = knl.smt
        assert smt.per_thread_throughput(1) == pytest.approx(1.0)
        assert smt.per_thread_throughput(2) < 1.0
        assert smt.per_thread_throughput(0) == 0.0

    def test_corun_share(self, knl):
        smt = knl.smt
        full = smt.corun_share(1, 0)
        shared = smt.corun_share(1, 1)
        assert full == pytest.approx(1.0)
        assert 0.4 < shared < 0.7
