"""Tests for the synthetic hardware-counter simulator."""

from __future__ import annotations

import pytest

from repro.hardware.counters import (
    EVENTS_PER_GROUP,
    SELECTED_FEATURES,
    CounterEvent,
    CounterSimulator,
)


@pytest.fixture
def simulator() -> CounterSimulator:
    return CounterSimulator()


def collect(simulator: CounterSimulator, *, duration: float = 5e-3, seed: int = 0):
    return simulator.collect(
        flops=1e9,
        bytes_from_memory=50e6,
        bytes_total=200e6,
        duration=duration,
        threads=34,
        frequency_hz=1.4e9,
        seed=seed,
    )


class TestCounterSimulator:
    def test_there_are_26_events(self):
        assert len(CounterEvent) == 26

    def test_selected_features_match_paper(self):
        assert CounterEvent.CPU_CYCLES in SELECTED_FEATURES
        assert CounterEvent.LLC_MISSES in SELECTED_FEATURES
        assert CounterEvent.LLC_ACCESSES in SELECTED_FEATURES
        assert CounterEvent.L1_HITS in SELECTED_FEATURES
        assert len(SELECTED_FEATURES) == 4

    def test_sample_covers_all_events(self, simulator):
        sample = collect(simulator)
        assert set(sample.values) == set(CounterEvent)
        assert all(v >= 0 for v in sample.values.values())

    def test_deterministic_given_seed(self, simulator):
        a = collect(simulator, seed=3)
        b = collect(simulator, seed=3)
        assert a.values == b.values

    def test_noise_grows_for_short_ops(self, simulator):
        # The paper's key observation: counter readings of short operations
        # are much less reliable.
        assert simulator.relative_noise(50e-6) > simulator.relative_noise(50e-3)

    def test_relative_noise_rejects_nonpositive_duration(self, simulator):
        with pytest.raises(ValueError):
            simulator.relative_noise(0.0)

    def test_normalised_features_divide_by_instructions(self, simulator):
        sample = collect(simulator)
        normalised = sample.normalized()
        instructions = sample[CounterEvent.INSTRUCTIONS]
        assert normalised[CounterEvent.CPU_CYCLES] == pytest.approx(
            sample[CounterEvent.CPU_CYCLES] / instructions
        )

    def test_feature_vector_order(self, simulator):
        sample = collect(simulator)
        vector = sample.as_feature_vector()
        assert vector.shape == (len(SELECTED_FEATURES),)
        normalised = sample.normalized()
        assert vector[0] == pytest.approx(normalised[SELECTED_FEATURES[0]])

    def test_cycles_scale_with_duration(self, simulator):
        short = collect(simulator, duration=1e-3)
        long = collect(simulator, duration=100e-3)
        assert long[CounterEvent.CPU_CYCLES] > short[CounterEvent.CPU_CYCLES] * 10

    def test_llc_misses_reflect_memory_traffic(self, simulator):
        sample = collect(simulator)
        assert sample[CounterEvent.LLC_MISSES] <= sample[CounterEvent.LLC_ACCESSES] * 1.5

    def test_profiling_steps_required(self, simulator):
        assert simulator.profiling_steps_required(len(CounterEvent)) == -(
            -len(CounterEvent) // EVENTS_PER_GROUP
        )
        assert simulator.profiling_steps_required(len(CounterEvent)) >= 4
        with pytest.raises(ValueError):
            simulator.profiling_steps_required(0)

    def test_invalid_inputs_rejected(self, simulator):
        with pytest.raises(ValueError):
            simulator.collect(
                flops=-1,
                bytes_from_memory=0,
                bytes_total=0,
                duration=1e-3,
                threads=1,
                frequency_hz=1e9,
            )
        with pytest.raises(ValueError):
            simulator.collect(
                flops=1,
                bytes_from_memory=0,
                bytes_total=0,
                duration=1e-3,
                threads=0,
                frequency_hz=1e9,
            )
