"""`python -m repro report verify`: bulk re-hash of stored payloads,
with --heal unlinking corrupt/tampered entries the way get() would."""

import dataclasses
import json
import pickle

import pytest

from repro.api import run_fleet
from repro.store import RunStore
from repro.store.cli import main as report_main


@pytest.fixture(scope="module", autouse=True)
def shared_estimate_cache(tmp_path_factory):
    """Share one estimate cache across this module's run_fleet calls
    (estimates are pure; only the first run computes them cold)."""
    from repro.sweep import executor as sweep_executor

    previous = sweep_executor._default_executor
    sweep_executor.configure(
        cache_dir=tmp_path_factory.mktemp("estimates"), cache_enabled=True
    )
    yield
    sweep_executor._default_executor = previous


@pytest.fixture()
def populated(tmp_path):
    store = RunStore(tmp_path)
    ids = [
        run_fleet(num_jobs=6, arrival_seed=seed, store=store).run_id
        for seed in range(3)
    ]
    return store, ids


def rot(store, run_id):
    store._path(run_id).write_bytes(b"\xba\xdf\x00\x0d")


def tamper(store, run_id):
    path = store._path(run_id)
    record = pickle.loads(path.read_bytes())
    doctored = dataclasses.replace(
        record, payload={**record.payload, "makespan": -1.0}
    )
    path.write_bytes(pickle.dumps(doctored))


class TestStoreVerify:
    def test_clean_store(self, populated):
        store, ids = populated
        report = store.verify()
        assert report["intact"] == len(ids)
        assert report["corrupt"] == report["tampered"] == report["healed"] == []

    def test_buckets_and_heal(self, populated):
        store, ids = populated
        rot(store, ids[0])
        tamper(store, ids[1])
        report = store.verify()
        assert report["corrupt"] == [ids[0]]
        assert report["tampered"] == [ids[1]]
        assert report["intact"] == 1
        assert report["healed"] == []  # dry by default: nothing touched
        assert store._path(ids[0]).exists()

        healed = store.verify(heal=True)
        assert sorted(healed["healed"]) == sorted(ids[:2])
        assert not store._path(ids[0]).exists()
        assert not store._path(ids[1]).exists()
        assert store.verify()["intact"] == 1  # the survivor is untouched


class TestVerifyCLI:
    def cli(self, tmp_path, *argv):
        return report_main(["verify", "--store", str(tmp_path), *argv])

    def test_clean_exit_zero(self, populated, tmp_path, capsys):
        code = self.cli(tmp_path, "--json")
        out = json.loads(capsys.readouterr().out)
        assert code == 0
        assert out["intact"] == 3

    def test_bad_entries_exit_one_until_healed(self, populated, tmp_path, capsys):
        store, ids = populated
        rot(store, ids[0])
        assert self.cli(tmp_path) == 1
        out = capsys.readouterr().out
        assert ids[0][:12] in out

        assert self.cli(tmp_path, "--heal") == 0  # healed: nothing unresolved
        assert self.cli(tmp_path) == 0
