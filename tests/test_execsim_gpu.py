"""Tests for the GPU kernel timing and stream co-running model."""

from __future__ import annotations

import pytest

from repro.execsim.gpu import GpuKernelModel, GpuLaunchConfig
from repro.hardware.gpu import p100_gpu
from repro.ops.cost import characterize

from tests.conftest import make_conv_op, make_elementwise_op


@pytest.fixture(scope="module")
def gpu_model() -> GpuKernelModel:
    return GpuKernelModel(p100_gpu())


@pytest.fixture(scope="module")
def bias_chars():
    return characterize(make_elementwise_op("BiasAdd", (32, 17, 17, 384)))


@pytest.fixture(scope="module")
def conv_chars():
    return characterize(make_conv_op("Conv2D", (32, 17, 17, 384)))


class TestLaunchConfig:
    def test_total_threads(self):
        config = GpuLaunchConfig(256, 56)
        assert config.total_threads == 256 * 56

    def test_validation(self):
        with pytest.raises(ValueError):
            GpuLaunchConfig(0, 56)
        with pytest.raises(ValueError):
            GpuLaunchConfig(256, 0)


class TestKernelTime:
    def test_time_positive(self, gpu_model, bias_chars):
        time = gpu_model.kernel_time(bias_chars, gpu_model.default_config())
        assert 0 < time < 1.0

    def test_default_config_matches_tensorflow(self, gpu_model):
        config = gpu_model.default_config()
        assert config.threads_per_block == 1024
        assert config.num_blocks == 56

    def test_default_not_optimal_for_streaming_kernels(self, gpu_model, bias_chars):
        """Fig. 5a: the default 1024 threads/block loses against the best."""
        sweep = gpu_model.sweep_threads_per_block(bias_chars, (64, 128, 256, 512, 1024))
        best = min(sweep.values())
        default = sweep[1024]
        gap = (default - best) / default
        assert 0.05 < gap < 0.45

    def test_too_few_blocks_underutilise(self, gpu_model, bias_chars):
        sweep = gpu_model.sweep_num_blocks(bias_chars, (14, 56))
        assert sweep[14] > sweep[56]

    def test_best_config_beats_default(self, gpu_model, bias_chars):
        _, best_time = gpu_model.best_config(bias_chars)
        default_time = gpu_model.kernel_time(bias_chars, gpu_model.default_config())
        assert best_time <= default_time

    def test_compute_bound_kernel_dominated_by_flops(self, gpu_model, conv_chars):
        config = gpu_model.default_config()
        time = gpu_model.kernel_time(conv_chars, config)
        compute_floor = conv_chars.flops / gpu_model.gpu.effective_flops
        assert time >= compute_floor


class TestStreamCorun:
    def test_corun_beats_serial(self, gpu_model, conv_chars):
        """Table VII: two streams beat back-to-back execution by 1.7x-2.0x."""
        config, _ = gpu_model.best_config(conv_chars)
        kernels = ((conv_chars, config), (conv_chars, config))
        serial = gpu_model.serial_time(kernels)
        corun = gpu_model.corun_time(kernels)
        speedup = serial / corun
        assert 1.5 < speedup <= 2.0

    def test_stream_utilization_depends_on_memory_boundness(
        self, gpu_model, conv_chars, bias_chars
    ):
        assert gpu_model.stream_utilization(conv_chars) > gpu_model.stream_utilization(bias_chars)

    def test_repeats_scale_linearly(self, gpu_model, bias_chars):
        config = gpu_model.default_config()
        kernels = ((bias_chars, config),)
        assert gpu_model.serial_time(kernels, repeats=10) == pytest.approx(
            10 * gpu_model.serial_time(kernels)
        )
        assert gpu_model.corun_time(kernels, repeats=10) == pytest.approx(
            10 * gpu_model.corun_time(kernels)
        )

    def test_invalid_inputs(self, gpu_model, bias_chars):
        config = gpu_model.default_config()
        with pytest.raises(ValueError):
            gpu_model.serial_time(((bias_chars, config),), repeats=0)
        with pytest.raises(ValueError):
            gpu_model.corun_time((), repeats=1)
