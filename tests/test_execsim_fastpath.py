"""Equivalence of the incremental simulator fast path vs the reference.

``StepSimulator(machine)`` (incremental) and
``StepSimulator(machine, incremental=False)`` (the original from-scratch
implementation) must produce the same step times, traces and event
sequences for every policy family — serial, partitioned co-running,
hyper-thread packing, oversubscribed pools, forced launches and noisy
runs alike.
"""

from __future__ import annotations

import pytest

from repro.baselines.tf_default import UniformPolicy, default_policy, recommended_policy
from repro.core.runtime import TrainingRuntime
from repro.execsim.simulator import LaunchRequest, PlacementKind, StepSimulator
from repro.graph.synthetic import synthetic_graph
from repro.hardware.affinity import AffinityMode
from repro.models import build_model

TOLERANCE = 1e-9


class PartitionedPolicy:
    """Launch up to ``ways`` ready ops on disjoint DEDICATED partitions."""

    def __init__(self, ways: int = 4) -> None:
        self.ways = ways
        self.name = f"partitioned({ways})"

    def on_step_begin(self, graph, machine) -> None:
        self._threads = max(1, machine.num_cores // self.ways)

    def select_launches(self, context):
        slots = self.ways - len(context.running)
        if slots <= 0:
            return []
        return [
            LaunchRequest(
                op_name=op.name,
                threads=self._threads,
                affinity=AffinityMode.SHARED,
                placement=PlacementKind.DEDICATED,
            )
            for op in context.ready[:slots]
        ]


class HyperthreadPackingPolicy:
    """A core-filling op plus small ops packed on free SMT slots."""

    name = "ht-packing"

    def on_step_begin(self, graph, machine) -> None:
        self._num_cores = machine.num_cores

    def select_launches(self, context):
        requests = []
        if not context.any_core_filling_op and context.ready:
            requests.append(
                LaunchRequest(
                    op_name=context.ready[0].name,
                    threads=self._num_cores,
                    placement=PlacementKind.DEDICATED,
                )
            )
            remaining = context.ready[1:]
        else:
            remaining = context.ready
        for op in remaining[:2]:
            if context.free_hyperthread_cores > 0:
                requests.append(
                    LaunchRequest(
                        op_name=op.name,
                        threads=min(8, max(1, context.free_hyperthread_cores)),
                        placement=PlacementKind.HYPERTHREAD,
                    )
                )
        return requests


class LazyPolicy:
    name = "lazy"

    def on_step_begin(self, graph, machine) -> None:
        pass

    def select_launches(self, context):
        return []


def _run_both(machine, graph, make_policy, *, noise_sigma=0.0, seed=0):
    reference = StepSimulator(
        machine, incremental=False, noise_sigma=noise_sigma, seed=seed
    ).run_step(graph, make_policy())
    fast = StepSimulator(
        machine, noise_sigma=noise_sigma, seed=seed
    ).run_step(graph, make_policy())
    return reference, fast


def _assert_same_results(reference, fast):
    assert fast.step_time == pytest.approx(reference.step_time, rel=TOLERANCE)
    assert fast.forced_launches == reference.forced_launches
    ref_records = {r.op_name: r for r in reference.trace.records}
    fast_records = {r.op_name: r for r in fast.trace.records}
    assert set(ref_records) == set(fast_records)
    for name, ref_record in ref_records.items():
        fast_record = fast_records[name]
        assert fast_record.start_time == pytest.approx(
            ref_record.start_time, rel=TOLERANCE, abs=1e-15
        ), name
        assert fast_record.finish_time == pytest.approx(
            ref_record.finish_time, rel=TOLERANCE, abs=1e-15
        ), name
        assert fast_record.threads == ref_record.threads
        assert fast_record.used_hyperthreads == ref_record.used_hyperthreads
    ref_events = [(e.kind, e.op_name, e.corunning, e.busy_cores) for e in reference.trace.events]
    fast_events = [(e.kind, e.op_name, e.corunning, e.busy_cores) for e in fast.trace.events]
    assert fast_events == ref_events


POLICIES = {
    "serial-recommendation": lambda machine: recommended_policy(machine),
    "uniform-inter2": lambda machine: UniformPolicy(34, 2),
    "uniform-inter8": lambda machine: UniformPolicy(17, 8),
    "tf-default": lambda machine: default_policy(machine),
    "partitioned": lambda machine: PartitionedPolicy(4),
    "ht-packing": lambda machine: HyperthreadPackingPolicy(),
}


class TestFastPathEquivalence:
    @pytest.mark.parametrize("policy_name", sorted(POLICIES))
    def test_synthetic_graph_equivalence(self, knl, policy_name):
        graph = synthetic_graph(150, seed=9)
        make = POLICIES[policy_name]
        reference, fast = _run_both(knl, graph, lambda: make(knl))
        _assert_same_results(reference, fast)

    @pytest.mark.parametrize("policy_name", ["serial-recommendation", "uniform-inter8"])
    def test_resnet_equivalence(self, knl, policy_name):
        graph = build_model("resnet50", stage_blocks=(1, 1, 1, 1))
        make = POLICIES[policy_name]
        reference, fast = _run_both(knl, graph, lambda: make(knl))
        _assert_same_results(reference, fast)

    def test_small_machine_equivalence(self, small_machine):
        graph = synthetic_graph(100, seed=2)
        reference, fast = _run_both(
            small_machine, graph, lambda: UniformPolicy(4, 3)
        )
        _assert_same_results(reference, fast)

    def test_noisy_equivalence(self, knl):
        """Same seed => same noise draws => identical noisy results."""
        graph = synthetic_graph(120, seed=5)
        reference, fast = _run_both(
            knl, graph, lambda: UniformPolicy(34, 2), noise_sigma=0.05, seed=17
        )
        _assert_same_results(reference, fast)

    def test_forced_launch_equivalence(self, knl):
        graph = synthetic_graph(100, seed=13)
        reference, fast = _run_both(knl, graph, LazyPolicy)
        assert reference.forced_launches == len(graph)
        _assert_same_results(reference, fast)

    def test_runtime_scheduler_equivalence(self, knl):
        """The paper's own policy (Strategies 1-4) through both paths."""
        graph = build_model("resnet50", stage_blocks=(1, 1, 1, 1))
        runtime = TrainingRuntime(knl)
        model = runtime.profile(graph)
        reference = StepSimulator(knl, incremental=False).run_step(
            graph, runtime.build_policy(model)
        )
        fast = StepSimulator(knl).run_step(graph, runtime.build_policy(model))
        _assert_same_results(reference, fast)
