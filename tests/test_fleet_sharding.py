"""Sharded fleet engine: byte-identity with the single-process path.

The tentpole contract: ``repro.fleet.sharding`` advances disjoint
machine shards independently between fleet-wide synchronisation points
and merges their flush logs deterministically, so
``FleetSimulator(shards=N)`` is byte-identical
(``to_dict(include_overhead=False)`` plus the full fleet
``InterferenceTracker`` snapshot) to the compressed single-process path
for every shard count and backend — across policies, fault plans and
admission control.  The satellites pin shard-count invariance (1, 2, 7
identical), the process-backend worker round-trip, the prewarm
disk-cache dedupe, the run-store digest match, and the constructor
guards.
"""

from __future__ import annotations

import json

import pytest

from repro.fleet import (
    AdmissionController,
    FleetSimulator,
    StepTimeEstimator,
    generate_fault_plan,
    generate_trace,
)
from repro.fleet.estimates import EstimatorStats
from repro.scenarios import Workload
from repro.sweep.cache import SweepCache
from repro.sweep.executor import SweepExecutor

SYN_A = Workload(synthetic_ops=24, synthetic_width=4, label="kind-a")
SYN_B = Workload(synthetic_ops=24, synthetic_width=4, heavy_fraction=0.6, label="kind-b")
SYN_C = Workload(synthetic_ops=16, synthetic_width=2, heavy_fraction=0.3, label="kind-c")

POLICIES = ("first-fit", "load-balanced", "interference-aware")

MACHINES = ["desktop-8c", "laptop-4c", "cloud-vm-16v", "desktop-8c", "arm-server-64c"]


class FakeEstimator:
    """Deterministic dict-driven estimator (no graph simulation)."""

    def __init__(self, solo, pair_factor=1.5):
        self.solo = solo
        self.pair_factor = pair_factor
        self.stats = EstimatorStats()

    def step_time(self, machine_name, jobs):
        jobs = list(jobs)
        self.stats.requests += 1
        if len(jobs) == 1:
            return self.solo[(machine_name, jobs[0].kind)]
        slowest = max(self.solo[(machine_name, j.kind)] for j in jobs)
        return slowest * self.pair_factor

    def solo_time(self, machine_name, job):
        return self.step_time(machine_name, (job,))

    def prewarm(self, machine_names, jobs, max_corun=1):
        return 0


BASES = {"desktop-8c": 1.0, "laptop-4c": 3.0, "cloud-vm-16v": 2.0, "arm-server-64c": 1.5}


def fake_estimator(machines=MACHINES, pair_factor=1.5):
    solo = {}
    for name in set(machines) | set(BASES):
        base = BASES[name]
        solo[(name, "kind-a")] = base
        solo[(name, "kind-b")] = 1.5 * base
        solo[(name, "kind-c")] = 0.7 * base
    return FakeEstimator(solo, pair_factor)


def trace(num_jobs=50, seed=0, **kwargs):
    kwargs.setdefault("workloads", (SYN_A, SYN_B, SYN_C))
    kwargs.setdefault("min_steps", 2)
    kwargs.setdefault("max_steps", 25)
    kwargs.setdefault("mean_interarrival", 1.5)
    return generate_trace(num_jobs, seed=seed, **kwargs)


def deterministic_dict(result):
    return json.dumps(result.to_dict(include_overhead=False), sort_keys=True)


def run_once(
    policy,
    jobs,
    *,
    shards=None,
    shard_backend="serial",
    faults=None,
    admission=None,
    machines=MACHINES,
    estimator=None,
):
    sim = FleetSimulator(
        machines,
        policy=policy,
        estimator=estimator if estimator is not None else fake_estimator(machines),
        compressed=True,
        shards=shards,
        shard_backend=shard_backend,
        admission=admission,
    )
    result = sim.run(jobs, prewarm=False, faults=faults)
    return result, sim.tracker.snapshot()


def fault_plan(jobs, machines=MACHINES, seed=3):
    horizon = max(1.0, jobs[-1].arrival_time * 1.5)
    return generate_fault_plan(
        [f"m{i}" for i in range(len(machines))],
        horizon=horizon,
        seed=seed,
        crash_rate=0.5,
        straggler_rate=0.5,
        preempt_rate=0.3,
        job_names=[job.name for job in jobs],
        join_machines=["laptop-4c"],
    )


ADMISSION = dict(queue_limit=4, deadline=12.0, shed_policy="drop-oldest")


class TestShardedByteIdentity:
    """The acceptance gate: sharded == compressed single-process, byte for
    byte, including the fleet tracker's full snapshot."""

    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("scenario", ("clean", "faults", "admission"))
    def test_fifty_job_trace(self, policy, scenario):
        jobs = trace(50, seed=0)
        faults = fault_plan(jobs) if scenario == "faults" else None
        admission = (
            AdmissionController(**ADMISSION) if scenario == "admission" else None
        )
        base, base_tracker = run_once(
            policy, jobs, faults=faults, admission=admission
        )
        sharded, shard_tracker = run_once(
            policy, jobs, shards=2, faults=faults, admission=admission
        )
        assert deterministic_dict(sharded) == deterministic_dict(base)
        assert shard_tracker == base_tracker

    @pytest.mark.parametrize("shards", (1, 2, 7))
    def test_shard_count_invariance(self, shards):
        jobs = trace(50, seed=11)
        base, base_tracker = run_once("interference-aware", jobs)
        sharded, shard_tracker = run_once(
            "interference-aware", jobs, shards=shards
        )
        assert deterministic_dict(sharded) == deterministic_dict(base)
        assert shard_tracker == base_tracker

    def test_thousand_job_trace(self):
        jobs = trace(1000, seed=5, mean_interarrival=0.8)
        base, base_tracker = run_once("first-fit", jobs)
        sharded, shard_tracker = run_once("first-fit", jobs, shards=4)
        assert deterministic_dict(sharded) == deterministic_dict(base)
        assert shard_tracker == base_tracker

    def test_faults_and_admission_compose(self):
        jobs = trace(50, seed=2)
        plan = fault_plan(jobs, seed=7)
        admission = AdmissionController(**ADMISSION)
        base, base_tracker = run_once(
            "load-balanced", jobs, faults=plan, admission=admission
        )
        sharded, shard_tracker = run_once(
            "load-balanced", jobs, shards=3, faults=plan, admission=admission
        )
        assert deterministic_dict(sharded) == deterministic_dict(base)
        assert shard_tracker == base_tracker


class TestProcessBackend:
    """Shard windows on worker processes: same bytes, worker round-trip
    (machine states, flush logs, completions, estimator memo) included."""

    def test_process_backend_byte_identical(self, tmp_path):
        jobs = trace(16, seed=4)
        machines = MACHINES[:3]
        cache = SweepCache(tmp_path / "cache")
        results = []
        trackers = []
        for shards, backend in ((None, "serial"), (2, "process")):
            executor = SweepExecutor(backend="serial", cache=cache)
            estimator = StepTimeEstimator(executor=executor)
            result, tracker = run_once(
                "interference-aware",
                jobs,
                machines=machines,
                shards=shards,
                shard_backend=backend,
                estimator=estimator,
            )
            results.append(result)
            trackers.append(tracker)
        assert deterministic_dict(results[1]) == deterministic_dict(results[0])
        assert trackers[1] == trackers[0]


class TestPrewarmDedupe:
    """prewarm() dedupes against the shared on-disk estimate cache: a
    warm estimator (fresh memo, same cache root) fills from disk and
    skips the sweep fan-out entirely."""

    def test_second_prewarm_computes_nothing(self, tmp_path):
        jobs = trace(12, seed=0)
        machines = MACHINES[:2]
        cache = SweepCache(tmp_path / "cache")

        cold = StepTimeEstimator(executor=SweepExecutor(backend="serial", cache=cache))
        computed = cold.prewarm([m for m in machines], jobs, max_corun=2)
        assert computed > 0
        assert cold.stats.computed == computed
        assert cold.stats.cache_hits == 0

        warm = StepTimeEstimator(executor=SweepExecutor(backend="serial", cache=cache))
        assert warm.prewarm([m for m in machines], jobs, max_corun=2) == 0
        assert warm.stats.computed == 0
        assert warm.stats.cache_hits == computed
        # The disk hits landed in the memo: step_time replays without
        # touching the executor at all.
        warm.executor = None
        job = jobs[0]
        assert warm.solo_time(machines[0], job) == cold.solo_time(machines[0], job)

    def test_stats_merge(self):
        a = EstimatorStats(requests=5, computed=2, cache_hits=1, cache_misses=1)
        b = EstimatorStats(requests=3, computed=1, cache_hits=2, cache_misses=0)
        a.merge(b)
        assert (a.requests, a.computed, a.cache_hits, a.cache_misses) == (8, 3, 3, 1)
        assert a.memo_hits == 5


class TestRunStoreDigest:
    """Satellite: the shard config is recorded but digest-excluded, so a
    sharded and an unsharded run of the same trace digest-match."""

    def test_sharded_run_digest_matches_unsharded(self, tmp_path):
        from repro.api import run_fleet
        from repro.store import RunStore

        store = RunStore(tmp_path / "store")
        plain = run_fleet(
            num_jobs=12, machines=MACHINES[:2], policy="first-fit", store=store
        )
        sharded = run_fleet(
            num_jobs=12,
            machines=MACHINES[:2],
            policy="first-fit",
            store=store,
            shards=2,
            fleet_backend="serial",
        )
        a = store.load(plain.run_id)
        b = store.load(sharded.run_id)
        assert a.digest == b.digest
        assert "sharding" not in a.config
        assert b.config["sharding"] == {"shards": 2, "backend": "serial"}


class TestGuards:
    def test_shards_require_compressed_path(self):
        with pytest.raises(ValueError, match="compressed"):
            FleetSimulator(MACHINES[:2], shards=2, compressed=False)

    def test_shards_must_be_positive(self):
        with pytest.raises(ValueError):
            FleetSimulator(MACHINES[:2], shards=0)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            FleetSimulator(MACHINES[:2], shards=2, shard_backend="quantum")

    def test_shards_may_exceed_machine_count(self):
        jobs = trace(10, seed=1)
        base, _ = run_once("first-fit", jobs, machines=MACHINES[:2])
        sharded, _ = run_once(
            "first-fit", jobs, machines=MACHINES[:2], shards=5
        )
        assert deterministic_dict(sharded) == deterministic_dict(base)
