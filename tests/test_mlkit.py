"""Tests for the from-scratch regression toolkit."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mlkit import (
    ARDRegression,
    DecisionTreeRegression,
    GradientBoostingRegression,
    KNeighborsRegression,
    LinearRegression,
    MLPRegression,
    PassiveAggressiveRegression,
    RandomForestRegression,
    RidgeRegression,
    SVR,
    StandardScaler,
    TheilSenRegression,
    default_regressors,
    mean_squared_error,
    paper_accuracy,
    r2_score,
)
from repro.utils.seeding import make_rng


def linear_data(n=120, noise=0.05, seed=0):
    rng = make_rng(seed)
    X = rng.uniform(-2, 2, size=(n, 3))
    y = 2.0 * X[:, 0] - 1.5 * X[:, 1] + 0.5 + noise * rng.standard_normal(n)
    return X, y


def nonlinear_data(n=200, seed=0):
    rng = make_rng(seed)
    X = rng.uniform(-2, 2, size=(n, 2))
    y = np.sin(X[:, 0]) + 0.5 * X[:, 1] ** 2 + 0.05 * rng.standard_normal(n)
    return X, y


class TestMetricsAndScaler:
    def test_mse_and_r2(self):
        assert mean_squared_error([1, 2], [1, 2]) == 0.0
        assert r2_score([1, 2, 3], [1, 2, 3]) == pytest.approx(1.0)
        assert paper_accuracy([2.0], [2.0]) == pytest.approx(1.0)

    def test_mse_shape_mismatch(self):
        with pytest.raises(ValueError):
            mean_squared_error([1, 2], [1])

    def test_standard_scaler_roundtrip(self):
        X, _ = linear_data()
        scaler = StandardScaler()
        Xs = scaler.fit_transform(X)
        assert np.allclose(Xs.mean(axis=0), 0, atol=1e-9)
        assert np.allclose(Xs.std(axis=0), 1, atol=1e-9)
        assert np.allclose(scaler.inverse_transform(Xs), X)

    def test_scaler_requires_fit(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform([[1.0, 2.0]])

    def test_scaler_constant_feature(self):
        X = np.ones((10, 2))
        Xs = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(Xs))


class TestLinearFamily:
    def test_ols_recovers_coefficients(self):
        X, y = linear_data(noise=0.0)
        model = LinearRegression().fit(X, y)
        assert model.coef_ == pytest.approx([2.0, -1.5, 0.0], abs=1e-6)
        assert model.intercept_ == pytest.approx(0.5, abs=1e-6)
        assert model.score(X, y) > 0.999

    def test_ridge_shrinks_towards_zero(self):
        X, y = linear_data(noise=0.0)
        ols = LinearRegression().fit(X, y)
        ridge = RidgeRegression(alpha=100.0).fit(X, y)
        assert abs(ridge.coef_[0]) < abs(ols.coef_[0])
        assert ridge.score(X, y) > 0.8

    def test_theil_sen_robust_to_outliers(self):
        X, y = linear_data(noise=0.01, seed=1)
        y_corrupted = y.copy()
        y_corrupted[:5] += 100.0
        tsr = TheilSenRegression(seed=0).fit(X, y_corrupted)
        ols = LinearRegression().fit(X, y_corrupted)
        truth = np.array([2.0, -1.5, 0.0])
        assert np.linalg.norm(tsr.coef_ - truth) < np.linalg.norm(ols.coef_ - truth)

    def test_passive_aggressive_learns_linear_map(self):
        X, y = linear_data(noise=0.01)
        model = PassiveAggressiveRegression(seed=0).fit(X, y)
        assert model.score(X, y) > 0.9

    def test_ard_prunes_irrelevant_features(self):
        rng = make_rng(0)
        X = rng.standard_normal((150, 5))
        y = 3.0 * X[:, 0] + 0.02 * rng.standard_normal(150)
        model = ARDRegression().fit(X, y)
        assert model.score(X, y) > 0.95
        assert 0 in model.relevant_features()
        assert abs(model.coef_[0]) > 10 * abs(model.coef_[3])

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LinearRegression().predict([[1.0, 2.0, 3.0]])

    def test_input_validation(self):
        with pytest.raises(ValueError):
            LinearRegression().fit(np.ones((3, 2)), np.ones(4))
        with pytest.raises(ValueError):
            LinearRegression().fit(np.ones(3), np.ones(3))


class TestTreesAndEnsembles:
    def test_decision_tree_fits_nonlinear_function(self):
        X, y = nonlinear_data()
        model = DecisionTreeRegression(max_depth=8).fit(X, y)
        assert model.score(X, y) > 0.9

    def test_decision_tree_feature_importances_sum_to_one(self):
        X, y = nonlinear_data()
        model = DecisionTreeRegression().fit(X, y)
        assert model.feature_importances_ is not None
        assert model.feature_importances_.sum() == pytest.approx(1.0)

    def test_decision_tree_constant_target(self):
        X = np.arange(20, dtype=float).reshape(-1, 1)
        y = np.full(20, 3.0)
        model = DecisionTreeRegression().fit(X, y)
        assert np.allclose(model.predict(X), 3.0)

    def test_random_forest_beats_single_tree_on_holdout(self):
        X, y = nonlinear_data(n=300, seed=2)
        X_train, y_train = X[:200], y[:200]
        X_test, y_test = X[200:], y[200:]
        tree = DecisionTreeRegression(max_depth=4).fit(X_train, y_train)
        forest = RandomForestRegression(n_estimators=20, max_depth=4, seed=0).fit(
            X_train, y_train
        )
        assert forest.score(X_test, y_test) >= tree.score(X_test, y_test) - 0.05

    def test_gradient_boosting_improves_with_stages(self):
        X, y = nonlinear_data(n=200, seed=3)
        small = GradientBoostingRegression(n_estimators=5, seed=0).fit(X, y)
        large = GradientBoostingRegression(n_estimators=80, seed=0).fit(X, y)
        assert large.score(X, y) > small.score(X, y)
        assert large.n_trees == 80

    def test_hyperparameter_validation(self):
        with pytest.raises(ValueError):
            DecisionTreeRegression(max_depth=0)
        with pytest.raises(ValueError):
            RandomForestRegression(n_estimators=0)
        with pytest.raises(ValueError):
            GradientBoostingRegression(learning_rate=0)


class TestKnnSvrMlp:
    def test_knn_interpolates_locally(self):
        X, y = nonlinear_data()
        model = KNeighborsRegression(n_neighbors=3).fit(X, y)
        assert model.score(X, y) > 0.9

    def test_knn_exact_point_returns_exact_value(self):
        X = np.array([[0.0], [1.0], [2.0]])
        y = np.array([1.0, 2.0, 3.0])
        model = KNeighborsRegression(n_neighbors=2).fit(X, y)
        assert model.predict([[1.0]])[0] == pytest.approx(2.0)

    @pytest.mark.parametrize("kernel", ["linear", "poly", "rbf"])
    def test_svr_kernels_fit_reasonably(self, kernel):
        X, y = linear_data(n=80, noise=0.02)
        model = SVR(kernel=kernel, max_iter=150, seed=0).fit(X, y)
        assert model.score(X, y) > 0.7
        assert model.n_support_ > 0

    def test_svr_invalid_kernel(self):
        with pytest.raises(ValueError):
            SVR(kernel="sigmoid")

    @pytest.mark.parametrize("solver", ["sgd", "adam", "lbfgs"])
    def test_mlp_solvers_fit_linear_data(self, solver):
        X, y = linear_data(n=100, noise=0.02)
        model = MLPRegression(hidden_sizes=(16,), solver=solver, max_iter=200, seed=0).fit(X, y)
        assert model.score(X, y) > 0.8

    def test_mlp_invalid_solver(self):
        with pytest.raises(ValueError):
            MLPRegression(solver="rmsprop")


class TestDefaultRegressors:
    def test_zoo_contains_the_papers_models(self):
        zoo = default_regressors()
        for name in ("gradient_boosting", "k_neighbors", "tsr", "ols", "par",
                     "svr_rbf", "ard", "mlp_adam"):
            assert name in zoo

    def test_every_default_regressor_fits_and_predicts(self):
        X, y = linear_data(n=60)
        for name, model in default_regressors().items():
            model.fit(X, y)
            preds = model.predict(X[:5])
            assert preds.shape == (5,), name
            assert np.all(np.isfinite(preds)), name
