"""repro — reproduction of Liu et al., "Runtime Concurrency Control and
Operation Scheduling for High Performance Neural Network Training"
(IPDPS 2019).

The package is organised in layers:

* :mod:`repro.hardware` — simulated manycore (Intel KNL-like) and GPU
  (P100-like) machine models: topology, caches, memory bandwidth, SMT,
  hardware counters.
* :mod:`repro.graph` — an operation-level dataflow graph (the role
  TensorFlow's graph plays in the paper).
* :mod:`repro.ops` — the operation catalog: per-op-type FLOP / byte /
  scalability characteristics.
* :mod:`repro.models` — NN training-step graph generators (ResNet-50,
  DCGAN, Inception-v3, LSTM).
* :mod:`repro.execsim` — analytic execution-time model and a
  discrete-event simulator for co-running operations.
* :mod:`repro.mlkit` — from-scratch regression models used by the
  regression-based performance model (Table IV).
* :mod:`repro.core` — the paper's contribution: performance models
  (hill climbing and regression based) and the runtime scheduler
  implementing Strategies 1-4.
* :mod:`repro.baselines` — the TensorFlow-recommended configuration and
  exhaustive manual optimisation baselines.
* :mod:`repro.experiments` — one module per table / figure of the paper.
* :mod:`repro.fleet` — interference-aware multi-machine job placement:
  a stream of training jobs over many zoo machines, with pluggable
  placement policies driven by the same predictions and interference
  signals as the single-machine runtime.

Typical entry point::

    from repro import quick_schedule
    result = quick_schedule("resnet50")
    print(result.speedup_vs_recommendation)
"""

from __future__ import annotations

from repro.version import __version__
from repro.api import (
    available_machines,
    available_models,
    available_scenarios,
    build_model_graph,
    default_machine,
    FleetOutcome,
    get_machine,
    get_scenario,
    quick_schedule,
    run_fleet,
    run_scenario,
    ScheduleOutcome,
    ScenarioOutcome,
)

__all__ = [
    "__version__",
    "available_machines",
    "available_models",
    "available_scenarios",
    "build_model_graph",
    "default_machine",
    "get_machine",
    "get_scenario",
    "quick_schedule",
    "run_fleet",
    "run_scenario",
    "FleetOutcome",
    "ScheduleOutcome",
    "ScenarioOutcome",
]
