"""Exhaustive manual tuning of the uniform (intra-op, inter-op) knobs.

The paper's "manual optimization" baseline tries every combination of
uniform intra-op and inter-op parallelism and keeps the fastest one.  It
is not a scalable approach (the search multiplies the training cost) but
it bounds what uniform concurrency control can achieve — the paper's
runtime matches or beats it (Fig. 3d).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.tf_default import UniformPolicy
from repro.execsim.simulator import StepResult, StepSimulator
from repro.graph.dataflow import DataflowGraph
from repro.hardware.topology import Machine


@dataclass(frozen=True)
class ManualSearchResult:
    """Outcome of the exhaustive uniform-parallelism search."""

    best_intra: int
    best_inter: int
    best_time: float
    #: step time for every (intra, inter) combination tried.
    all_results: dict[tuple[int, int], float] = field(default_factory=dict)

    @property
    def configurations_tried(self) -> int:
        return len(self.all_results)


class ManualOptimizer:
    """Grid-search the uniform parallelism configuration on the simulator.

    Parameters
    ----------
    machine:
        Machine model to simulate on.
    intra_candidates / inter_candidates:
        The grid.  Defaults follow the paper's study (Table I uses
        intra ∈ {34, 68, 136} and inter ∈ {1, 2, 4}; the manual optimum
        for some models uses even fewer threads, so smaller intra values
        are included too).
    """

    def __init__(
        self,
        machine: Machine,
        *,
        intra_candidates: tuple[int, ...] | None = None,
        inter_candidates: tuple[int, ...] = (1, 2, 4),
    ) -> None:
        cores = machine.topology.num_cores
        if intra_candidates is None:
            intra_candidates = tuple(
                sorted(
                    {
                        2,
                        4,
                        8,
                        16,
                        max(1, cores // 4),
                        max(1, cores // 2),
                        cores,
                        cores * 2,
                    }
                )
            )
        if not intra_candidates or not inter_candidates:
            raise ValueError("candidate grids must be non-empty")
        if any(i < 1 for i in intra_candidates) or any(i < 1 for i in inter_candidates):
            raise ValueError("candidates must be positive")
        self.machine = machine
        self.intra_candidates = tuple(intra_candidates)
        self.inter_candidates = tuple(inter_candidates)

    def search(
        self,
        graph: DataflowGraph,
        *,
        simulator: StepSimulator | None = None,
    ) -> ManualSearchResult:
        """Run one step per configuration and return the best."""
        sim = simulator if simulator is not None else StepSimulator(self.machine)
        results: dict[tuple[int, int], float] = {}
        for intra in self.intra_candidates:
            for inter in self.inter_candidates:
                policy = UniformPolicy(intra, inter)
                outcome = sim.run_step(graph, policy, step_name=f"manual-{intra}-{inter}")
                results[(intra, inter)] = outcome.step_time
        (best_intra, best_inter), best_time = min(results.items(), key=lambda kv: kv[1])
        return ManualSearchResult(
            best_intra=best_intra,
            best_inter=best_inter,
            best_time=best_time,
            all_results=results,
        )

    def best_step(
        self,
        graph: DataflowGraph,
        *,
        simulator: StepSimulator | None = None,
    ) -> StepResult:
        """Convenience: run the search and re-simulate the winning configuration."""
        sim = simulator if simulator is not None else StepSimulator(self.machine)
        result = self.search(graph, simulator=sim)
        policy = UniformPolicy(result.best_intra, result.best_inter, label="manual-optimum")
        return sim.run_step(graph, policy, step_name="manual-optimum")
