"""TensorFlow-style uniform concurrency control.

TensorFlow lets the user set two knobs before training starts:

* ``intra_op_parallelism_threads`` — every operation is parallelised with
  this many threads, regardless of its scalability;
* ``inter_op_parallelism_threads`` — how many operations may run
  concurrently; ready operations are dispatched first-in-first-out.

The performance guide recommends intra = number of physical cores and
inter = number of sockets (68 and 1 on the paper's KNL node); the
out-of-the-box default is one thread per *logical* CPU for both (272 on
KNL), which oversubscribes the chip badly.
"""

from __future__ import annotations

from repro.execsim.simulator import (
    LaunchRequest,
    PlacementKind,
    SchedulingContext,
)
from repro.graph.dataflow import DataflowGraph
from repro.graph.traversal import topological_order
from repro.hardware.affinity import AffinityMode
from repro.hardware.topology import Machine


class UniformPolicy:
    """Fixed (intra-op, inter-op) parallelism with FIFO dispatch.

    Operations become ready as dependencies resolve and are launched in
    topological-FIFO order, at most ``inter_op`` at a time, each with
    ``intra_op`` threads on the shared thread pool (all physical cores).
    """

    def __init__(self, intra_op: int, inter_op: int = 1, *, label: str | None = None) -> None:
        if intra_op < 1 or inter_op < 1:
            raise ValueError("intra_op and inter_op must be positive")
        self.intra_op = intra_op
        self.inter_op = inter_op
        self.name = label or f"uniform(intra={intra_op}, inter={inter_op})"
        self._fifo_rank: dict[str, int] = {}

    def on_step_begin(self, graph: DataflowGraph, machine: Machine) -> None:
        # FIFO order approximated by a deterministic topological order:
        # operations that become ready earlier sit earlier in this order.
        self._fifo_rank = {name: i for i, name in enumerate(topological_order(graph))}

    def select_launches(self, context: SchedulingContext) -> list[LaunchRequest]:
        slots = self.inter_op - len(context.running)
        if slots <= 0 or not context.ready:
            return []
        ready_fifo = sorted(context.ready, key=lambda op: self._fifo_rank.get(op.name, 0))
        requests: list[LaunchRequest] = []
        for op in ready_fifo[:slots]:
            # The uniform thread pool spans every physical core; when
            # inter_op > 1 the co-running operations share it (and with the
            # 272-thread default they oversubscribe it), which is exactly
            # what PlacementKind.OVERSUBSCRIBED models.
            placement = (
                PlacementKind.DEDICATED
                if self.inter_op == 1 and self.intra_op <= context.machine.num_cores
                else PlacementKind.OVERSUBSCRIBED
            )
            requests.append(
                LaunchRequest(
                    op_name=op.name,
                    threads=self.intra_op,
                    affinity=AffinityMode.SHARED,
                    placement=placement,
                )
            )
        return requests


def recommended_policy(machine: Machine) -> UniformPolicy:
    """The TensorFlow performance-guide recommendation for ``machine``.

    Intra-op = number of physical cores, inter-op = number of sockets
    (one on the paper's platform; the zoo's dual-socket servers get two).
    This is the baseline all speedups in the paper (and in our
    experiments) are measured against.
    """
    return UniformPolicy(
        intra_op=machine.topology.num_cores,
        inter_op=machine.topology.num_sockets,
        label="recommendation",
    )


def default_policy(machine: Machine) -> UniformPolicy:
    """TensorFlow's out-of-the-box default: one thread per logical CPU for
    both intra-op and inter-op parallelism (272 on KNL)."""
    logical = machine.topology.num_logical_cpus
    return UniformPolicy(intra_op=logical, inter_op=logical, label="tf-default")
