"""Baseline schedulers the paper compares against.

* :class:`~repro.baselines.tf_default.UniformPolicy` — TensorFlow's
  behaviour: a fixed, user-chosen (intra-op, inter-op) parallelism applied
  uniformly to every operation, FIFO order on the ready queue.
* :func:`~repro.baselines.tf_default.recommended_policy` — the TensorFlow
  performance-guide recommendation (intra = number of physical cores,
  inter = number of sockets), the paper's baseline for every speedup.
* :func:`~repro.baselines.tf_default.default_policy` — TensorFlow's
  out-of-the-box default (intra = inter = number of logical CPUs), which
  the paper notes is more than 10x slower than the recommendation.
* :class:`~repro.baselines.manual_opt.ManualOptimizer` — exhaustive search
  over uniform (intra, inter) combinations, the "manual optimization" of
  Fig. 3(d).
"""

from repro.baselines.tf_default import (
    UniformPolicy,
    default_policy,
    recommended_policy,
)
from repro.baselines.manual_opt import ManualOptimizer, ManualSearchResult

__all__ = [
    "UniformPolicy",
    "default_policy",
    "recommended_policy",
    "ManualOptimizer",
    "ManualSearchResult",
]
