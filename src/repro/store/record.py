"""Run records: the unit the persistent run store keeps.

A :class:`RunRecord` freezes one invocation — `run_fleet`, a scenario,
an experiment, a benchmark section — as three JSON-ready blocks:

* ``config``: everything needed to reproduce the run (machines, policy,
  arrival/fault/admission specs, seeds).  The record's identity
  (:func:`run_key`) is the content hash of ``(kind, name, config)``, so
  re-running the same configuration overwrites its record (latest wins)
  while any config change lands a new one.
* ``payload``: the full result history (e.g.
  :meth:`repro.fleet.simulator.FleetResult.to_dict` with overhead), from
  which reports replay without re-simulating.
* ``digest``: the determinism digest of ``payload`` minus
  ``digest_excludes`` — for fleet runs the excluded keys are
  :data:`repro.fleet.simulator.OVERHEAD_KEYS`, which makes the stored
  digest byte-compatible with the benchmark harness's determinism gate.

Unlike the sweep cache (:mod:`repro.sweep.cache`), the package version
is *not* part of the identity: records are observations of what a
version produced, so they must survive version bumps.  The version is
stored inside the record instead, and diffs surface it.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import numbers
import time
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.version import __version__

#: Bump when the record layout changes incompatibly; part of every
#: run key, so old store directories simply stop matching.
STORE_SCHEMA_VERSION = 1


class RecordingError(TypeError):
    """A value has no stable JSON encoding for a run record."""


def jsonify(value: Any) -> Any:
    """Coerce ``value`` into JSON-ready primitives, strictly.

    Dataclasses serialise via their own ``to_dict`` when they have one
    (that is the canonical form the matching ``from_dict`` inverts),
    falling back to a field walk; numpy scalars collapse to ``int`` /
    ``float`` via the :mod:`numbers` ABCs (``np.int64`` is *not* an
    ``int`` subclass).  Anything without a stable encoding raises
    :class:`RecordingError` rather than storing a lossy ``repr``.
    """
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, numbers.Integral):
        return int(value)
    if isinstance(value, numbers.Real):
        return float(value)
    if isinstance(value, enum.Enum):
        return jsonify(value.value)
    to_dict = getattr(value, "to_dict", None)
    if callable(to_dict) and not isinstance(value, type):
        try:
            return jsonify(to_dict())
        except TypeError:
            pass  # to_dict needs arguments; fall through to the field walk
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: jsonify(getattr(value, f.name)) for f in dataclasses.fields(value)
        }
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value) if isinstance(value, (set, frozenset)) else value
        return [jsonify(item) for item in items]
    if isinstance(value, Mapping):
        out = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise RecordingError(f"mapping key {key!r} is not a string")
            out[key] = jsonify(item)
        return out
    raise RecordingError(f"no JSON encoding for {type(value).__qualname__}: {value!r}")


def payload_digest(payload: Mapping, *, excludes: tuple[str, ...] = ()) -> str:
    """Determinism digest of a JSON-ready payload.

    SHA-256 of the ``sort_keys`` JSON encoding, with top-level
    ``excludes`` keys dropped first — the exact convention of the fleet
    benchmark's determinism gate.
    """
    if excludes:
        payload = {k: v for k, v in payload.items() if k not in excludes}
    token = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(token.encode("utf-8")).hexdigest()


def run_key(kind: str, name: str, config: Mapping) -> str:
    """Content-addressed identity of a run: hash of kind, name and config.

    ``name`` is part of the key — two experiments can share an identical
    config dict (``{"reduced": true}``) and must not collide.
    """
    token = json.dumps(
        ["repro-run-store", STORE_SCHEMA_VERSION, kind, name, config], sort_keys=True
    )
    return hashlib.sha256(token.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class RunRecord:
    """One stored run: identity, reproduction config, result payload."""

    run_id: str
    #: Coarse category: ``fleet`` / ``scenario`` / ``schedule`` /
    #: ``experiment`` / ``bench``.
    kind: str
    #: Human handle within the kind (policy-qualified bench name,
    #: experiment key, scenario name, model name).
    name: str
    #: Package version that produced the payload (informational: part of
    #: the record, deliberately not part of the identity).
    version: str
    schema: int
    #: Unix timestamp of recording.
    created: float
    config: dict
    payload: dict
    digest: str
    #: Top-level payload keys outside the digest (wall-clock diagnostics).
    digest_excludes: tuple[str, ...] = ()
    #: Non-payload annotations (rendered report text, linked run ids).
    extras: dict = field(default_factory=dict)

    def expected_digest(self) -> str:
        return payload_digest(self.payload, excludes=self.digest_excludes)

    @property
    def intact(self) -> bool:
        """True when the payload still matches the recorded digest."""
        return self.digest == self.expected_digest()

    def to_dict(self) -> dict:
        return {
            "run_id": self.run_id,
            "kind": self.kind,
            "name": self.name,
            "version": self.version,
            "schema": self.schema,
            "created": self.created,
            "config": self.config,
            "payload": self.payload,
            "digest": self.digest,
            "digest_excludes": list(self.digest_excludes),
            "extras": self.extras,
        }


def make_record(
    kind: str,
    name: str,
    *,
    config: Mapping,
    payload: Any,
    extras: Mapping | None = None,
    digest_excludes: tuple[str, ...] = (),
    created: float | None = None,
) -> RunRecord:
    """Build a :class:`RunRecord`, canonicalising config and payload.

    Raises :class:`RecordingError` when either holds a value with no
    stable JSON encoding.
    """
    config = jsonify(config)
    payload = jsonify(payload)
    if not isinstance(config, dict):
        raise RecordingError("a run config must encode to a JSON object")
    if not isinstance(payload, dict):
        raise RecordingError("a run payload must encode to a JSON object")
    excludes = tuple(digest_excludes)
    return RunRecord(
        run_id=run_key(kind, name, config),
        kind=kind,
        name=name,
        version=__version__,
        schema=STORE_SCHEMA_VERSION,
        created=time.time() if created is None else created,
        config=config,
        payload=payload,
        digest=payload_digest(payload, excludes=excludes),
        digest_excludes=excludes,
        extras=jsonify(dict(extras) if extras else {}),
    )
