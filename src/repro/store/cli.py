"""``python -m repro report`` — the run-store command line.

Subcommands over a :class:`~repro.store.store.RunStore` (default
``.run_store``, or ``$REPRO_STORE_DIR``):

* ``list``   — every stored run, oldest first
* ``show``   — one run by id prefix (``--payload`` for the full history)
* ``diff``   — config + metric delta and digest match between two runs
* ``table``  — policy-comparison table replayed from stored histories
* ``bench``  — regenerate a committed ``BENCH_*.json`` section from the
  store (``--check`` compares instead of writing and exits 1 on drift)
* ``verify`` — walk the store, re-hash every payload; report corrupt/
  tampered entries, ``--heal`` to unlink them in bulk

Everything renders from stored payloads; no subcommand ever invokes the
simulator.  Exit codes: 0 ok, 1 drift/integrity findings, 2 bad usage
or lookup failure.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro.store import reporting
from repro.store.store import (
    DEFAULT_STORE_DIR,
    STORE_DIR_ENV,
    RunStore,
    StoreIntegrityError,
)


def _open_store(args: argparse.Namespace) -> RunStore:
    root = args.store or os.environ.get(STORE_DIR_ENV, DEFAULT_STORE_DIR)
    # Reading an existing store needs no opt-in; `enabled` only gates writes.
    return RunStore(root, enabled=True)


def _cmd_list(store: RunStore, args: argparse.Namespace) -> int:
    records = store.list_runs(kind=args.kind, name=args.name)
    if args.json:
        print(json.dumps([r.to_dict() for r in records], indent=2))
    else:
        print(reporting.format_run_list(records))
    return 0


def _cmd_show(store: RunStore, args: argparse.Namespace) -> int:
    record = store.load(args.run)
    if args.json:
        print(json.dumps(record.to_dict(), indent=2))
    else:
        print(reporting.format_run(record, payload=args.payload))
    return 0


def _cmd_diff(store: RunStore, args: argparse.Namespace) -> int:
    a = store.load(args.a)
    b = store.load(args.b)
    diff = reporting.diff_runs(a, b)
    if args.json:
        print(json.dumps(diff, indent=2))
    else:
        print(reporting.format_diff(diff))
    return 0


def _cmd_table(store: RunStore, args: argparse.Namespace) -> int:
    records = [store.load(run) for run in args.runs]
    if len(records) == 1 and records[0].kind != "fleet":
        print(reporting.replay_report(records[0]))
    else:
        print(reporting.fleet_comparison_table(records))
    return 0


def _cmd_bench(store: RunStore, args: argparse.Namespace) -> int:
    text, drift = reporting.regenerate_bench_file(
        store, args.name, Path(args.file), check=args.check
    )
    if drift:
        for line in drift:
            print(f"DRIFT: {line}", file=sys.stderr)
        return 1
    if args.check:
        print(f"{args.file}: consistent with stored section {args.name!r}")
    else:
        print(f"{args.file}: regenerated section {args.name!r} from the store")
    return 0


def _cmd_verify(store: RunStore, args: argparse.Namespace) -> int:
    report = store.verify(heal=args.heal)
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(
            f"{report['root']}: {report['entries']} entr"
            f"{'y' if report['entries'] == 1 else 'ies'}, "
            f"{report['intact']} intact, {len(report['corrupt'])} corrupt, "
            f"{len(report['tampered'])} tampered"
        )
        for bucket in ("corrupt", "tampered"):
            for run_id in report[bucket]:
                healed = " (removed)" if run_id in report["healed"] else ""
                print(f"  {bucket}: {run_id[:12]}{healed}")
    findings = report["corrupt"] + report["tampered"]
    unhealed = [run_id for run_id in findings if run_id not in report["healed"]]
    return 1 if unhealed else 0


def build_parser() -> argparse.ArgumentParser:
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help=f"store location (default: ${STORE_DIR_ENV} or {DEFAULT_STORE_DIR})",
    )
    parser = argparse.ArgumentParser(
        prog="python -m repro report",
        description="inspect, diff and replay stored runs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list stored runs", parents=[common])
    p_list.add_argument("--kind", default=None, help="filter by record kind")
    p_list.add_argument("--name", default=None, help="filter by record name")
    p_list.add_argument("--json", action="store_true", help="emit JSON")
    p_list.set_defaults(func=_cmd_list)

    p_show = sub.add_parser("show", parents=[common], help="show one run")
    p_show.add_argument("run", help="run id (unique prefix ok)")
    p_show.add_argument("--payload", action="store_true", help="include the payload")
    p_show.add_argument("--json", action="store_true", help="emit JSON")
    p_show.set_defaults(func=_cmd_show)

    p_diff = sub.add_parser("diff", parents=[common], help="diff two runs")
    p_diff.add_argument("a", help="first run id (unique prefix ok)")
    p_diff.add_argument("b", help="second run id (unique prefix ok)")
    p_diff.add_argument("--json", action="store_true", help="emit JSON")
    p_diff.set_defaults(func=_cmd_diff)

    p_table = sub.add_parser(
        "table",
        parents=[common],
        help="policy-comparison table replayed from stored runs",
    )
    p_table.add_argument("runs", nargs="+", help="run ids (unique prefixes ok)")
    p_table.set_defaults(func=_cmd_table)

    p_bench = sub.add_parser(
        "bench",
        parents=[common],
        help="regenerate a BENCH_*.json section from the store",
    )
    p_bench.add_argument(
        "name", nargs="?", default="fleet-smoke", help="bench section name"
    )
    p_bench.add_argument(
        "--file", default="BENCH_fleet.json", help="benchmark JSON file to regenerate"
    )
    p_bench.add_argument(
        "--check",
        action="store_true",
        help="compare instead of writing; exit 1 on drift",
    )
    p_bench.set_defaults(func=_cmd_bench)

    p_verify = sub.add_parser(
        "verify",
        parents=[common],
        help="re-hash every stored payload; report or heal bad entries",
    )
    p_verify.add_argument(
        "--heal",
        action="store_true",
        help="unlink corrupt and tampered entries instead of only reporting",
    )
    p_verify.add_argument("--json", action="store_true", help="emit JSON")
    p_verify.set_defaults(func=_cmd_verify)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    store = _open_store(args)
    try:
        return args.func(store, args)
    except StoreIntegrityError as exc:
        print(f"integrity error: {exc}", file=sys.stderr)
        return 1
    except (KeyError, ValueError) as exc:
        message = exc.args[0] if exc.args else exc
        print(f"error: {message}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
