"""The persistent run store: atomic, sharded, content-addressed.

Same on-disk discipline as :class:`repro.sweep.cache.SweepCache` —
``<root>/<id[:2]>/<id>.pkl``, written via ``mkstemp`` + ``os.replace``
so concurrent writers and crashes can never surface a torn record, and
corrupt entries self-heal as misses.  Unlike the cache, records are
first-class artifacts: reads verify the payload digest (a tampered
record raises :class:`StoreIntegrityError` instead of silently feeding
bad history into reports), and entries are enumerable/diffable via the
``repro report`` CLI.

Enablement mirrors the sweep cache's environment contract: the default
store records only when ``$REPRO_STORE_DIR`` is set (so plain test runs
leave no ``.run_store/`` behind), ``$REPRO_STORE_DISABLE`` force-stops
recording everywhere, and both parse strictly
(:class:`repro.sweep.executor.EnvironmentConfigError` on garbage).
The experiments CLI opts into recording by default; see
:func:`repro.store.cli.main`.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import Iterator

from repro.store.record import RunRecord
from repro.sweep.executor import parse_bool_env

STORE_DIR_ENV = "REPRO_STORE_DIR"
STORE_DISABLE_ENV = "REPRO_STORE_DISABLE"
DEFAULT_STORE_DIR = ".run_store"


class StoreIntegrityError(RuntimeError):
    """A stored record's payload no longer matches its recorded digest."""


def store_disabled() -> bool:
    """True when ``$REPRO_STORE_DISABLE`` force-disables recording."""
    return parse_bool_env(STORE_DISABLE_ENV)


class RunStore:
    """Content-addressed store of :class:`RunRecord` entries.

    ``enabled=False`` turns :meth:`record` into a no-op returning
    ``None`` (reads still work), which lets callers thread one object
    through unconditionally.
    """

    def __init__(self, root: str | os.PathLike | None = None, *, enabled: bool = True):
        if root is None:
            root = os.environ.get(STORE_DIR_ENV, DEFAULT_STORE_DIR)
        self.root = Path(root)
        self.enabled = enabled

    def _path(self, run_id: str) -> Path:
        # Two-level sharding keeps directory listings sane at scale.
        return self.root / run_id[:2] / f"{run_id}.pkl"

    # -- writing -------------------------------------------------------------------

    def record(self, record: RunRecord) -> str | None:
        """Persist ``record`` atomically; returns its run id.

        Same-identity records overwrite (latest observation wins —
        ``created`` and ``version`` say which one you are looking at).
        """
        if not self.enabled:
            return None
        path = self._path(record.run_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-", suffix=".pkl")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(record, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return record.run_id

    # -- reading -------------------------------------------------------------------

    def get(self, run_id: str, *, verify: bool = True) -> RunRecord:
        """Load one record by full id.

        A missing entry raises :class:`KeyError`; a corrupt or truncated
        one is unlinked first (self-heal) and then raises
        :class:`KeyError`; a loadable record whose payload fails digest
        verification raises :class:`StoreIntegrityError` (the entry is
        kept for inspection — pass ``verify=False`` to read it anyway).
        """
        path = self._path(run_id)
        try:
            with path.open("rb") as handle:
                record = pickle.load(handle)
        except FileNotFoundError:
            raise KeyError(f"no run {run_id!r} in {self.root}") from None
        except Exception:
            try:
                path.unlink()
            except OSError:
                pass
            raise KeyError(
                f"run {run_id!r} in {self.root} was corrupt and has been removed"
            ) from None
        if not isinstance(record, RunRecord):
            try:
                path.unlink()
            except OSError:
                pass
            raise KeyError(
                f"entry {run_id!r} in {self.root} was not a run record; removed"
            )
        if verify and not record.intact:
            raise StoreIntegrityError(
                f"run {run_id[:12]} payload hashes to "
                f"{record.expected_digest()[:12]} but the record says "
                f"{record.digest[:12]} — tampered or corrupted"
            )
        return record

    def resolve(self, prefix: str) -> str:
        """Expand a unique run-id prefix (at least 4 hex chars) to a full id."""
        if len(prefix) == 64:
            return prefix
        if len(prefix) < 4:
            raise KeyError("run-id prefixes need at least 4 characters")
        matches = [p.stem for p in self._entries() if p.stem.startswith(prefix)]
        if not matches:
            raise KeyError(f"no run matching {prefix!r} in {self.root}")
        if len(set(matches)) > 1:
            listed = ", ".join(m[:12] for m in sorted(matches)[:5])
            raise KeyError(f"ambiguous run prefix {prefix!r}: matches {listed}")
        return matches[0]

    def load(self, prefix: str, *, verify: bool = True) -> RunRecord:
        """:meth:`get` with prefix expansion — the CLI's read path."""
        return self.get(self.resolve(prefix), verify=verify)

    def _entries(self) -> Iterator[Path]:
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.iterdir()):
            if shard.is_dir():
                yield from sorted(shard.glob("*.pkl"))

    def list_runs(
        self, *, kind: str | None = None, name: str | None = None
    ) -> list[RunRecord]:
        """Every readable record, oldest first; corrupt entries self-heal
        silently (tampered ones are skipped, not removed)."""
        records = []
        for path in list(self._entries()):
            try:
                record = self.get(path.stem, verify=False)
            except KeyError:
                continue
            if kind is not None and record.kind != kind:
                continue
            if name is not None and record.name != name:
                continue
            records.append(record)
        records.sort(key=lambda r: (r.created, r.run_id))
        return records

    def latest(
        self, *, kind: str | None = None, name: str | None = None
    ) -> RunRecord | None:
        """The most recently created matching record, if any."""
        records = self.list_runs(kind=kind, name=name)
        return records[-1] if records else None

    def verify(self, *, heal: bool = False) -> dict:
        """Walk every entry, re-hash payloads, report (optionally heal).

        Each entry lands in exactly one bucket: ``intact`` (readable and
        the payload re-hashes to the recorded digest), ``corrupt``
        (unreadable pickle / not a :class:`~repro.store.record.RunRecord`
        — a torn write), or ``tampered`` (readable but the digest does
        not match — bytes changed after recording).  With ``heal=True``
        both failure buckets are unlinked, matching :meth:`get`'s
        self-heal behaviour but in bulk; without it nothing is touched,
        so the report is safe to run against a store under suspicion.
        """
        intact = 0
        corrupt: list[str] = []
        tampered: list[str] = []
        healed: list[str] = []
        for path in list(self._entries()):
            run_id = path.stem
            record = None
            try:
                with path.open("rb") as handle:
                    loaded = pickle.load(handle)
                if isinstance(loaded, RunRecord):
                    record = loaded
            except Exception:
                record = None
            if record is None:
                corrupt.append(run_id)
            elif not record.intact:
                tampered.append(run_id)
            else:
                intact += 1
                continue
            if heal:
                try:
                    path.unlink()
                    healed.append(run_id)
                except OSError:
                    pass
        return {
            "root": str(self.root),
            "entries": intact + len(corrupt) + len(tampered),
            "intact": intact,
            "corrupt": sorted(corrupt),
            "tampered": sorted(tampered),
            "healed": sorted(healed),
        }

    def __len__(self) -> int:
        return sum(1 for _ in self._entries())

    def __bool__(self) -> bool:
        # Truthiness means "is a store", not "has records".
        return True

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in list(self._entries()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


# -- process-wide default store -----------------------------------------------------

_default_store: RunStore | None = None


def default_store() -> RunStore:
    """The process default: records only when ``$REPRO_STORE_DIR`` is set
    (and ``$REPRO_STORE_DISABLE`` does not override), so library use and
    plain test runs never write a store as a side effect."""
    global _default_store
    if _default_store is None:
        root = os.environ.get(STORE_DIR_ENV)
        enabled = root is not None and not store_disabled()
        _default_store = RunStore(root, enabled=enabled)
    return _default_store


def configure_store(
    root: str | os.PathLike | None = None, *, enabled: bool | None = None
) -> RunStore:
    """Replace the process default store (the CLI's opt-in hook)."""
    global _default_store
    current = default_store()
    if enabled is None:
        enabled = True if root is not None else current.enabled
    _default_store = RunStore(root if root is not None else current.root, enabled=enabled)
    return _default_store


def resolve_store(value) -> RunStore | None:
    """Coerce a caller's ``store=`` argument to a usable store or ``None``.

    ``None`` means the process default (which is disabled unless
    ``$REPRO_STORE_DIR`` is set or :func:`configure_store` ran);
    ``False`` opts this call out; a path opens an enabled store there; a
    :class:`RunStore` passes through.  ``$REPRO_STORE_DISABLE`` beats
    everything, mirroring ``$REPRO_SWEEP_NO_CACHE``.
    """
    if value is False:
        return None
    if store_disabled():
        return None
    if value is None:
        store = default_store()
        return store if store.enabled else None
    if isinstance(value, RunStore):
        return value if value.enabled else None
    if isinstance(value, (str, os.PathLike)):
        return RunStore(value, enabled=True)
    raise TypeError(
        f"store must be None, False, a path or a RunStore, got {type(value).__name__}"
    )
