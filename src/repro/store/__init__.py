"""repro.store — the persistent, content-addressed run store.

Records every ``run_fleet`` / ``run_scenario`` / experiment / benchmark
invocation as a :class:`RunRecord` (full reproduction config, result
payload with per-round history, determinism digest) under an atomic
sharded layout borrowed from the sweep cache, and replays reports from
those records without re-simulating (``python -m repro report``).

Recording is opt-in for library use: the default store writes only when
``$REPRO_STORE_DIR`` is set (the experiments CLI and the benchmark
harness opt in explicitly).  :func:`record_run` is the best-effort entry
point callers thread through — a run must never fail because its record
could not be written.
"""

from __future__ import annotations

from repro.store.record import (
    STORE_SCHEMA_VERSION,
    RecordingError,
    RunRecord,
    jsonify,
    make_record,
    payload_digest,
    run_key,
)
from repro.store.store import (
    DEFAULT_STORE_DIR,
    STORE_DIR_ENV,
    STORE_DISABLE_ENV,
    RunStore,
    StoreIntegrityError,
    configure_store,
    default_store,
    resolve_store,
    store_disabled,
)


def record_run(
    store: RunStore | None,
    kind: str,
    name: str,
    *,
    config,
    payload,
    extras=None,
    digest_excludes: tuple[str, ...] = (),
) -> str | None:
    """Best-effort recording: the run id, or ``None`` when the store is
    off or the record cannot be encoded/written.  Encoding and I/O
    problems are deliberately swallowed — recording is a side channel
    and must never fail the run it describes."""
    if store is None or not store.enabled:
        return None
    try:
        record = make_record(
            kind,
            name,
            config=config,
            payload=payload,
            extras=extras,
            digest_excludes=digest_excludes,
        )
        return store.record(record)
    except (RecordingError, OSError):
        return None


__all__ = [
    "DEFAULT_STORE_DIR",
    "RecordingError",
    "RunRecord",
    "RunStore",
    "STORE_DIR_ENV",
    "STORE_DISABLE_ENV",
    "STORE_SCHEMA_VERSION",
    "StoreIntegrityError",
    "configure_store",
    "default_store",
    "jsonify",
    "make_record",
    "payload_digest",
    "record_run",
    "resolve_store",
    "run_key",
    "store_disabled",
]
