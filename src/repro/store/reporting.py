"""Replayable reports over stored runs — zero simulator invocations.

Everything here renders from :class:`~repro.store.record.RunRecord`
payloads: listings and diffs, policy-comparison tables rebuilt through
:meth:`repro.fleet.simulator.FleetResult.from_dict`, and regeneration of
committed ``BENCH_*.json`` sections.  The benchmark harness's JSON merge
semantics live here too (``benchmarks/fleet_bench.py`` delegates), so
"regenerate from the store" and "write after a fresh run" are one code
path and can be byte-compared.

Layering: this module may import the fleet and experiments layers
(deferred, for payload reconstruction) but never :mod:`benchmarks`.
"""

from __future__ import annotations

import json
from datetime import datetime, timezone
from pathlib import Path
from typing import Iterable, Sequence

from repro.store.record import RunRecord
from repro.store.store import RunStore
from repro.utils.tables import TextTable


def _timestamp(created: float) -> str:
    return datetime.fromtimestamp(created, tz=timezone.utc).strftime(
        "%Y-%m-%dT%H:%M:%SZ"
    )


# -- listings and diffs --------------------------------------------------------------


def format_run_list(records: Sequence[RunRecord]) -> str:
    """One line per record, oldest first."""
    if not records:
        return "(no stored runs)"
    table = TextTable(
        ["run", "kind", "name", "version", "created", "digest"],
        title=f"{len(records)} stored run(s)",
    )
    for record in records:
        table.add_row(
            [
                record.run_id[:12],
                record.kind,
                record.name,
                record.version,
                _timestamp(record.created),
                record.digest[:12],
            ]
        )
    return table.render()


def format_run(record: RunRecord, *, payload: bool = False) -> str:
    """A full single-record view: identity, config, optional payload."""
    lines = [
        f"run      {record.run_id}",
        f"kind     {record.kind} / {record.name}",
        f"version  {record.version} (schema {record.schema})",
        f"created  {_timestamp(record.created)}",
        f"digest   {record.digest}"
        + ("" if record.intact else "  ** PAYLOAD DOES NOT MATCH **"),
    ]
    if record.digest_excludes:
        lines.append(f"excludes {', '.join(record.digest_excludes)}")
    lines.append("config:")
    lines.append(json.dumps(record.config, indent=2, sort_keys=True))
    report = record.extras.get("report")
    if report:
        lines.append("stored report:")
        lines.append(str(report).rstrip())
    if payload:
        lines.append("payload:")
        lines.append(json.dumps(record.payload, indent=2, sort_keys=True))
    return "\n".join(lines)


def diff_runs(a: RunRecord, b: RunRecord) -> dict:
    """Structured delta between two runs.

    Config keys that differ, top-level numeric payload metrics that
    differ, and whether the determinism digests match at all.
    """

    def is_number(value) -> bool:
        return isinstance(value, (int, float)) and not isinstance(value, bool)

    config_delta = {}
    for key in sorted(set(a.config) | set(b.config)):
        left, right = a.config.get(key), b.config.get(key)
        if left != right:
            config_delta[key] = {"a": left, "b": right}
    # Digest-excluded keys are wall-clock/diagnostic noise by definition.
    excluded = set(a.digest_excludes) | set(b.digest_excludes)
    metric_delta = {}
    for key in sorted((set(a.payload) | set(b.payload)) - excluded):
        left, right = a.payload.get(key), b.payload.get(key)
        if is_number(left) and is_number(right) and left != right:
            metric_delta[key] = {"a": left, "b": right, "delta": right - left}
    return {
        "a": a.run_id,
        "b": b.run_id,
        "kinds": [f"{a.kind}/{a.name}", f"{b.kind}/{b.name}"],
        "versions": [a.version, b.version],
        "config_delta": config_delta,
        "metric_delta": metric_delta,
        "digest_match": a.digest == b.digest,
    }


def format_diff(diff: dict) -> str:
    lines = [
        f"a: {diff['a'][:12]}  ({diff['kinds'][0]}, v{diff['versions'][0]})",
        f"b: {diff['b'][:12]}  ({diff['kinds'][1]}, v{diff['versions'][1]})",
        f"digest match: {diff['digest_match']}",
    ]
    if diff["config_delta"]:
        table = TextTable(["config key", "a", "b"], title="config delta")
        for key, delta in diff["config_delta"].items():
            table.add_row([key, json.dumps(delta["a"]), json.dumps(delta["b"])])
        lines.append(table.render())
    else:
        lines.append("config delta: (none)")
    if diff["metric_delta"]:
        table = TextTable(["metric", "a", "b", "delta"], title="metric delta")
        for key, delta in diff["metric_delta"].items():
            table.add_row([key, delta["a"], delta["b"], delta["delta"]])
        lines.append(table.render())
    else:
        lines.append("metric delta: (none)")
    return "\n".join(lines)


# -- replayed tables -----------------------------------------------------------------


def fleet_comparison_table(records: Iterable[RunRecord]) -> str:
    """Policy-comparison table rebuilt from stored fleet histories.

    Every row comes from :meth:`FleetResult.from_dict` on a stored
    payload — no simulation happens.  Speedups are relative to the
    stored ``first-fit`` run when present (first record otherwise).
    """
    from repro.fleet.simulator import FleetResult

    rows = []
    for record in records:
        if record.kind != "fleet":
            raise ValueError(
                f"run {record.run_id[:12]} is kind {record.kind!r}, not a fleet run"
            )
        rows.append((record, FleetResult.from_dict(record.payload)))
    if not rows:
        raise ValueError("no fleet runs to compare")
    baseline = next(
        (result.makespan for _, result in rows if result.policy_name == "first-fit"),
        rows[0][1].makespan,
    )
    table = TextTable(
        [
            "run",
            "policy",
            "jobs",
            "makespan (s)",
            "mean wait (s)",
            "co-run rounds",
            "blacklisted",
            "speedup",
        ],
        title="stored fleet runs (replayed, not re-simulated)",
    )
    for record, result in rows:
        corun = sum(m.corun_rounds for m in result.machine_reports)
        total = sum(m.rounds for m in result.machine_reports)
        table.add_row(
            [
                record.run_id[:12],
                result.policy_name,
                result.num_jobs,
                result.makespan,
                result.mean_wait_time,
                f"{corun}/{total}",
                len(result.blacklisted_pairs),
                baseline / result.makespan,
            ]
        )
    return table.render()


def replay_report(record: RunRecord) -> str:
    """Re-render a stored run's report from its payload.

    The ``fleet`` experiment rebuilds its result object and goes back
    through the experiment's own ``format_report`` (proving the payload
    carries the whole table); fleet runs render via
    :func:`fleet_comparison_table`; anything else falls back to the
    report text captured at recording time.
    """
    if record.kind == "experiment" and record.name == "fleet":
        from repro.experiments import fleet_corun

        return fleet_corun.format_report(_fleet_corun_result(record.payload))
    if record.kind == "fleet":
        return fleet_comparison_table([record])
    report = record.extras.get("report")
    if report is None:
        raise ValueError(
            f"run {record.run_id[:12]} ({record.kind}/{record.name}) "
            "has no stored report to replay"
        )
    return str(report)


def _fleet_corun_result(payload: dict):
    from repro.experiments.fleet_corun import FleetCorunResult, FleetPolicyRow

    return FleetCorunResult(
        machines=tuple(payload["machines"]),
        num_jobs=payload["num_jobs"],
        arrival_seed=payload["arrival_seed"],
        rows=tuple(FleetPolicyRow(**row) for row in payload["rows"]),
        min_steps=payload.get("min_steps", 3),
        max_steps=payload.get("max_steps", 10),
        fault_spec=payload.get("fault_spec"),
        arrival_spec=payload.get("arrival_spec"),
        admission_spec=payload.get("admission_spec"),
    )


# -- BENCH_*.json regeneration -------------------------------------------------------


def merge_bench_report(report: dict, existing: dict) -> dict:
    """The benchmark harness's merge: section keys overwrite, other
    suites' keys survive, ``round_compression`` sub-suites deep-merge."""
    merged = dict(existing)
    nested = {
        **merged.get("round_compression", {}),
        **report.get("round_compression", {}),
    }
    merged.update(report)
    if nested:
        merged["round_compression"] = nested
    return merged


def render_bench_json(report: dict) -> str:
    """The exact byte form ``write_bench_json`` commits."""
    return json.dumps(report, indent=2, sort_keys=False) + "\n"


def verify_bench_section(store: RunStore, record: RunRecord) -> list[str]:
    """Cross-check a bench section against its linked per-policy runs.

    The section record's ``extras["runs"]`` maps policy -> fleet run id;
    each linked history is replayed through ``FleetResult.from_dict``
    and its deterministic figures compared to the section's rows.
    Returns human-readable drift lines (empty means consistent).
    """
    from repro.fleet.simulator import FleetResult

    drift: list[str] = []
    for policy, run_id in record.extras.get("runs", {}).items():
        try:
            linked = store.get(run_id)
        except KeyError:
            drift.append(f"{policy}: linked run {run_id[:12]} is missing from the store")
            continue
        result = FleetResult.from_dict(linked.payload)
        row = record.payload.get("policies", {}).get(policy, {})
        replayed = {
            "makespan": result.makespan,
            "mean_wait_time": round(result.mean_wait_time, 6),
            "corun_rounds": sum(m.corun_rounds for m in result.machine_reports),
            "total_rounds": sum(m.rounds for m in result.machine_reports),
            "blacklisted_pairs": [list(p) for p in result.blacklisted_pairs],
        }
        for key, expected in replayed.items():
            if row.get(key) != expected:
                drift.append(
                    f"{policy}.{key}: stored history replays to {expected!r} "
                    f"but the section says {row.get(key)!r}"
                )
    return drift


def regenerate_bench_file(
    store: RunStore,
    name: str,
    path: Path,
    *,
    check: bool = False,
) -> tuple[str, list[str]]:
    """Regenerate ``path``'s section ``name`` from the stored bench run.

    Loads the latest ``kind="bench"`` record called ``name`` (digest
    verified), cross-checks it against its linked fleet histories, and
    merges its payload into the existing file content.  With ``check``
    the file is compared instead of written and any mismatch is reported
    as drift.  Returns ``(rendered_text, drift_lines)``.
    """
    record = store.latest(kind="bench", name=name)
    if record is None:
        raise KeyError(f"no stored bench run named {name!r} in {store.root}")
    store.get(record.run_id)  # digest verification
    drift = verify_bench_section(store, record)
    existing = {}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            existing = {}
    text = render_bench_json(merge_bench_report(record.payload, existing))
    if check:
        current = path.read_text() if path.exists() else ""
        if text != current:
            drift.append(
                f"{path} drifts from the stored {name!r} section "
                f"(regenerate with: python -m repro report bench {name})"
            )
    elif not drift:
        path.write_text(text)
    return text, drift
