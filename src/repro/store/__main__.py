"""``python -m repro.store`` — alias for ``python -m repro report``."""

from repro.store.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
