"""Unit constants and human readable formatting helpers.

Internally all times are seconds, sizes are bytes, rates are per second.
These constants make intent explicit at call sites, e.g. ``16 * GB`` or
``5 * MICROSECOND``.
"""

from __future__ import annotations

#: One kibibyte-free kilobyte (we use powers of two throughout, matching
#: hardware cache sizes such as the KNL 1 MB tile L2).
KB: int = 1024
MB: int = 1024 * KB
GB: int = 1024 * MB

#: Time units, in seconds.
SECOND: float = 1.0
MILLISECOND: float = 1e-3
MICROSECOND: float = 1e-6
NANOSECOND: float = 1e-9

#: Frequency unit, in Hz.
GHZ: float = 1e9


def format_time(seconds: float) -> str:
    """Render a duration with an appropriate unit.

    >>> format_time(0.00032)
    '320.0 us'
    """
    if seconds < 0:
        return "-" + format_time(-seconds)
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{seconds / 1e-3:.2f} ms"
    if seconds >= 1e-6:
        return f"{seconds / 1e-6:.1f} us"
    return f"{seconds / 1e-9:.1f} ns"


def format_bytes(num_bytes: float) -> str:
    """Render a byte count with an appropriate binary unit.

    >>> format_bytes(3 * 1024 * 1024)
    '3.00 MiB'
    """
    if num_bytes < 0:
        return "-" + format_bytes(-num_bytes)
    if num_bytes >= GB:
        return f"{num_bytes / GB:.2f} GiB"
    if num_bytes >= MB:
        return f"{num_bytes / MB:.2f} MiB"
    if num_bytes >= KB:
        return f"{num_bytes / KB:.2f} KiB"
    return f"{num_bytes:.0f} B"
