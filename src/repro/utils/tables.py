"""Minimal ASCII table rendering used by the experiment reports.

The experiment modules print tables shaped like those in the paper
(Table I .. Table VII); this renderer keeps them readable without any
third-party dependency.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


class TextTable:
    """Accumulate rows and render a fixed-width text table.

    >>> t = TextTable(["op", "time (ms)"])
    >>> t.add_row(["Conv2D", 4.7])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, headers: Sequence[str], title: str | None = None) -> None:
        if not headers:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: list[list[str]] = []

    def add_row(self, row: Iterable[Any]) -> None:
        cells = [self._format(cell) for cell in row]
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, expected {len(self.headers)}"
            )
        self.rows.append(cells)

    @staticmethod
    def _format(cell: Any) -> str:
        if isinstance(cell, float):
            if cell == 0:
                return "0"
            if abs(cell) >= 1000:
                return f"{cell:.0f}"
            if abs(cell) >= 1:
                return f"{cell:.2f}"
            return f"{cell:.4f}"
        return str(cell)

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt_row(cells: Sequence[str]) -> str:
            return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

        sep = "-+-".join("-" * w for w in widths)
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(fmt_row(self.headers))
        lines.append(sep)
        lines.extend(fmt_row(row) for row in self.rows)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
