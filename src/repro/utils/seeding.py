"""Deterministic random number generation helpers.

Every stochastic component in the library (counter measurement noise,
regressor initialisation, workload jitter) draws from a generator produced
here so that experiments, tests and benchmarks are reproducible.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np


def make_rng(seed: int | None = 0) -> np.random.Generator:
    """Return a NumPy ``Generator`` seeded deterministically.

    ``None`` yields a non-deterministic generator; everything else is
    passed through ``np.random.default_rng``.
    """
    return np.random.default_rng(seed)


class SeedSequenceFactory:
    """Hand out independent child seeds derived from one root seed.

    This mirrors the "spawn" pattern of :class:`numpy.random.SeedSequence`
    but also supports string-keyed children so that components get stable
    streams regardless of creation order::

        factory = SeedSequenceFactory(42)
        rng_counters = factory.rng("counters")
        rng_noise = factory.rng("noise")
    """

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)

    def child_seed(self, key: str | int) -> int:
        """Return a deterministic 63-bit seed for ``key``."""
        data = f"{self.root_seed}:{key}".encode("utf-8")
        # FNV-1a, 64-bit, then mask to a positive int63 for portability.
        acc = 0xCBF29CE484222325
        for byte in data:
            acc ^= byte
            acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        return acc & 0x7FFFFFFFFFFFFFFF

    def rng(self, key: str | int) -> np.random.Generator:
        """Return a generator seeded for ``key``."""
        return np.random.default_rng(self.child_seed(key))

    def rngs(self, keys: Iterable[str | int]) -> list[np.random.Generator]:
        """Return one generator per key."""
        return [self.rng(key) for key in keys]
