"""Small shared utilities: units, seeding, statistics, and table rendering."""

from repro.utils.units import (
    GB,
    GHZ,
    KB,
    MB,
    MICROSECOND,
    MILLISECOND,
    SECOND,
    format_bytes,
    format_time,
)
from repro.utils.seeding import SeedSequenceFactory, make_rng
from repro.utils.stats import (
    geometric_mean,
    harmonic_mean,
    mean_absolute_percentage_error,
    paper_accuracy,
    r_squared,
)
from repro.utils.tables import TextTable

__all__ = [
    "GB",
    "GHZ",
    "KB",
    "MB",
    "MICROSECOND",
    "MILLISECOND",
    "SECOND",
    "format_bytes",
    "format_time",
    "SeedSequenceFactory",
    "make_rng",
    "geometric_mean",
    "harmonic_mean",
    "mean_absolute_percentage_error",
    "paper_accuracy",
    "r_squared",
    "TextTable",
]
