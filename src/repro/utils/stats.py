"""Statistics helpers shared by the performance models and experiments."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (used for speedup aggregation)."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("geometric_mean of empty sequence")
    if np.any(arr <= 0):
        raise ValueError("geometric_mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(arr))))


def harmonic_mean(values: Sequence[float]) -> float:
    """Harmonic mean of positive values."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("harmonic_mean of empty sequence")
    if np.any(arr <= 0):
        raise ValueError("harmonic_mean requires strictly positive values")
    return float(arr.size / np.sum(1.0 / arr))


def mean_absolute_percentage_error(y_true: Sequence[float], y_pred: Sequence[float]) -> float:
    """MAPE = mean(|(pred - true) / true|)."""
    t = np.asarray(y_true, dtype=float)
    p = np.asarray(y_pred, dtype=float)
    if t.shape != p.shape:
        raise ValueError(f"shape mismatch: {t.shape} vs {p.shape}")
    if t.size == 0:
        raise ValueError("empty input")
    if np.any(t == 0):
        raise ValueError("y_true contains zeros; MAPE undefined")
    return float(np.mean(np.abs((p - t) / t)))


def paper_accuracy(y_true: Sequence[float], y_pred: Sequence[float]) -> float:
    """The accuracy metric of the paper: ``1 - MAPE`` clamped at zero.

    Section III-B defines modelling accuracy as
    ``1 - (1/n) * sum(|y_hat - y| / y)``.  Large errors can push the raw
    value below zero; following common reporting practice we clamp at 0.
    """
    return max(0.0, 1.0 - mean_absolute_percentage_error(y_true, y_pred))


def r_squared(y_true: Sequence[float], y_pred: Sequence[float]) -> float:
    """Coefficient of determination R^2."""
    t = np.asarray(y_true, dtype=float)
    p = np.asarray(y_pred, dtype=float)
    if t.shape != p.shape:
        raise ValueError(f"shape mismatch: {t.shape} vs {p.shape}")
    if t.size < 2:
        raise ValueError("need at least two observations for R^2")
    ss_res = float(np.sum((t - p) ** 2))
    ss_tot = float(np.sum((t - np.mean(t)) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot
