"""Execution simulation: per-operation timing and a discrete-event engine.

This subpackage plays the role of the KNL node + MKL-DNN kernels in the
paper: it answers "how long does operation X take with p threads under
affinity a?" (:mod:`repro.execsim.op_runtime`) and "what happens when a
scheduler co-runs several operations on the chip?"
(:mod:`repro.execsim.simulator`, with contention from
:mod:`repro.execsim.contention`).
"""

from repro.execsim.contention import ContentionState, RunningOpView, corun_slowdowns
from repro.execsim.op_runtime import (
    OpTimeBreakdown,
    execution_time,
    execution_time_cached,
    optimal_configuration,
    sweep_thread_counts,
)
from repro.execsim.standalone import StandaloneRunner
from repro.execsim.events import EventKind, SimulationEvent
from repro.execsim.trace import ExecutionTrace, OpExecutionRecord
from repro.execsim.simulator import (
    LaunchRequest,
    PlacementKind,
    SchedulingContext,
    SchedulingPolicy,
    StepSimulator,
    StepResult,
)
from repro.execsim.gpu import GpuKernelModel, GpuLaunchConfig

__all__ = [
    "ContentionState",
    "RunningOpView",
    "corun_slowdowns",
    "OpTimeBreakdown",
    "execution_time",
    "execution_time_cached",
    "optimal_configuration",
    "sweep_thread_counts",
    "StandaloneRunner",
    "EventKind",
    "SimulationEvent",
    "ExecutionTrace",
    "OpExecutionRecord",
    "LaunchRequest",
    "PlacementKind",
    "SchedulingContext",
    "SchedulingPolicy",
    "StepSimulator",
    "StepResult",
    "GpuKernelModel",
    "GpuLaunchConfig",
]
