"""Running operations standalone, outside a full model graph.

The paper's motivation studies (Section II-C) and its profiling steps run
individual operations "as standalone operations to avoid any performance
interference".  This module provides the same facility for the simulated
substrate: measure one operation at a chosen thread count/affinity, sweep
the whole configuration space, or co-run a handful of standalone
operations under explicit placements (Table III).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.execsim.op_runtime import OpTimeBreakdown, execution_time, sweep_thread_counts
from repro.execsim.simulator import (
    LaunchRequest,
    PlacementKind,
    SchedulingContext,
    StepResult,
    StepSimulator,
)
from repro.graph.dataflow import DataflowGraph
from repro.graph.op import OpInstance
from repro.hardware.affinity import AffinityMode
from repro.hardware.topology import Machine
from repro.ops.characteristics import OpCharacteristics
from repro.ops.cost import characterize
from repro.ops.registry import OpRegistry
from repro.utils.seeding import make_rng


@dataclass(frozen=True)
class StandaloneConfig:
    """How one operation participates in a standalone co-run experiment."""

    op: OpInstance
    threads: int
    affinity: AffinityMode = AffinityMode.SHARED
    placement: PlacementKind = PlacementKind.DEDICATED


class _FixedPolicy:
    """Launches every operation exactly as configured, all at step start."""

    name = "fixed"

    def __init__(self, configs: Sequence[StandaloneConfig]) -> None:
        self._by_name = {c.op.name: c for c in configs}
        self._launched: set[str] = set()

    def on_step_begin(self, graph: DataflowGraph, machine: Machine) -> None:
        self._launched.clear()

    def select_launches(self, context: SchedulingContext) -> list[LaunchRequest]:
        requests: list[LaunchRequest] = []
        for op in context.ready:
            if op.name in self._launched:
                continue
            config = self._by_name[op.name]
            requests.append(
                LaunchRequest(
                    op_name=op.name,
                    threads=config.threads,
                    affinity=config.affinity,
                    placement=config.placement,
                )
            )
            self._launched.add(op.name)
        return requests


class StandaloneRunner:
    """Measure operations in isolation on the simulated machine."""

    def __init__(
        self,
        machine: Machine,
        *,
        registry: OpRegistry | None = None,
        noise_sigma: float = 0.0,
        seed: int = 0,
        sweep_cache=None,
    ) -> None:
        if noise_sigma < 0:
            raise ValueError("noise_sigma must be non-negative")
        self.machine = machine
        self.registry = registry
        self.noise_sigma = noise_sigma
        #: Optional :class:`repro.sweep.SweepCache` memoising exhaustive
        #: sweeps.  None (the default) computes them in-process — callers
        #: that want cross-run persistence opt in explicitly, so cache
        #: policy always follows the executor/CLI configuration instead
        #: of ambient global state.
        self.sweep_cache = sweep_cache
        self._rng = make_rng(seed)

    # -- single-op measurements --------------------------------------------------

    def characteristics(self, op: OpInstance) -> OpCharacteristics:
        return characterize(op, self.registry)

    def measure(
        self,
        op: OpInstance,
        threads: int,
        affinity: AffinityMode = AffinityMode.SHARED,
    ) -> OpTimeBreakdown:
        """Noise-free breakdown of one standalone execution."""
        return execution_time(self.characteristics(op), self.machine, threads, affinity)

    def run(
        self,
        op: OpInstance,
        threads: int,
        affinity: AffinityMode = AffinityMode.SHARED,
        *,
        repeats: int = 1,
    ) -> float:
        """Measured wall time of ``repeats`` back-to-back standalone runs.

        Measurement noise (if configured) is applied per run, mimicking
        what the profiling steps of the runtime would observe.
        """
        if repeats < 1:
            raise ValueError("repeats must be at least 1")
        base = self.measure(op, threads, affinity).total
        if self.noise_sigma == 0.0:
            return base * repeats
        factors = self._rng.lognormal(mean=0.0, sigma=self.noise_sigma, size=repeats)
        return float(base * factors.sum())

    def sweep(self, op: OpInstance) -> dict[tuple[int, AffinityMode], OpTimeBreakdown]:
        """Noise-free sweep over every feasible (threads, affinity) case.

        Memoised by ``sweep_cache`` when the runner was built with one
        (the sweep is a pure function of the op characteristics and the
        machine); uncached otherwise.
        """
        from repro.sweep.tasks import cached_call, op_sweep

        return cached_call(self.sweep_cache, op_sweep, self.characteristics(op), self.machine)

    def sweep_many(
        self, ops: Sequence[OpInstance], *, executor=None
    ) -> list[dict[tuple[int, AffinityMode], OpTimeBreakdown]]:
        """Sweep several operations, fanned out over the sweep engine."""
        from repro.sweep.executor import get_default_executor
        from repro.sweep.tasks import op_sweep

        executor = executor or get_default_executor()
        return executor.map(
            op_sweep, [(self.characteristics(op), self.machine) for op in ops]
        )

    def best_configuration(self, op: OpInstance) -> tuple[int, AffinityMode, float]:
        """Ground-truth optimal configuration of ``op`` on this machine."""
        sweep = self.sweep(op)
        (threads, affinity), breakdown = min(sweep.items(), key=lambda kv: kv[1].total)
        return threads, affinity, breakdown.total

    # -- standalone co-running -----------------------------------------------------

    def corun(
        self,
        configs: Sequence[StandaloneConfig],
        *,
        serialize: bool = False,
    ) -> StepResult:
        """Co-run (or serialise) a set of standalone operations.

        ``serialize=True`` chains the operations with artificial control
        dependencies so they run back to back — the "serial execution"
        baseline of Table III.
        """
        if not configs:
            raise ValueError("corun needs at least one operation")
        names = [c.op.name for c in configs]
        if len(set(names)) != len(names):
            raise ValueError("operation names must be unique in a co-run experiment")
        graph = DataflowGraph(name="standalone-corun")
        previous: OpInstance | None = None
        for config in configs:
            deps = [previous.name] if (serialize and previous is not None) else []
            graph.add_op(config.op, deps=deps)
            previous = config.op
        simulator = StepSimulator(
            self.machine,
            registry=self.registry,
            noise_sigma=self.noise_sigma,
            seed=int(self._rng.integers(0, 2**31 - 1)),
        )
        policy = _FixedPolicy(configs)
        return simulator.run_step(graph, policy, step_name="standalone")
