"""Event records produced by the discrete-event simulator.

The paper instruments its runtime the same way: "whenever there is an
operation finished or launched, we record the number of co-running
operations at the moment" (Section IV-B, Fig. 4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class EventKind(enum.Enum):
    """What happened at a simulation event."""

    LAUNCH = "launch"
    FINISH = "finish"
    STEP_BEGIN = "step_begin"
    STEP_END = "step_end"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class SimulationEvent:
    """One launch/finish event of the simulated training step."""

    index: int
    time: float
    kind: EventKind
    op_name: str
    #: Number of operations running immediately *after* the event.
    corunning: int
    #: Physical cores busy immediately after the event (primary slots).
    busy_cores: int
    #: Threads granted to the operation this event refers to.
    threads: int = 0

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("index must be non-negative")
        if self.time < 0:
            raise ValueError("time must be non-negative")
        if self.corunning < 0 or self.busy_cores < 0:
            raise ValueError("counters must be non-negative")
