"""GPU kernel timing and stream co-running (Section VII of the paper).

The paper's preliminary GPU study asks two questions:

* how does a kernel's execution time respond to the launch configuration
  (threads per block, number of thread blocks)?  (Fig. 5)
* how much does co-running two operations in separate CUDA streams gain
  over serialising them?  (Table VII)

Both are answered here with an occupancy/roofline model of a P100.  A
single kernel rarely keeps the whole GPU busy (wave quantisation, launch
gaps between the thousands of repeated invocations, unbalanced resource
use), which is what makes two-stream co-running profitable; the
``single_stream_utilization`` constant captures that head-room.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.gpu import GpuSpec, p100_gpu
from repro.ops.characteristics import OpCharacteristics


@dataclass(frozen=True)
class GpuLaunchConfig:
    """A CUDA launch configuration."""

    threads_per_block: int
    num_blocks: int

    def __post_init__(self) -> None:
        if self.threads_per_block <= 0 or self.num_blocks <= 0:
            raise ValueError("launch configuration must be positive")

    @property
    def total_threads(self) -> int:
        return self.threads_per_block * self.num_blocks


@dataclass(frozen=True)
class GpuKernelModel:
    """Analytic kernel-time model on a :class:`GpuSpec`.

    Attributes
    ----------
    gpu:
        The GPU description.
    per_thread_overhead:
        Seconds of setup cost per launched thread (register/stack setup,
        grid-stride loop management).  This is what makes oversized
        launches slower than necessary.
    occupancy_saturation:
        Occupancy beyond which extra resident threads no longer improve
        throughput for compute-bound kernels.
    occupancy_saturation_memory:
        Same, for memory-bound kernels (they need more concurrency to
        hide memory latency, so the saturation point is higher).
    single_stream_utilization:
        Baseline fraction of the GPU a single well-configured kernel keeps
        busy on average; compute-heavy kernels keep a little more (see
        :meth:`stream_utilization`).  The remainder is reclaimable by a
        second stream (Table VII).
    """

    gpu: GpuSpec
    per_thread_overhead: float = 1.0e-9
    occupancy_saturation: float = 0.2
    occupancy_saturation_memory: float = 0.32
    single_stream_utilization: float = 0.5

    # -- launch configurations -----------------------------------------------------

    def default_config(self) -> GpuLaunchConfig:
        """TensorFlow's default launch: 1024 threads/block, one block per SM."""
        return GpuLaunchConfig(
            threads_per_block=self.gpu.max_threads_per_block,
            num_blocks=self.gpu.num_sms,
        )

    # -- single-kernel time ----------------------------------------------------------

    def _efficiency(self, chars: OpCharacteristics, config: GpuLaunchConfig) -> float:
        occupancy = self.gpu.occupancy(config.threads_per_block, config.num_blocks)
        saturation = (
            self.occupancy_saturation
            + (self.occupancy_saturation_memory - self.occupancy_saturation)
            * chars.memory_bound
        )
        return min(1.0, occupancy / saturation)

    def kernel_time(self, chars: OpCharacteristics, config: GpuLaunchConfig) -> float:
        """Execution time of one kernel invocation under ``config``."""
        compute_time = chars.flops / self.gpu.effective_flops
        memory_time = chars.bytes_touched / self.gpu.memory_bandwidth
        efficiency = self._efficiency(chars, config)
        busy = max(compute_time, memory_time) / efficiency
        overhead = (
            self.gpu.launch_latency
            + self.per_thread_overhead * config.total_threads
        )
        busy *= self.gpu.scheduling_overhead(config.threads_per_block, config.num_blocks)
        return busy + overhead

    def sweep_threads_per_block(
        self,
        chars: OpCharacteristics,
        candidates: tuple[int, ...],
        *,
        num_blocks: int | None = None,
    ) -> dict[int, float]:
        """Kernel time for each candidate threads-per-block value (Fig. 5a)."""
        blocks = num_blocks if num_blocks is not None else self.gpu.num_sms
        return {
            tpb: self.kernel_time(chars, GpuLaunchConfig(tpb, blocks))
            for tpb in candidates
        }

    def sweep_num_blocks(
        self,
        chars: OpCharacteristics,
        candidates: tuple[int, ...],
        *,
        threads_per_block: int | None = None,
    ) -> dict[int, float]:
        """Kernel time for each candidate block count (Fig. 5b)."""
        tpb = (
            threads_per_block
            if threads_per_block is not None
            else self.gpu.max_threads_per_block
        )
        return {
            blocks: self.kernel_time(chars, GpuLaunchConfig(tpb, blocks))
            for blocks in candidates
        }

    def best_config(
        self,
        chars: OpCharacteristics,
        *,
        threads_candidates: tuple[int, ...] = (64, 128, 256, 512, 1024),
        block_candidates: tuple[int, ...] = (14, 28, 56, 112, 224, 448, 896),
    ) -> tuple[GpuLaunchConfig, float]:
        """Best launch configuration over a candidate grid.

        The paper observes the two dimensions are roughly independent, so
        this exhaustive grid stands in for its reduced O(2n) search.
        """
        best: tuple[GpuLaunchConfig, float] | None = None
        for tpb in threads_candidates:
            for blocks in block_candidates:
                config = GpuLaunchConfig(tpb, blocks)
                time = self.kernel_time(chars, config)
                if best is None or time < best[1]:
                    best = (config, time)
        assert best is not None
        return best

    # -- stream co-running -------------------------------------------------------------

    def stream_utilization(self, chars: OpCharacteristics) -> float:
        """Average device utilisation of one stream running this kernel.

        Memory-bound kernels leave more of the compute resources idle (and
        vice versa), so their streams overlap slightly better.
        """
        return min(0.95, self.single_stream_utilization + 0.1 * (1.0 - chars.memory_bound))

    def serial_time(
        self,
        kernels: tuple[tuple[OpCharacteristics, GpuLaunchConfig], ...],
        *,
        repeats: int = 1,
    ) -> float:
        """Total time of running the kernels back to back (one stream)."""
        if repeats < 1:
            raise ValueError("repeats must be at least 1")
        return repeats * sum(self.kernel_time(c, cfg) for c, cfg in kernels)

    def corun_time(
        self,
        kernels: tuple[tuple[OpCharacteristics, GpuLaunchConfig], ...],
        *,
        repeats: int = 1,
    ) -> float:
        """Total time of running the kernels concurrently in separate streams.

        Each kernel alone keeps only ``single_stream_utilization`` of the
        GPU busy; concurrent streams fill the gaps until the total demand
        exceeds the whole device, at which point they slow each other down
        proportionally.
        """
        if repeats < 1:
            raise ValueError("repeats must be at least 1")
        if not kernels:
            raise ValueError("corun_time needs at least one kernel")
        alone = [self.kernel_time(c, cfg) for c, cfg in kernels]
        # Aggregate demand on the device; above 1.0 the streams contend and
        # every kernel stretches by the same factor.
        demand = sum(self.stream_utilization(c) for c, _ in kernels)
        stretch = max(1.0, demand)
        # Streams run concurrently; the slowest stream determines the span.
        return max(alone) * stretch * repeats
