"""Interference between co-running operations.

When the scheduler co-runs operations (Strategy 3) or packs small
operations onto hyper-threads (Strategy 4), two resources are shared:

* **cores** — threads of different operations landing on the same physical
  core share its issue slots.  A KNL core's vector units are essentially
  saturated by one thread of a dense kernel, so two heavyweight threads
  each make a bit more than half progress (the aggregate is > 1 only
  thanks to latency hiding, which grows with how memory-bound the code
  is);
* **memory bandwidth** — the chip-level bandwidth ceiling is divided among
  all streaming operations, stretching the memory-bound part of each.

The simulator used to call :func:`corun_slowdowns` — a from-scratch
recomputation over every running operation — on every scheduling event.
That function remains as the reference implementation (and for one-shot
queries), but the hot path now goes through :class:`ContentionState`,
which maintains per-core load, bandwidth demand totals and unpinned-pool
counts incrementally as operations are added and removed, and only
recomputes the slowdown factors whose inputs actually changed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.hardware.topology import Machine


@dataclass(frozen=True)
class RunningOpView:
    """The minimal view of a running operation needed by the contention model."""

    key: str
    core_ids: tuple[int, ...]
    threads: int
    #: Average bytes/second the op pulls from memory when running alone.
    bandwidth_demand: float
    #: Fraction of the op's busy time that is memory-bound.
    memory_bound_fraction: float
    #: The op's intrinsic memory-boundness (drives the SMT latency-hiding bonus).
    memory_bound_char: float
    #: True when the op's threads are pinned to their cores (the runtime's
    #: partitioned co-running and hyper-thread packing); False for
    #: TensorFlow's shared, unpinned thread pool.
    pinned: bool = True

    def __post_init__(self) -> None:
        if not self.core_ids:
            raise ValueError("a running op must occupy at least one core")
        if self.threads < 1:
            raise ValueError("threads must be at least 1")
        if self.bandwidth_demand < 0:
            raise ValueError("bandwidth_demand must be non-negative")
        if not (0.0 <= self.memory_bound_fraction <= 1.0):
            raise ValueError("memory_bound_fraction must lie in [0, 1]")


def _core_sharing_slowdown(
    views: Sequence[RunningOpView],
    machine: Machine,
) -> dict[str, float]:
    """Slowdown of each op from sharing physical cores with other threads."""
    # Threads each op places on each of its cores (may be fractional when the
    # thread count is not a multiple of the core count, and >1 when
    # oversubscribed).
    per_core_threads: dict[str, float] = {
        v.key: v.threads / len(v.core_ids) for v in views
    }
    load: dict[int, float] = {}
    for view in views:
        for core in view.core_ids:
            load[core] = load.get(core, 0.0) + per_core_threads[view.key]

    slowdowns: dict[str, float] = {}
    for view in views:
        own = per_core_threads[view.key]
        capacity = 0.0
        for core in view.core_ids:
            total = load[core]
            resident = max(1, round(total))
            aggregate = machine.smt.core_throughput(
                resident, memory_bound=view.memory_bound_char
            )
            # A thread can at most progress at single-thread speed, so the
            # op's share of this core is bounded by its own thread count on
            # the core even when the core is mostly idle.
            capacity += min(own, aggregate * (own / total))
        # The base duration assumed one dedicated core per thread, i.e. a
        # capacity equal to the thread count.
        slowdowns[view.key] = view.threads / capacity if capacity > 0 else float("inf")
    return slowdowns


#: Strength of the cache-thrashing / thread-migration interference between
#: unpinned thread pools sharing cores, per unit of foreign load.
UNPINNED_INTERFERENCE = 0.75
#: Additional interference per distinct co-running unpinned pool (pool
#: management, scheduler migration, allocator locks).
UNPINNED_POOL_INTERFERENCE = 0.3
#: Upper bound on the unpinned interference factor.
UNPINNED_INTERFERENCE_CAP = 2.6


def _unpinned_interference(
    views: Sequence[RunningOpView],
) -> dict[str, float]:
    """Extra slowdown from co-running *unpinned* thread pools.

    TensorFlow's inter-op parallelism runs several operations on one
    shared, unpinned intra-op pool: their threads migrate, interleave and
    evict each other's tile working sets.  The paper's runtime avoids this
    by giving co-running operations disjoint, pinned core partitions
    (Strategy 3) or dedicated SMT slots (Strategy 4) — those placements do
    not pay this penalty, which is a large part of why the runtime beats
    uniform inter-op parallelism (Table I vs Fig. 3).
    """
    per_core_threads: dict[str, float] = {
        v.key: v.threads / len(v.core_ids) for v in views
    }
    load: dict[int, float] = {}
    unpinned_on_core: dict[int, bool] = {}
    for view in views:
        for core in view.core_ids:
            load[core] = load.get(core, 0.0) + per_core_threads[view.key]
            if not view.pinned:
                unpinned_on_core[core] = True

    num_unpinned = sum(1 for v in views if not v.pinned)
    factors: dict[str, float] = {}
    for view in views:
        exposed = (not view.pinned) or any(
            unpinned_on_core.get(core, False) for core in view.core_ids
        )
        if not exposed:
            factors[view.key] = 1.0
            continue
        own = per_core_threads[view.key]
        foreign = sum(load[core] - own for core in view.core_ids) / len(view.core_ids)
        other_pools = max(0, num_unpinned - (0 if view.pinned else 1))
        factor = (
            1.0
            + UNPINNED_INTERFERENCE * max(0.0, foreign)
            + UNPINNED_POOL_INTERFERENCE * other_pools
        )
        factors[view.key] = min(UNPINNED_INTERFERENCE_CAP, factor)
    return factors


def _bandwidth_slowdown(
    views: Sequence[RunningOpView],
    machine: Machine,
) -> dict[str, float]:
    """Slowdown of each op from dividing the chip's memory bandwidth."""
    total_demand = sum(v.bandwidth_demand for v in views)
    ceiling = machine.memory.fast_bandwidth
    if total_demand <= ceiling or total_demand == 0.0:
        return {v.key: 1.0 for v in views}
    stretch = total_demand / ceiling
    return {
        v.key: (1.0 - v.memory_bound_fraction) + v.memory_bound_fraction * stretch
        for v in views
    }


def corun_slowdowns(
    views: Sequence[RunningOpView],
    machine: Machine,
) -> dict[str, float]:
    """Combined slowdown factor (>= about 1) for every running operation.

    A single operation running alone on dedicated cores gets a factor of
    exactly 1.0; sharing cores or exceeding the bandwidth ceiling raises
    it.  Factors slightly below 1.0 are possible when an operation placed
    two of *its own* threads per core (the small SMT aggregate gain).
    """
    if not views:
        return {}
    keys = [v.key for v in views]
    if len(set(keys)) != len(keys):
        raise ValueError("running op keys must be unique")
    core = _core_sharing_slowdown(views, machine)
    bandwidth = _bandwidth_slowdown(views, machine)
    unpinned = _unpinned_interference(views)
    return {key: core[key] * bandwidth[key] * unpinned[key] for key in keys}


class ContentionState:
    """Incrementally-maintained co-run slowdown factors.

    Semantically equivalent to calling :func:`corun_slowdowns` on the
    current set of running operations after every change (the test suite
    asserts this over randomized add/remove sequences), but instead of
    rebuilding the per-core load map, bandwidth total and unpinned-pool
    count from scratch on every event, the state is updated in place and
    only the operations whose factor inputs changed are recomputed.

    The per-core load is split into two components:

    * a **uniform** component from *full-span* operations whose core set
      covers the whole chip (TensorFlow's oversubscribed intra-op pool,
      or a DEDICATED core-filling operation).  These contribute the same
      per-core load everywhere, so adding/removing/recomputing them is
      O(1) instead of O(num_cores);
    * **per-core** loads from partial-span operations (the runtime's
      disjoint partitions and hyper-thread packing).  A partial operation
      that shares none of its cores with another partial operation sees a
      uniform total too, so its factor is also O(1); genuinely shared
      cores fall back to the exact per-core loop.

    Core ids must be integers in ``[0, machine.num_cores)`` (which is what
    :class:`~repro.hardware.affinity.CoreAllocator` hands out).
    """

    def __init__(self, machine: Machine) -> None:
        self._machine = machine
        self._smt = machine.smt
        self._ceiling = machine.memory.fast_bandwidth
        num_cores = machine.num_cores
        self._num_cores = num_cores
        self._views: dict[str, RunningOpView] = {}
        #: Per-op threads-per-core contribution (threads / len(core_ids)).
        self._own: dict[str, float] = {}
        #: Per-op launch sequence — the order the reference implementation
        #: folds contributions in (needed for exact tie-breaking sums).
        self._seq: dict[str, int] = {}
        self._next_seq = 0
        #: Keys of full-span ops (core set covers the whole chip), in
        #: insertion order, plus their summed uniform per-core load.
        self._full_keys: list[str] = []
        self._uniform_load = 0.0
        self._uniform_unpinned = 0
        #: Per-core load/residency of *partial-span* ops only.
        self._load: list[float] = [0.0] * num_cores
        self._residents: list[list[str]] = [[] for _ in range(num_cores)]
        self._unpinned_on_core: list[int] = [0] * num_cores
        self._num_partial = 0
        #: Per partial op: number of its cores hosting another partial op.
        self._shared_cores: dict[str, int] = {}
        self._num_unpinned = 0
        self._total_demand = 0.0
        self._factors: dict[str, float] = {}
        #: Memoised SMT core throughput keyed by (resident, memory_bound):
        #: the resident counts are tiny integers and the distinct
        #: memory-bound characteristics are few, so this cache is hit on
        #: nearly every recomputation.
        self._throughput_cache: dict[tuple[int, float], float] = {}

    def __len__(self) -> int:
        return len(self._views)

    def __contains__(self, key: str) -> bool:
        return key in self._views

    def slowdown(self, key: str) -> float:
        """Current slowdown factor of one running operation."""
        return self._factors[key]

    def slowdowns(self) -> dict[str, float]:
        """Current slowdown factors of every running operation."""
        return dict(self._factors)

    # -- incremental updates ---------------------------------------------------

    def add(self, view: RunningOpView) -> set[str]:
        """Add a running operation; returns the keys whose factor changed."""
        if view.key in self._views:
            raise ValueError(f"operation {view.key!r} is already running")
        own = view.threads / len(view.core_ids)
        bandwidth_was_active = self._total_demand > self._ceiling
        full_span = len(view.core_ids) == self._num_cores
        self._views[view.key] = view
        self._own[view.key] = own
        self._seq[view.key] = self._next_seq
        self._next_seq += 1
        affected: set[str] = set()
        if full_span:
            # A full-span op overlaps every other op's cores.
            affected.update(self._views)
            self._full_keys.append(view.key)
            self._uniform_load = self._fold_uniform_load()
            if not view.pinned:
                self._uniform_unpinned += 1
        else:
            load = self._load
            residents = self._residents
            shared_cores = self._shared_cores
            newly_shared = 0
            for core in view.core_ids:
                core_residents = residents[core]
                if core_residents:
                    affected.update(core_residents)
                    newly_shared += 1
                    if len(core_residents) == 1:
                        shared_cores[core_residents[0]] += 1
                core_residents.append(view.key)
                load[core] = self._fold_core_load(core_residents)
                if not view.pinned:
                    self._unpinned_on_core[core] += 1
            shared_cores[view.key] = newly_shared
            self._num_partial += 1
            # Full-span ops see every core, including this op's.
            affected.update(self._full_keys)
        self._total_demand = self._fold_total_demand()
        if not view.pinned:
            self._num_unpinned += 1
        affected.add(view.key)
        if self._spans_everyone(view, bandwidth_was_active):
            affected = set(self._views)
        for key in affected:
            self._recompute(key)
        return affected

    def remove(self, key: str) -> set[str]:
        """Remove a running operation; returns the keys whose factor changed."""
        view = self._views.pop(key, None)
        if view is None:
            raise KeyError(f"operation {key!r} is not running")
        own = self._own.pop(key)
        del self._seq[key]
        bandwidth_was_active = self._total_demand > self._ceiling
        full_span = len(view.core_ids) == self._num_cores
        affected: set[str] = set()
        if full_span:
            self._full_keys.remove(key)
            self._uniform_load = self._fold_uniform_load()
            if not view.pinned:
                self._uniform_unpinned -= 1
            affected.update(self._views)
        else:
            load = self._load
            residents = self._residents
            shared_cores = self._shared_cores
            for core in view.core_ids:
                core_residents = residents[core]
                core_residents.remove(key)
                if len(core_residents) == 1:
                    shared_cores[core_residents[0]] -= 1
                load[core] = self._fold_core_load(core_residents)
                affected.update(core_residents)
                if not view.pinned:
                    self._unpinned_on_core[core] -= 1
            del shared_cores[key]
            self._num_partial -= 1
            affected.update(self._full_keys)
        self._total_demand = self._fold_total_demand()
        if not view.pinned:
            self._num_unpinned -= 1
        del self._factors[key]
        if self._spans_everyone(view, bandwidth_was_active):
            affected = set(self._views)
        for other in affected:
            self._recompute(other)
        return affected

    def _fold_core_load(self, core_residents: list[str]) -> float:
        """Exact per-core load: left-fold of the residents' contributions.

        Residents are stored in launch order — the same order the
        reference implementation accumulates loads in — so this yields
        bit-identical values to a from-scratch rebuild.  Recomputing the
        fold on every change (instead of running ``+=``/``-=``) keeps
        float drift from ever crossing a ``round()`` tie in
        ``_recompute``; resident lists are short, so the fold is cheap.
        """
        total = 0.0
        own = self._own
        for resident in core_residents:
            total += own[resident]
        return total

    def _fold_uniform_load(self) -> float:
        """Exact uniform load: left-fold over the full-span ops."""
        total = 0.0
        own = self._own
        for key in self._full_keys:
            total += own[key]
        return total

    def _fold_total_demand(self) -> float:
        """Exact bandwidth total (compared against a hard ceiling, so it
        must not drift either): left-fold over the views in launch order."""
        total = 0.0
        for view in self._views.values():
            total += view.bandwidth_demand
        return total

    @staticmethod
    def _near_round_tie(total: float) -> bool:
        """Whether ``total`` sits within float-reordering distance of a
        ``round()`` half-tie (n + 0.5), where a last-ulp difference between
        the decomposed sum and the reference's interleaved fold would flip
        the SMT resident count."""
        doubled = total * 2.0
        nearest = round(doubled)
        return nearest % 2 == 1 and abs(doubled - nearest) < 2e-9

    def _exact_core_total(self, core_keys: list[str], extra_key: str | None) -> float:
        """The reference's bit-exact total for one core: contributions of
        every op covering it, folded in launch order."""
        keys = list(core_keys)
        keys.extend(self._full_keys)
        if extra_key is not None:
            keys.append(extra_key)
        keys.sort(key=self._seq.__getitem__)
        own = self._own
        total = 0.0
        for key in keys:
            total += own[key]
        return total

    def _spans_everyone(self, view: RunningOpView, bandwidth_was_active: bool) -> bool:
        """Whether adding/removing ``view`` invalidates every factor.

        Unpinned pools change the per-pool interference term of every
        other unpinned pool, and a bandwidth-demand change while the
        ceiling is (or was) exceeded changes the stretch applied to
        everyone.
        """
        if not view.pinned:
            return True
        if view.bandwidth_demand != 0.0:
            return bandwidth_was_active or self._total_demand > self._ceiling
        return False

    # -- factor recomputation ---------------------------------------------------

    def _core_throughput(self, resident: int, memory_bound: float) -> float:
        key = (resident, memory_bound)
        value = self._throughput_cache.get(key)
        if value is None:
            value = self._smt.core_throughput(resident, memory_bound=memory_bound)
            self._throughput_cache[key] = value
        return value

    def _recompute(self, key: str) -> None:
        view = self._views[key]
        own = self._own[key]
        num_cores_op = len(view.core_ids)
        full_span = num_cores_op == self._num_cores
        memory_bound = view.memory_bound_char
        uniform_load = self._uniform_load
        load = self._load

        # An op sees a uniform total on all of its cores when no *partial*
        # op shares any of them: full-span ops always contribute uniformly.
        if full_span:
            uniform = self._num_partial == 0
        else:
            uniform = self._shared_cores[key] == 0
        foreign = None

        # Core-sharing term (identical arithmetic to _core_sharing_slowdown;
        # uniform totals collapse the per-core sum to one term).  The
        # decomposed uniform + per-core sums can differ from the
        # reference's interleaved fold by a last ulp, which only matters
        # if the total sits on a round() half-tie — the _near_round_tie
        # guard recomputes those rare totals with the bit-exact fold.
        residents = self._residents
        if uniform:
            total = uniform_load if full_span else uniform_load + own
            if self._full_keys and not full_span and self._near_round_tie(total):
                total = self._exact_core_total([], key)
            elif full_span and self._near_round_tie(total):
                total = self._exact_core_total([], None)
            if total == own:  # sole occupant: own/total == 1.0 exactly
                aggregate = self._core_throughput(max(1, round(own)), memory_bound)
                capacity = num_cores_op * min(own, aggregate)
            else:
                aggregate = self._core_throughput(max(1, round(total)), memory_bound)
                capacity = num_cores_op * min(own, aggregate * (own / total))
            foreign = total - own
        elif full_span:
            capacity = 0.0
            foreign_sum = 0.0
            for core in range(num_cores_op):
                total = uniform_load + load[core]
                if self._near_round_tie(total):
                    total = self._exact_core_total(residents[core], None)
                aggregate = self._core_throughput(max(1, round(total)), memory_bound)
                capacity += min(own, aggregate * (own / total))
                foreign_sum += total - own
            foreign = foreign_sum / num_cores_op
        else:
            has_full = bool(self._full_keys)
            capacity = 0.0
            foreign_sum = 0.0
            for core in view.core_ids:
                total = uniform_load + load[core]
                if has_full and self._near_round_tie(total):
                    total = self._exact_core_total(residents[core], None)
                aggregate = self._core_throughput(max(1, round(total)), memory_bound)
                capacity += min(own, aggregate * (own / total))
                foreign_sum += total - own
            foreign = foreign_sum / num_cores_op
        factor = view.threads / capacity if capacity > 0 else float("inf")

        # Bandwidth term (identical arithmetic to _bandwidth_slowdown).
        total_demand = self._total_demand
        if total_demand > self._ceiling and total_demand != 0.0:
            stretch = total_demand / self._ceiling
            factor *= (
                1.0 - view.memory_bound_fraction
                + view.memory_bound_fraction * stretch
            )

        # Unpinned-pool term (identical arithmetic to _unpinned_interference).
        if self._num_unpinned:
            exposed = (not view.pinned) or self._exposed_to_unpinned(view, full_span)
            if exposed:
                other_pools = max(0, self._num_unpinned - (0 if view.pinned else 1))
                unpinned = (
                    1.0
                    + UNPINNED_INTERFERENCE * max(0.0, foreign)
                    + UNPINNED_POOL_INTERFERENCE * other_pools
                )
                factor *= min(UNPINNED_INTERFERENCE_CAP, unpinned)

        self._factors[key] = factor

    def _exposed_to_unpinned(self, view: RunningOpView, full_span: bool) -> bool:
        """Whether a pinned op shares at least one core with an unpinned op."""
        if self._uniform_unpinned:
            return True  # full-span unpinned pools overlap every core.
        if full_span:
            # Overlaps every core, so any partial unpinned op exposes it.
            return self._num_unpinned > self._uniform_unpinned
        unpinned_on_core = self._unpinned_on_core
        return any(unpinned_on_core[core] for core in view.core_ids)


def interference_loss(
    alone: Mapping[str, float],
    corun: Mapping[str, float],
) -> dict[str, float]:
    """Relative per-op performance loss of co-running versus running alone.

    Used by the runtime's interference tracker (Section III-D: the runtime
    records operations whose co-run loss is unexpectedly high and avoids
    co-running them again).
    """
    losses: dict[str, float] = {}
    for key, alone_time in alone.items():
        if key not in corun:
            continue
        if alone_time <= 0:
            raise ValueError(f"alone time for {key!r} must be positive")
        losses[key] = max(0.0, corun[key] / alone_time - 1.0)
    return losses
