"""Interference between co-running operations.

When the scheduler co-runs operations (Strategy 3) or packs small
operations onto hyper-threads (Strategy 4), two resources are shared:

* **cores** — threads of different operations landing on the same physical
  core share its issue slots.  A KNL core's vector units are essentially
  saturated by one thread of a dense kernel, so two heavyweight threads
  each make a bit more than half progress (the aggregate is > 1 only
  thanks to latency hiding, which grows with how memory-bound the code
  is);
* **memory bandwidth** — the chip-level bandwidth ceiling is divided among
  all streaming operations, stretching the memory-bound part of each.

The simulator calls :func:`corun_slowdowns` every time the set of running
operations changes and rescales every operation's remaining time by its
new slowdown factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.hardware.topology import Machine


@dataclass(frozen=True)
class RunningOpView:
    """The minimal view of a running operation needed by the contention model."""

    key: str
    core_ids: tuple[int, ...]
    threads: int
    #: Average bytes/second the op pulls from memory when running alone.
    bandwidth_demand: float
    #: Fraction of the op's busy time that is memory-bound.
    memory_bound_fraction: float
    #: The op's intrinsic memory-boundness (drives the SMT latency-hiding bonus).
    memory_bound_char: float
    #: True when the op's threads are pinned to their cores (the runtime's
    #: partitioned co-running and hyper-thread packing); False for
    #: TensorFlow's shared, unpinned thread pool.
    pinned: bool = True

    def __post_init__(self) -> None:
        if not self.core_ids:
            raise ValueError("a running op must occupy at least one core")
        if self.threads < 1:
            raise ValueError("threads must be at least 1")
        if self.bandwidth_demand < 0:
            raise ValueError("bandwidth_demand must be non-negative")
        if not (0.0 <= self.memory_bound_fraction <= 1.0):
            raise ValueError("memory_bound_fraction must lie in [0, 1]")


def _core_sharing_slowdown(
    views: Sequence[RunningOpView],
    machine: Machine,
) -> dict[str, float]:
    """Slowdown of each op from sharing physical cores with other threads."""
    # Threads each op places on each of its cores (may be fractional when the
    # thread count is not a multiple of the core count, and >1 when
    # oversubscribed).
    per_core_threads: dict[str, float] = {
        v.key: v.threads / len(v.core_ids) for v in views
    }
    load: dict[int, float] = {}
    for view in views:
        for core in view.core_ids:
            load[core] = load.get(core, 0.0) + per_core_threads[view.key]

    slowdowns: dict[str, float] = {}
    for view in views:
        own = per_core_threads[view.key]
        capacity = 0.0
        for core in view.core_ids:
            total = load[core]
            resident = max(1, round(total))
            aggregate = machine.smt.core_throughput(
                resident, memory_bound=view.memory_bound_char
            )
            # A thread can at most progress at single-thread speed, so the
            # op's share of this core is bounded by its own thread count on
            # the core even when the core is mostly idle.
            capacity += min(own, aggregate * (own / total))
        # The base duration assumed one dedicated core per thread, i.e. a
        # capacity equal to the thread count.
        slowdowns[view.key] = view.threads / capacity if capacity > 0 else float("inf")
    return slowdowns


#: Strength of the cache-thrashing / thread-migration interference between
#: unpinned thread pools sharing cores, per unit of foreign load.
UNPINNED_INTERFERENCE = 0.75
#: Additional interference per distinct co-running unpinned pool (pool
#: management, scheduler migration, allocator locks).
UNPINNED_POOL_INTERFERENCE = 0.3
#: Upper bound on the unpinned interference factor.
UNPINNED_INTERFERENCE_CAP = 2.6


def _unpinned_interference(
    views: Sequence[RunningOpView],
) -> dict[str, float]:
    """Extra slowdown from co-running *unpinned* thread pools.

    TensorFlow's inter-op parallelism runs several operations on one
    shared, unpinned intra-op pool: their threads migrate, interleave and
    evict each other's tile working sets.  The paper's runtime avoids this
    by giving co-running operations disjoint, pinned core partitions
    (Strategy 3) or dedicated SMT slots (Strategy 4) — those placements do
    not pay this penalty, which is a large part of why the runtime beats
    uniform inter-op parallelism (Table I vs Fig. 3).
    """
    per_core_threads: dict[str, float] = {
        v.key: v.threads / len(v.core_ids) for v in views
    }
    load: dict[int, float] = {}
    unpinned_on_core: dict[int, bool] = {}
    for view in views:
        for core in view.core_ids:
            load[core] = load.get(core, 0.0) + per_core_threads[view.key]
            if not view.pinned:
                unpinned_on_core[core] = True

    num_unpinned = sum(1 for v in views if not v.pinned)
    factors: dict[str, float] = {}
    for view in views:
        exposed = (not view.pinned) or any(
            unpinned_on_core.get(core, False) for core in view.core_ids
        )
        if not exposed:
            factors[view.key] = 1.0
            continue
        own = per_core_threads[view.key]
        foreign = sum(load[core] - own for core in view.core_ids) / len(view.core_ids)
        other_pools = max(0, num_unpinned - (0 if view.pinned else 1))
        factor = (
            1.0
            + UNPINNED_INTERFERENCE * max(0.0, foreign)
            + UNPINNED_POOL_INTERFERENCE * other_pools
        )
        factors[view.key] = min(UNPINNED_INTERFERENCE_CAP, factor)
    return factors


def _bandwidth_slowdown(
    views: Sequence[RunningOpView],
    machine: Machine,
) -> dict[str, float]:
    """Slowdown of each op from dividing the chip's memory bandwidth."""
    total_demand = sum(v.bandwidth_demand for v in views)
    ceiling = machine.memory.fast_bandwidth
    if total_demand <= ceiling or total_demand == 0.0:
        return {v.key: 1.0 for v in views}
    stretch = total_demand / ceiling
    return {
        v.key: (1.0 - v.memory_bound_fraction) + v.memory_bound_fraction * stretch
        for v in views
    }


def corun_slowdowns(
    views: Sequence[RunningOpView],
    machine: Machine,
) -> dict[str, float]:
    """Combined slowdown factor (>= about 1) for every running operation.

    A single operation running alone on dedicated cores gets a factor of
    exactly 1.0; sharing cores or exceeding the bandwidth ceiling raises
    it.  Factors slightly below 1.0 are possible when an operation placed
    two of *its own* threads per core (the small SMT aggregate gain).
    """
    if not views:
        return {}
    keys = [v.key for v in views]
    if len(set(keys)) != len(keys):
        raise ValueError("running op keys must be unique")
    core = _core_sharing_slowdown(views, machine)
    bandwidth = _bandwidth_slowdown(views, machine)
    unpinned = _unpinned_interference(views)
    return {key: core[key] * bandwidth[key] * unpinned[key] for key in keys}


def interference_loss(
    alone: Mapping[str, float],
    corun: Mapping[str, float],
) -> dict[str, float]:
    """Relative per-op performance loss of co-running versus running alone.

    Used by the runtime's interference tracker (Section III-D: the runtime
    records operations whose co-run loss is unexpectedly high and avoids
    co-running them again).
    """
    losses: dict[str, float] = {}
    for key, alone_time in alone.items():
        if key not in corun:
            continue
        if alone_time <= 0:
            raise ValueError(f"alone time for {key!r} must be positive")
        losses[key] = max(0.0, corun[key] / alone_time - 1.0)
    return losses
