"""Execution traces: per-operation records plus the event log."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.execsim.events import EventKind, SimulationEvent
from repro.hardware.affinity import AffinityMode


@dataclass(frozen=True)
class OpExecutionRecord:
    """How one operation instance actually ran inside a step."""

    op_name: str
    op_type: str
    threads: int
    affinity: AffinityMode
    start_time: float
    finish_time: float
    used_hyperthreads: bool = False

    def __post_init__(self) -> None:
        if self.finish_time < self.start_time:
            raise ValueError("finish_time must not precede start_time")
        if self.threads < 1:
            raise ValueError("threads must be at least 1")

    @property
    def duration(self) -> float:
        return self.finish_time - self.start_time


@dataclass
class ExecutionTrace:
    """Everything observed while simulating one training step."""

    step_name: str = "step"
    records: list[OpExecutionRecord] = field(default_factory=list)
    events: list[SimulationEvent] = field(default_factory=list)

    # -- recording ---------------------------------------------------------------

    def add_record(self, record: OpExecutionRecord) -> None:
        self.records.append(record)

    def add_event(self, event: SimulationEvent) -> None:
        if self.events and event.index != self.events[-1].index + 1:
            raise ValueError("event indices must be consecutive")
        if self.events and event.time < self.events[-1].time - 1e-12:
            raise ValueError("event times must be non-decreasing")
        self.events.append(event)

    # -- queries -----------------------------------------------------------------

    @property
    def makespan(self) -> float:
        """Wall-clock time of the step (last finish)."""
        if not self.records:
            return 0.0
        return max(r.finish_time for r in self.records)

    @property
    def total_op_time(self) -> float:
        """Sum of all individual operation durations."""
        return sum(r.duration for r in self.records)

    def record_for(self, op_name: str) -> OpExecutionRecord:
        for record in self.records:
            if record.op_name == op_name:
                return record
        raise KeyError(f"no record for operation {op_name!r}")

    def time_by_op_type(self) -> dict[str, float]:
        """Aggregate duration per operation type (Table VI's grouping)."""
        totals: dict[str, float] = {}
        for record in self.records:
            totals[record.op_type] = totals.get(record.op_type, 0.0) + record.duration
        return totals

    def top_op_types(self, n: int = 5) -> list[tuple[str, float]]:
        """The ``n`` most time-consuming operation types."""
        totals = self.time_by_op_type()
        return sorted(totals.items(), key=lambda kv: kv[1], reverse=True)[:n]

    def corunning_series(self) -> list[int]:
        """Number of co-running operations at each launch/finish event
        (the series Fig. 4 plots)."""
        return [
            e.corunning
            for e in self.events
            if e.kind in (EventKind.LAUNCH, EventKind.FINISH)
        ]

    def average_corunning(self) -> float:
        """Average of the co-running series (reported in Section IV-B)."""
        series = self.corunning_series()
        if not series:
            return 0.0
        return sum(series) / len(series)

    def threads_used_by(self, op_names: Iterable[str]) -> dict[str, int]:
        wanted = set(op_names)
        return {r.op_name: r.threads for r in self.records if r.op_name in wanted}

    def core_utilization(self, num_cores: int) -> float:
        """Fraction of core-time busy over the makespan (proxy for the
        hardware-utilisation improvements the paper reports)."""
        if num_cores <= 0:
            raise ValueError("num_cores must be positive")
        span = self.makespan
        if span <= 0:
            return 0.0
        busy = sum(min(r.threads, num_cores) * r.duration for r in self.records)
        return min(1.0, busy / (num_cores * span))
