"""Analytic execution-time model for a single operation.

The model combines the classic ingredients of manycore kernel
performance:

* an Amdahl serial fraction,
* parallel compute time bounded by the cores' sustained FLOP rate,
* memory time bounded by achievable bandwidth after L2 reuse (roofline),
* a per-thread parallelisation overhead (thread spawn, private buffer
  setup and reduction) that grows linearly with the thread count.

The last term is what creates the *interior optimum* of the
time-vs-threads curve: the optimal thread count grows roughly as
``sqrt(parallel_work / per_thread_overhead)``, so large operations want
the whole chip while small or reduction-heavy operations prefer a few
tens of threads — the central empirical observation of the paper
(Fig. 1, Table II).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.hardware.affinity import AffinityMode, ThreadPlacement
from repro.hardware.topology import Machine
from repro.ops.characteristics import OpCharacteristics


@dataclass(frozen=True)
class OpTimeBreakdown:
    """Execution time of one operation run, with its components.

    ``total`` is what the runtime observes; the components are useful for
    analysis and for the contention model (which needs to know how
    memory-bound the run was).
    """

    threads: int
    affinity: AffinityMode
    compute_time: float
    memory_time: float
    overhead_time: float
    bytes_from_memory: float
    total: float

    @property
    def memory_bound_fraction(self) -> float:
        """Fraction of the core time that is memory-bound."""
        busy = self.compute_time + self.memory_time
        if busy <= 0:
            return 0.0
        return self.memory_time / busy

    @property
    def bandwidth_demand(self) -> float:
        """Average bytes/second pulled from memory over the run."""
        if self.total <= 0:
            return 0.0
        return self.bytes_from_memory / self.total


def execution_time(
    chars: OpCharacteristics,
    machine: Machine,
    threads: int,
    affinity: AffinityMode = AffinityMode.SHARED,
    *,
    reconfigured: bool = False,
) -> OpTimeBreakdown:
    """Time to execute an operation with ``threads`` threads.

    Parameters
    ----------
    chars:
        The operation's cost characteristics.
    machine:
        The machine model.
    threads:
        Number of threads used for the operation.  May exceed the number
        of physical cores (oversubscription, e.g. TensorFlow's default of
        one thread per logical CPU); the extra threads only add overhead
        here — the sharing slowdown is applied by the simulator, which
        knows the actual placement.
    affinity:
        Tile placement of the threads (cache sharing or not).
    reconfigured:
        True when the operation runs with a different thread count than
        its previous execution; adds the thread-pool reconfiguration
        penalty that Strategy 2 is designed to avoid.
    """
    if threads < 1:
        raise ValueError("threads must be at least 1")
    topo = machine.topology

    # --- placement-derived quantities -------------------------------------
    physical_threads = min(threads, topo.num_cores)
    try:
        placement = ThreadPlacement.plan(physical_threads, affinity, topo)
    except ValueError:
        # Infeasible placements (e.g. 40 "spread" threads on 34 tiles) are
        # silently promoted to the shared layout; the paper's search space
        # only contains feasible combinations, but user code may ask.
        placement = ThreadPlacement.plan(physical_threads, AffinityMode.SHARED, topo)
    tiles_used = placement.tiles_used
    cores_used = placement.cores_used

    # --- compute component --------------------------------------------------
    single_core_seconds = chars.flops / topo.effective_flops_per_core
    usable_parallelism = min(threads, chars.parallel_grains)
    serial = chars.serial_fraction
    compute_time = single_core_seconds * (serial + (1.0 - serial) / usable_parallelism)

    # --- memory component ---------------------------------------------------
    working_set_per_tile = chars.working_set / max(tiles_used, 1)
    reuse = machine.cache.reuse_fraction(
        working_set_per_tile,
        siblings_share_tile=placement.siblings_share_tile,
        reuse_potential=chars.reuse_potential,
    )
    bytes_from_memory = chars.bytes_touched * (1.0 - reuse)
    bandwidth = machine.memory.achievable_bandwidth(cores_used)
    memory_time = bytes_from_memory / bandwidth if bandwidth > 0 else float("inf")

    # --- overheads ------------------------------------------------------------
    overhead = (
        machine.op_dispatch_cost
        + machine.thread_spawn_cost * threads
        + machine.sync_cost * math.log2(threads + 1)
        + chars.per_thread_overhead * threads
    )
    if reconfigured:
        overhead += machine.reconfiguration_cost

    # Compute and memory phases overlap (hardware prefetch, out-of-order
    # execution), so the core time is the roofline maximum of the two.
    core_time = max(compute_time, memory_time)
    total = core_time + overhead
    return OpTimeBreakdown(
        threads=threads,
        affinity=affinity,
        compute_time=compute_time,
        memory_time=memory_time,
        overhead_time=overhead,
        bytes_from_memory=bytes_from_memory,
        total=total,
    )


@lru_cache(maxsize=262144)
def _execution_time_cached(
    chars: OpCharacteristics,
    machine: Machine,
    threads: int,
    affinity: AffinityMode,
    reconfigured: bool,
) -> OpTimeBreakdown:
    return execution_time(chars, machine, threads, affinity, reconfigured=reconfigured)


def execution_time_cached(
    chars: OpCharacteristics,
    machine: Machine,
    threads: int,
    affinity: AffinityMode = AffinityMode.SHARED,
    *,
    reconfigured: bool = False,
) -> OpTimeBreakdown:
    """Memoised :func:`execution_time`.

    The model is pure, ``OpCharacteristics``/``Machine`` are frozen, and a
    characteristics value already encodes everything an operation's
    signature determines — so the cache key
    ``(chars, machine, threads, affinity, reconfigured)`` is exactly the
    per-op ``(signature, threads, affinity, reconfigured)`` memoisation
    the scheduler's inner loop needs, while staying correct for two
    instances that share a signature but differ in attrs.  Simulation
    sweeps re-evaluate the same configurations thousands of times, so
    this avoids recomputing the roofline model on every launch.
    """
    try:
        return _execution_time_cached(chars, machine, threads, affinity, reconfigured)
    except TypeError:
        # Unhashable custom machine/characteristics: fall back to uncached.
        return execution_time(chars, machine, threads, affinity, reconfigured=reconfigured)


def execution_time_cache_info():
    """Hit/miss statistics of the memoised execution-time model."""
    return _execution_time_cached.cache_info()


def clear_execution_time_cache() -> None:
    """Drop all memoised execution times (tests and long sweeps)."""
    _execution_time_cached.cache_clear()


@dataclass(frozen=True)
class _AffinityGridTable:
    """Machine-only, per-thread-count quantities of one affinity's grid.

    Everything an exhaustive sweep needs that does not depend on the
    operation: placements, bandwidths and the machine part of the
    overhead term.  Computed once per (machine, affinity) and reused for
    every signature, so the per-op grid pass is pure array arithmetic
    plus one cache-model call per thread count.
    """

    counts: tuple[int, ...]
    #: Thread counts as float64 (operand of the vector arithmetic).
    counts_f: np.ndarray
    tiles_used: np.ndarray
    siblings: tuple[bool, ...]
    #: ``achievable_bandwidth(cores_used)`` per count (exact: min/multiply).
    bandwidth: np.ndarray
    #: ``dispatch + spawn*threads + sync*log2(threads+1)`` per count,
    #: accumulated in exactly the scalar expression's association order so
    #: adding the op's ``per_thread_overhead*threads`` reproduces
    #: :func:`execution_time` bit-for-bit.
    overhead_base: np.ndarray


@lru_cache(maxsize=64)
def _affinity_grid_table(machine: Machine, affinity: AffinityMode) -> _AffinityGridTable:
    topo = machine.topology
    counts = ThreadPlacement.feasible_thread_counts(affinity, topo)
    placements = [ThreadPlacement.plan(count, affinity, topo) for count in counts]
    bandwidth = [machine.memory.achievable_bandwidth(p.cores_used) for p in placements]
    overhead_base = [
        machine.op_dispatch_cost
        + machine.thread_spawn_cost * count
        + machine.sync_cost * math.log2(count + 1)
        for count in counts
    ]
    return _AffinityGridTable(
        counts=counts,
        counts_f=np.array(counts, dtype=np.float64),
        tiles_used=np.array([p.tiles_used for p in placements], dtype=np.int64),
        siblings=tuple(p.siblings_share_tile for p in placements),
        bandwidth=np.array(bandwidth, dtype=np.float64),
        overhead_base=np.array(overhead_base, dtype=np.float64),
    )


def _grid_breakdowns(
    chars: OpCharacteristics, machine: Machine, affinity: AffinityMode
) -> list[OpTimeBreakdown]:
    """Characterise the whole thread-count grid of one affinity in one pass.

    Every arithmetic step mirrors :func:`execution_time` operand-for-
    operand with IEEE-exact vector operations (+, -, *, /, min, max), and
    the two non-trivially-rounded ingredients — ``log2`` in the overhead
    and ``pow`` inside :meth:`CacheModel.fit_fraction` — go through the
    very same scalar code paths, so the grid is bit-identical to the
    per-case model.
    """
    table = _affinity_grid_table(machine, affinity)
    topo = machine.topology

    single_core_seconds = chars.flops / topo.effective_flops_per_core
    serial = chars.serial_fraction
    usable = np.minimum(table.counts_f, float(chars.parallel_grains))
    compute_time = single_core_seconds * (serial + (1.0 - serial) / usable)

    working_set = chars.working_set
    reuse = np.array(
        [
            machine.cache.reuse_fraction(
                working_set / int(tiles),
                siblings_share_tile=siblings,
                reuse_potential=chars.reuse_potential,
            )
            for tiles, siblings in zip(table.tiles_used, table.siblings)
        ],
        dtype=np.float64,
    )
    bytes_from_memory = chars.bytes_touched * (1.0 - reuse)
    memory_time = bytes_from_memory / table.bandwidth

    overhead = table.overhead_base + chars.per_thread_overhead * table.counts_f
    total = np.maximum(compute_time, memory_time) + overhead

    return [
        OpTimeBreakdown(
            threads=count,
            affinity=affinity,
            compute_time=float(compute_time[i]),
            memory_time=float(memory_time[i]),
            overhead_time=float(overhead[i]),
            bytes_from_memory=float(bytes_from_memory[i]),
            total=float(total[i]),
        )
        for i, count in enumerate(table.counts)
    ]


@lru_cache(maxsize=8192)
def _sweep_grid_cached(
    chars: OpCharacteristics,
    machine: Machine,
    affinities: tuple[AffinityMode, ...],
) -> tuple[tuple[tuple[int, AffinityMode], OpTimeBreakdown], ...]:
    items: list[tuple[tuple[int, AffinityMode], OpTimeBreakdown]] = []
    for affinity in affinities:
        for breakdown in _grid_breakdowns(chars, machine, affinity):
            items.append(((breakdown.threads, affinity), breakdown))
    return tuple(items)


def sweep_thread_counts(
    chars: OpCharacteristics,
    machine: Machine,
    *,
    affinities: tuple[AffinityMode, ...] = (AffinityMode.SPREAD, AffinityMode.SHARED),
) -> dict[tuple[int, AffinityMode], OpTimeBreakdown]:
    """Execution time for every feasible (threads, affinity) prediction case.

    On the full KNL machine this is the 68-case space of Section III-B:
    1..34 threads spread one-per-tile plus even counts 2..68 packed
    two-per-tile.  The grid is characterised in a single vectorised pass
    per affinity (see :func:`_grid_breakdowns`) that is bit-identical to
    calling :func:`execution_time` per case; unhashable custom
    machines/characteristics fall back to exactly that per-case loop.
    """
    try:
        return dict(_sweep_grid_cached(chars, machine, tuple(affinities)))
    except TypeError:
        results: dict[tuple[int, AffinityMode], OpTimeBreakdown] = {}
        for affinity in affinities:
            for count in ThreadPlacement.feasible_thread_counts(affinity, machine.topology):
                results[(count, affinity)] = execution_time_cached(chars, machine, count, affinity)
        return results


def optimal_configuration(
    chars: OpCharacteristics,
    machine: Machine,
) -> tuple[int, AffinityMode, float]:
    """Exhaustively find the (threads, affinity) with the shortest time.

    This is the ground truth the hill-climbing model approximates; the
    experiments use it to measure prediction accuracy.
    """
    sweep = sweep_thread_counts(chars, machine)
    (threads, affinity), breakdown = min(sweep.items(), key=lambda item: item[1].total)
    return threads, affinity, breakdown.total
