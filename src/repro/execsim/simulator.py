"""Discrete-event simulator of one training step.

The simulator executes a :class:`~repro.graph.dataflow.DataflowGraph`
under a pluggable :class:`SchedulingPolicy`.  It owns the clock, the core
allocator, dependency tracking and the contention model; the policy only
decides *which ready operations to launch, with how many threads and on
which kind of placement* — exactly the decision surface of the paper's
runtime (and of the TensorFlow baselines it compares against).

Two execution paths exist:

* the default **incremental** path keeps a :class:`ContentionState` up to
  date as operations launch and finish, caches each operation's
  characterization and contention view at launch time, advances progress
  lazily (an operation's remaining time only needs touching when its
  slowdown factor actually changes) and tracks the earliest finish with a
  heap — O(changed factors) per event instead of O(running · cores);
* the **reference** path (``StepSimulator(machine, incremental=False)``)
  preserves the original from-scratch recomputation.  The test suite and
  the benchmark harness assert that both produce identical ``step_time``
  (within float round-off) for every scenario.
"""

from __future__ import annotations

import enum
import heapq
from bisect import insort
from dataclasses import dataclass, field
from typing import Protocol, Sequence

from repro.execsim.contention import ContentionState, RunningOpView, corun_slowdowns
from repro.execsim.events import EventKind, SimulationEvent
from repro.execsim.op_runtime import OpTimeBreakdown, execution_time, execution_time_cached
from repro.execsim.trace import ExecutionTrace, OpExecutionRecord
from repro.graph.dataflow import DataflowGraph
from repro.graph.op import OpInstance
from repro.hardware.affinity import AffinityMode, CoreAllocation, CoreAllocator
from repro.hardware.topology import Machine
from repro.ops.cost import CharacterizationCache, characterize_cached
from repro.ops.registry import OpRegistry
from repro.utils.seeding import make_rng


class PlacementKind(enum.Enum):
    """How an operation's threads are placed on the chip."""

    #: Exclusive primary SMT slots (the runtime's normal co-run placement).
    DEDICATED = "dedicated"
    #: Secondary SMT slots of cores whose primary slot is busy (Strategy 4).
    HYPERTHREAD = "hyperthread"
    #: All physical cores, shared with whatever else is running (TensorFlow's
    #: uniform intra-op pool, possibly oversubscribed).
    OVERSUBSCRIBED = "oversubscribed"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class LaunchRequest:
    """A policy's request to start one ready operation."""

    op_name: str
    threads: int
    affinity: AffinityMode = AffinityMode.SHARED
    placement: PlacementKind = PlacementKind.DEDICATED

    def __post_init__(self) -> None:
        if self.threads < 1:
            raise ValueError("threads must be at least 1")


@dataclass(frozen=True)
class RunningOpInfo:
    """Read-only view of a running operation exposed to policies."""

    op: OpInstance
    threads: int
    placement: PlacementKind
    start_time: float
    predicted_finish: float
    cores: int


@dataclass(frozen=True)
class SchedulingContext:
    """Everything a policy may look at when deciding what to launch."""

    time: float
    ready: tuple[OpInstance, ...]
    running: tuple[RunningOpInfo, ...]
    free_cores: int
    free_hyperthread_cores: int
    machine: Machine

    @property
    def any_core_filling_op(self) -> bool:
        """True when a running operation occupies every physical core."""
        return any(r.cores >= self.machine.num_cores for r in self.running)


class SchedulingPolicy(Protocol):
    """The interface both the baselines and the paper's runtime implement."""

    name: str

    def on_step_begin(self, graph: DataflowGraph, machine: Machine) -> None:
        """Called once before the step starts."""

    def select_launches(self, context: SchedulingContext) -> Sequence[LaunchRequest]:
        """Return operations to launch now (possibly empty)."""


@dataclass
class StepResult:
    """Outcome of simulating one training step."""

    policy_name: str
    graph_name: str
    step_time: float
    trace: ExecutionTrace
    forced_launches: int = 0

    def speedup_over(self, other: "StepResult") -> float:
        """Speedup of this result relative to ``other`` (other/self)."""
        if self.step_time <= 0:
            raise ValueError("step_time must be positive to compute a speedup")
        return other.step_time / self.step_time


@dataclass
class _Running:
    op: OpInstance
    request: LaunchRequest
    allocation: CoreAllocation | None
    core_ids: tuple[int, ...]
    breakdown: OpTimeBreakdown
    base_duration: float
    start_time: float
    remaining_fraction: float = 1.0
    slowdown: float = 1.0
    last_update: float = 0.0
    #: Launch sequence number — the heap tie-breaker that reproduces the
    #: reference implementation's insertion-order min() scan.
    seq: int = 0
    #: Contention view cached at launch (characterization runs once).
    view: RunningOpView | None = None
    #: Absolute predicted finish time; only changes when slowdown changes.
    finish_time: float = 0.0
    #: Cached RunningOpInfo handed to policies, invalidated on slowdown change.
    info: RunningOpInfo | None = field(default=None, compare=False)

    def predicted_finish(self, now: float) -> float:
        return now + self.remaining_fraction * self.base_duration * self.slowdown


class StepSimulator:
    """Simulates training steps of a dataflow graph on a machine model.

    Parameters
    ----------
    machine:
        The machine model (usually :func:`repro.hardware.knl_machine`).
    registry:
        Optional op-cost registry; defaults to the built-in catalog.
    noise_sigma:
        Multiplicative log-normal noise applied to every operation's base
        duration (models run-to-run measurement variation during
        profiling).  Zero (the default) keeps the simulation fully
        deterministic.
    seed:
        Seed for the noise generator.
    incremental:
        Use the incremental contention/progress fast path (the default).
        ``False`` selects the original from-scratch reference
        implementation; both produce identical results and the reference
        is kept for equivalence tests and benchmark baselines.
    """

    def __init__(
        self,
        machine: Machine,
        *,
        registry: OpRegistry | None = None,
        noise_sigma: float = 0.0,
        seed: int = 0,
        incremental: bool = True,
    ) -> None:
        if noise_sigma < 0:
            raise ValueError("noise_sigma must be non-negative")
        self.machine = machine
        self.registry = registry
        self.noise_sigma = noise_sigma
        self.incremental = incremental
        self._rng = make_rng(seed)
        #: Per-simulator characterization memo (covers custom registries,
        #: which the process-wide ``characterize_cached`` cannot serve).
        self._registry_cache = (
            CharacterizationCache(registry) if registry is not None else None
        )

    # -- helpers -------------------------------------------------------------

    def _characterize(self, op: OpInstance):
        if self._registry_cache is None:
            return characterize_cached(op)
        return self._registry_cache(op)

    def _characterize_reference(self, op: OpInstance):
        """Seed-faithful characterization: custom registries are uncached."""
        if self.registry is None:
            return characterize_cached(op)
        return self.registry.estimate(op)

    def _noisy(self, duration: float) -> float:
        if self.noise_sigma == 0.0:
            return duration
        return float(duration * self._rng.lognormal(mean=0.0, sigma=self.noise_sigma))

    # -- main entry point ------------------------------------------------------

    def run_step(
        self,
        graph: DataflowGraph,
        policy: SchedulingPolicy,
        *,
        step_name: str = "step",
    ) -> StepResult:
        """Simulate one training step of ``graph`` under ``policy``."""
        graph.validate()
        policy.on_step_begin(graph, self.machine)
        if self.incremental:
            return self._run_step_incremental(graph, policy, step_name)
        return self._run_step_reference(graph, policy, step_name)

    # -- incremental fast path --------------------------------------------------

    def _run_step_incremental(
        self,
        graph: DataflowGraph,
        policy: SchedulingPolicy,
        step_name: str,
    ) -> StepResult:
        machine = self.machine
        allocator = CoreAllocator(machine.topology)
        trace = ExecutionTrace(step_name=step_name)
        completed: set[str] = set()
        pending: set[str] = {op.name for op in graph}
        ready: set[str] = set(graph.sources())
        #: Ready names kept sorted so context construction avoids re-sorting.
        ready_sorted: list[str] = sorted(ready)
        running: dict[str, _Running] = {}
        contention = ContentionState(machine)
        #: Earliest-finish heap of (finish_time, launch_seq, name).  Entries
        #: go stale when a slowdown change moves an op's finish; stale
        #: entries are detected by comparing against the op's current
        #: ``finish_time`` and skipped lazily.
        finish_heap: list[tuple[float, int, str]] = []
        #: thread count last used per operation type (Strategy 2 / reconfiguration).
        last_threads: dict[str, int] = {}
        now = 0.0
        event_index = 0
        launch_seq = 0
        forced_launches = 0

        def emit(kind: EventKind, op_name: str, threads: int = 0) -> None:
            nonlocal event_index
            busy = machine.num_cores - allocator.free_cores
            trace.add_event(
                SimulationEvent(
                    index=event_index,
                    time=now,
                    kind=kind,
                    op_name=op_name,
                    corunning=len(running),
                    busy_cores=busy,
                    threads=threads,
                )
            )
            event_index += 1

        def build_context() -> SchedulingContext:
            ready_ops = tuple(graph.op(n) for n in ready_sorted)
            running_info: list[RunningOpInfo] = []
            for r in running.values():
                info = r.info
                if info is None:
                    info = RunningOpInfo(
                        op=r.op,
                        threads=r.request.threads,
                        placement=r.request.placement,
                        start_time=r.start_time,
                        predicted_finish=r.finish_time,
                        cores=len(r.core_ids),
                    )
                    r.info = info
                running_info.append(info)
            return SchedulingContext(
                time=now,
                ready=ready_ops,
                running=tuple(running_info),
                free_cores=allocator.free_cores,
                free_hyperthread_cores=allocator.free_hyperthread_cores,
                machine=machine,
            )

        def apply_factor_changes(changed: set[str]) -> None:
            """Re-time the ops whose contention factor just changed.

            Progress is advanced lazily: an op's ``remaining_fraction``
            only needs updating at the moments its slowdown changes
            (between those moments its absolute finish time is constant,
            so the heap entry stays valid).
            """
            for name in changed:
                r = running.get(name)
                if r is None:
                    continue
                factor = contention.slowdown(name)
                elapsed = now - r.last_update
                if elapsed > 0:
                    duration = r.base_duration * r.slowdown
                    r.remaining_fraction = max(
                        0.0, r.remaining_fraction - elapsed / duration
                    )
                    r.last_update = now
                r.slowdown = factor
                finish = now + r.remaining_fraction * r.base_duration * factor
                # NaN-initialised finish_time guarantees the first pass
                # pushes; afterwards an unchanged finish means the existing
                # heap entry is still valid.
                if finish != r.finish_time:
                    r.finish_time = finish
                    heapq.heappush(finish_heap, (finish, r.seq, name))
                r.info = None

        def try_launch(request: LaunchRequest) -> bool:
            nonlocal launch_seq
            op = graph.op(request.op_name)
            if request.op_name not in ready:
                raise ValueError(
                    f"policy tried to launch {request.op_name!r} which is not ready"
                )
            allocation: CoreAllocation | None
            if request.placement is PlacementKind.DEDICATED:
                cores = min(request.threads, allocator.free_cores)
                if cores <= 0:
                    return False
                allocation = allocator.allocate(cores)
                core_ids = allocation.core_ids
            elif request.placement is PlacementKind.HYPERTHREAD:
                cores = min(request.threads, allocator.free_hyperthread_cores)
                if cores <= 0:
                    return False
                allocation = allocator.allocate_hyperthreads(cores)
                core_ids = allocation.core_ids
            else:  # OVERSUBSCRIBED — share every physical core, bypassing the allocator.
                allocation = None
                core_ids = tuple(range(machine.num_cores))

            chars = self._characterize(op)
            reconfigured = (
                op.op_type in last_threads and last_threads[op.op_type] != request.threads
            )
            breakdown = execution_time_cached(
                chars,
                machine,
                request.threads,
                request.affinity,
                reconfigured=reconfigured and op.is_tunable,
            )
            last_threads[op.op_type] = request.threads
            base = self._noisy(breakdown.total)
            view = RunningOpView(
                key=request.op_name,
                core_ids=core_ids,
                threads=request.threads,
                bandwidth_demand=breakdown.bandwidth_demand,
                memory_bound_fraction=breakdown.memory_bound_fraction,
                memory_bound_char=chars.memory_bound,
                pinned=request.placement is not PlacementKind.OVERSUBSCRIBED,
            )
            r = _Running(
                op=op,
                request=request,
                allocation=allocation,
                core_ids=core_ids,
                breakdown=breakdown,
                base_duration=base,
                start_time=now,
                last_update=now,
                seq=launch_seq,
                view=view,
                finish_time=float("nan"),
            )
            launch_seq += 1
            running[request.op_name] = r
            ready.discard(request.op_name)
            ready_sorted.remove(request.op_name)
            emit(EventKind.LAUNCH, request.op_name, threads=request.threads)
            apply_factor_changes(contention.add(view))
            return True

        emit(EventKind.STEP_BEGIN, "")

        while pending:
            # --- launch phase: keep asking the policy until it stops launching.
            launched_any = True
            while launched_any and ready:
                launched_any = False
                context = build_context()
                requests = list(policy.select_launches(context))
                for request in requests:
                    if request.op_name in running or request.op_name in completed:
                        continue
                    if try_launch(request):
                        launched_any = True

            # --- deadlock guard: never let the step stall with work pending.
            if not running:
                if not ready:
                    raise RuntimeError(
                        f"graph {graph.name!r} cannot make progress: "
                        f"{len(pending)} pending ops but none ready"
                    )
                fallback_name = ready_sorted[0]
                fallback_threads = max(1, allocator.free_cores)
                forced_launches += 1
                try_launch(
                    LaunchRequest(
                        op_name=fallback_name,
                        threads=fallback_threads,
                        affinity=AffinityMode.SHARED,
                        placement=PlacementKind.DEDICATED,
                    )
                )

            # --- advance time to the earliest finish (skipping stale entries).
            while True:
                finish_time, seq, finishing_name = heapq.heappop(finish_heap)
                r = running.get(finishing_name)
                if r is not None and r.finish_time == finish_time:
                    break
            now = finish_time

            # --- retire the finished operation.
            del running[finishing_name]
            if r.allocation is not None:
                allocator.release(r.allocation)
            completed.add(finishing_name)
            pending.discard(finishing_name)
            trace.add_record(
                OpExecutionRecord(
                    op_name=r.op.name,
                    op_type=r.op.op_type,
                    threads=r.request.threads,
                    affinity=r.request.affinity,
                    start_time=r.start_time,
                    finish_time=now,
                    used_hyperthreads=r.request.placement is PlacementKind.HYPERTHREAD,
                )
            )
            emit(EventKind.FINISH, finishing_name, threads=r.request.threads)

            # --- newly ready operations.
            for succ in graph.successors(finishing_name):
                if succ in completed or succ in running or succ in ready:
                    continue
                if all(dep in completed for dep in graph.predecessors(succ)):
                    ready.add(succ)
                    insort(ready_sorted, succ)

            apply_factor_changes(contention.remove(finishing_name))

        emit(EventKind.STEP_END, "")
        return StepResult(
            policy_name=getattr(policy, "name", policy.__class__.__name__),
            graph_name=graph.name,
            step_time=now,
            trace=trace,
            forced_launches=forced_launches,
        )

    # -- reference implementation ------------------------------------------------

    def _run_step_reference(
        self,
        graph: DataflowGraph,
        policy: SchedulingPolicy,
        step_name: str,
    ) -> StepResult:
        """The original from-scratch implementation, kept verbatim.

        Recomputes the full contention model on every event and
        re-characterizes every running op on every refresh; the
        incremental path is asserted equivalent to this one by the test
        suite and benchmarked against it by the perf harness.
        """
        allocator = CoreAllocator(self.machine.topology)
        trace = ExecutionTrace(step_name=step_name)
        completed: set[str] = set()
        pending: set[str] = {op.name for op in graph}
        ready: set[str] = set(graph.sources())
        running: dict[str, _Running] = {}
        #: thread count last used per operation type (Strategy 2 / reconfiguration).
        last_threads: dict[str, int] = {}
        now = 0.0
        event_index = 0
        forced_launches = 0

        def emit(kind: EventKind, op_name: str, threads: int = 0) -> None:
            nonlocal event_index
            busy = self.machine.num_cores - allocator.free_cores
            trace.add_event(
                SimulationEvent(
                    index=event_index,
                    time=now,
                    kind=kind,
                    op_name=op_name,
                    corunning=len(running),
                    busy_cores=busy,
                    threads=threads,
                )
            )
            event_index += 1

        def build_context() -> SchedulingContext:
            ready_ops = tuple(sorted((graph.op(n) for n in ready), key=lambda o: o.name))
            running_info = tuple(
                RunningOpInfo(
                    op=r.op,
                    threads=r.request.threads,
                    placement=r.request.placement,
                    start_time=r.start_time,
                    predicted_finish=r.predicted_finish(now),
                    cores=len(r.core_ids),
                )
                for r in running.values()
            )
            return SchedulingContext(
                time=now,
                ready=ready_ops,
                running=running_info,
                free_cores=allocator.free_cores,
                free_hyperthread_cores=allocator.free_hyperthread_cores,
                machine=self.machine,
            )

        def update_progress() -> None:
            """Advance every running op's completed fraction up to ``now``."""
            for r in running.values():
                elapsed = now - r.last_update
                if elapsed > 0:
                    duration = r.base_duration * r.slowdown
                    r.remaining_fraction = max(
                        0.0, r.remaining_fraction - elapsed / duration
                    )
                    r.last_update = now

        def refresh_slowdowns() -> None:
            """Recompute contention factors after the running set changed."""
            if not running:
                return
            views = [
                RunningOpView(
                    key=name,
                    core_ids=r.core_ids,
                    threads=r.request.threads,
                    bandwidth_demand=r.breakdown.bandwidth_demand,
                    memory_bound_fraction=r.breakdown.memory_bound_fraction,
                    memory_bound_char=self._characterize_reference(r.op).memory_bound,
                    pinned=r.request.placement is not PlacementKind.OVERSUBSCRIBED,
                )
                for name, r in running.items()
            ]
            factors = corun_slowdowns(views, self.machine)
            for name, r in running.items():
                r.slowdown = factors[name]

        def try_launch(request: LaunchRequest) -> bool:
            op = graph.op(request.op_name)
            if request.op_name not in ready:
                raise ValueError(
                    f"policy tried to launch {request.op_name!r} which is not ready"
                )
            allocation: CoreAllocation | None
            if request.placement is PlacementKind.DEDICATED:
                cores = min(request.threads, allocator.free_cores)
                if cores <= 0:
                    return False
                allocation = allocator.allocate(cores)
                core_ids = allocation.core_ids
            elif request.placement is PlacementKind.HYPERTHREAD:
                cores = min(request.threads, allocator.free_hyperthread_cores)
                if cores <= 0:
                    return False
                allocation = allocator.allocate_hyperthreads(cores)
                core_ids = allocation.core_ids
            else:  # OVERSUBSCRIBED — share every physical core, bypassing the allocator.
                allocation = None
                core_ids = tuple(range(self.machine.num_cores))

            chars = self._characterize_reference(op)
            reconfigured = (
                op.op_type in last_threads and last_threads[op.op_type] != request.threads
            )
            breakdown = execution_time(
                chars,
                self.machine,
                request.threads,
                request.affinity,
                reconfigured=reconfigured and op.is_tunable,
            )
            last_threads[op.op_type] = request.threads
            base = self._noisy(breakdown.total)
            running[request.op_name] = _Running(
                op=op,
                request=request,
                allocation=allocation,
                core_ids=core_ids,
                breakdown=breakdown,
                base_duration=base,
                start_time=now,
                last_update=now,
            )
            ready.discard(request.op_name)
            emit(EventKind.LAUNCH, request.op_name, threads=request.threads)
            return True

        emit(EventKind.STEP_BEGIN, "")

        while pending:
            # --- launch phase: keep asking the policy until it stops launching.
            launched_any = True
            while launched_any and ready:
                launched_any = False
                context = build_context()
                requests = list(policy.select_launches(context))
                for request in requests:
                    if request.op_name in running or request.op_name in completed:
                        continue
                    if try_launch(request):
                        launched_any = True
                if launched_any:
                    update_progress()
                    refresh_slowdowns()

            # --- deadlock guard: never let the step stall with work pending.
            if not running:
                if not ready:
                    raise RuntimeError(
                        f"graph {graph.name!r} cannot make progress: "
                        f"{len(pending)} pending ops but none ready"
                    )
                fallback_name = sorted(ready)[0]
                fallback_threads = max(1, allocator.free_cores)
                forced_launches += 1
                try_launch(
                    LaunchRequest(
                        op_name=fallback_name,
                        threads=fallback_threads,
                        affinity=AffinityMode.SHARED,
                        placement=PlacementKind.DEDICATED,
                    )
                )
                update_progress()
                refresh_slowdowns()

            # --- advance time to the earliest finish.
            finishing_name, finishing = min(
                running.items(), key=lambda item: item[1].predicted_finish(now)
            )
            finish_time = finishing.predicted_finish(now)
            now = finish_time
            update_progress()

            # --- retire the finished operation.
            r = running.pop(finishing_name)
            if r.allocation is not None:
                allocator.release(r.allocation)
            completed.add(finishing_name)
            pending.discard(finishing_name)
            trace.add_record(
                OpExecutionRecord(
                    op_name=r.op.name,
                    op_type=r.op.op_type,
                    threads=r.request.threads,
                    affinity=r.request.affinity,
                    start_time=r.start_time,
                    finish_time=now,
                    used_hyperthreads=r.request.placement is PlacementKind.HYPERTHREAD,
                )
            )
            emit(EventKind.FINISH, finishing_name, threads=r.request.threads)

            # --- newly ready operations.
            for succ in graph.successors(finishing_name):
                if succ in completed or succ in running or succ in ready:
                    continue
                if all(dep in completed for dep in graph.predecessors(succ)):
                    ready.add(succ)

            refresh_slowdowns()

        emit(EventKind.STEP_END, "")
        return StepResult(
            policy_name=getattr(policy, "name", policy.__class__.__name__),
            graph_name=graph.name,
            step_time=now,
            trace=trace,
            forced_launches=forced_launches,
        )
