"""Resilient execution layer: checkpoint/resume, retries, chaos.

Three pieces, one failure story:

* :mod:`repro.resilience.checkpoint` — periodic atomic snapshots of a
  fleet run's full loop state; a killed run resumes byte-identical via
  :func:`resume_fleet` / ``python -m repro resume <run_id>``.
* :class:`~repro.sweep.retry.RetryPolicy` (re-exported here) — per-task
  timeouts, bounded backoff-with-jitter retries, crash/hang detection
  and quarantine for sweep workers and the sharded fleet fan-out.
* :mod:`repro.resilience.chaos` — seeded, deterministic injection of
  worker crashes, hangs, cache rot and mid-run interrupts, so the
  recovery paths above are *gated*, not just present.

``resume_fleet`` is resolved lazily: it imports :mod:`repro.api`, which
(indirectly) imports this package, and a module-level import here would
cycle.
"""

from __future__ import annotations

from repro.resilience.chaos import (
    CHAOS_EXIT_CODE,
    ChaosPlan,
    ChaosWorkerCrash,
    chaos_call,
    corrupt_cache_entries,
)
from repro.resilience.checkpoint import (
    CHECKPOINT_DIR_ENV,
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointConfig,
    CheckpointError,
    Checkpointer,
    GracefulInterrupt,
    RunInterrupted,
    checkpoint_dir,
    checkpoint_root,
    list_checkpoint_runs,
    resolve_checkpoint,
    resolve_checkpoint_run,
)
from repro.sweep.retry import (
    SINGLE_ATTEMPT,
    RetryPolicy,
    SweepTaskFailure,
)

__all__ = [
    "CHAOS_EXIT_CODE",
    "CHECKPOINT_DIR_ENV",
    "CHECKPOINT_SCHEMA_VERSION",
    "ChaosPlan",
    "ChaosWorkerCrash",
    "CheckpointConfig",
    "CheckpointError",
    "Checkpointer",
    "GracefulInterrupt",
    "RetryPolicy",
    "RunInterrupted",
    "SINGLE_ATTEMPT",
    "SweepTaskFailure",
    "chaos_call",
    "checkpoint_dir",
    "checkpoint_root",
    "corrupt_cache_entries",
    "list_checkpoint_runs",
    "resolve_checkpoint",
    "resolve_checkpoint_run",
    "resume_fleet",
]


def __getattr__(name: str):
    if name == "resume_fleet":
        from repro.resilience.resume import resume_fleet

        return resume_fleet
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
