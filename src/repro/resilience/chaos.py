"""Deterministic chaos injection for the execution layer.

The executor-level mirror of :mod:`repro.fleet.faults`: where a
``FaultPlan`` breaks the *simulated* fleet, a :class:`ChaosPlan` breaks
the *harness that runs it* — sweep workers crash (``os._exit`` inside a
process child, an exception on thread/serial backends), hang (a bounded
sleep that trips the retry policy's timeout), cache entries rot on
disk, and a run takes a simulated mid-run SIGTERM
(``CheckpointConfig.interrupt_after``).

Like a fault plan, a chaos plan is a **seeded value**: directives are a
pure function of ``(seed, task number, attempt)`` via a hash fraction,
so the same plan against the same sweep produces the same crashes in
the same places — which is what lets the chaos gates assert *exact*
result equality (retries must repair every injection) plus nonzero
retry/quarantine counters, instead of merely "it didn't die".

Directives are computed in the **parent** (the executor consults
:meth:`ChaosPlan.directive` at submit time) and shipped to the worker
alongside the task; the worker-side :func:`chaos_call` wrapper executes
them.  Crashes fire only while ``attempt <= fail_attempts``, so a
bounded retry budget always converges to the clean result.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path

from repro.sweep.retry import _fraction

#: Child exit code of an injected process-worker crash (visible in the
#: BrokenProcessPool message, handy when debugging chaos runs).
CHAOS_EXIT_CODE = 43


class ChaosWorkerCrash(RuntimeError):
    """An injected worker crash on a backend without a process to kill."""


@dataclass(frozen=True)
class ChaosPlan:
    """A seeded, declarative plan of execution-layer failures.

    ``crash_rate`` / ``hang_rate`` are per-(task, attempt) probabilities
    while ``attempt <= fail_attempts``; beyond that budget every task
    runs clean, so ``RetryPolicy(max_attempts > fail_attempts)`` is
    guaranteed to converge.  ``hang_seconds`` should exceed the retry
    policy's ``timeout`` to exercise hang detection (the sleep itself
    stays bounded, so a chaos suite can never wedge the test run).
    ``interrupt_after`` is the mid-run-SIGTERM knob, forwarded into the
    run's :class:`~repro.resilience.checkpoint.CheckpointConfig`.
    """

    seed: int = 0
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    hang_seconds: float = 0.25
    fail_attempts: int = 1
    interrupt_after: int | None = None

    def __post_init__(self) -> None:
        for name in ("crash_rate", "hang_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate!r}")
        if self.hang_seconds < 0:
            raise ValueError("hang_seconds must be >= 0")
        if self.fail_attempts < 0:
            raise ValueError("fail_attempts must be >= 0")

    def __bool__(self) -> bool:
        return (
            self.crash_rate > 0
            or self.hang_rate > 0
            or self.interrupt_after is not None
        )

    def directive(self, task_no: int, attempt: int) -> "tuple | None":
        """The injected failure for one task execution, or ``None``.

        ``task_no`` is the executor's monotonically increasing per-task
        number (deterministic: tasks are submitted in a deterministic
        order), ``attempt`` is 1-based.
        """
        if attempt > self.fail_attempts:
            return None
        if self.crash_rate > 0 and (
            _fraction(self.seed, "crash", task_no, attempt) < self.crash_rate
        ):
            return ("crash",)
        if self.hang_rate > 0 and (
            _fraction(self.seed, "hang", task_no, attempt) < self.hang_rate
        ):
            return ("hang", self.hang_seconds)
        return None


def chaos_call(fn, args, directive, process_worker: bool):
    """Worker-side execution of one chaos directive, then the real task.

    Module-level (picklable by reference) so the process backend can
    ship it.  A ``crash`` kills the child outright with ``os._exit`` —
    the parent sees a ``BrokenProcessPool``, the real crash signature —
    or raises :class:`ChaosWorkerCrash` on thread/serial backends where
    killing the interpreter would take the suite down with it.  A
    ``hang`` sleeps a bounded interval (long enough to trip the retry
    timeout) and then *completes the task*, modelling a stalled-but-
    alive worker.
    """
    kind = directive[0]
    if kind == "crash":
        if process_worker:
            os._exit(CHAOS_EXIT_CODE)
        raise ChaosWorkerCrash(
            f"chaos: injected crash in {getattr(fn, '__name__', fn)!r}"
        )
    if kind == "hang":
        time.sleep(directive[1])
    elif kind is not None:
        raise ValueError(f"unknown chaos directive {directive!r}")
    return fn(*args)


def corrupt_cache_entries(
    root: "str | Path",
    *,
    seed: int = 0,
    fraction: float = 0.5,
    pattern: str = "**/*.pkl",
) -> list[Path]:
    """Deterministically rot a fraction of on-disk pickle entries.

    Overwrites each selected file's bytes with garbage (same length, so
    directory listings look healthy), returning the corrupted paths.
    Exercises the self-healing read paths: :class:`~repro.sweep.cache.
    SweepCache` treats an unreadable shard as a miss and rewrites it;
    the run store unlinks corrupt records on read and ``python -m repro
    report verify`` reports/heals them in bulk.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction!r}")
    base = Path(root)
    corrupted: list[Path] = []
    for path in sorted(base.glob(pattern)):
        if not path.is_file():
            continue
        if _fraction(seed, "corrupt", path.name) >= fraction:
            continue
        size = max(path.stat().st_size, 8)
        path.write_bytes(b"\xde\xad\xbe\xef" * (size // 4 + 1))
        corrupted.append(path)
    return corrupted
