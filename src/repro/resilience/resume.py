"""Restart a checkpointed fleet run from its latest snapshot.

:func:`resume_fleet` is the inverse of a killed ``run_fleet(checkpoint=
...)``: it resolves the run id against the checkpoint root, loads the
newest readable snapshot plus the JSON manifest (the run's recorded
store config), rebuilds the exact ``run_fleet`` call from that config,
and hands the simulator the captured loop state.  Because the manifest
*is* the store config, the resumed run records under the same
``run_id`` as its uninterrupted twin — and the determinism gates assert
the digest is byte-identical.
"""

from __future__ import annotations

from repro.resilience.checkpoint import (
    CheckpointConfig,
    CheckpointError,
    Checkpointer,
    resolve_checkpoint_run,
)


def resume_fleet(
    run_id: str,
    *,
    root=None,
    store=None,
    checkpoint: "CheckpointConfig | dict | None" = None,
):
    """Resume an interrupted fleet run; returns its :class:`~repro.api.FleetOutcome`.

    ``run_id`` may be a unique prefix (>= 4 chars).  ``root`` overrides
    the checkpoint root (else ``$REPRO_CHECKPOINT_DIR`` / default);
    ``checkpoint`` overrides the resumed run's own checkpoint config
    (interval/keep), defaulting to the standard config against ``root``.
    ``store`` selects where the completed run records, exactly as in
    :func:`repro.api.run_fleet`.

    The resumed run keeps checkpointing from where the sequence left
    off, so it can itself be interrupted and resumed again.
    """
    full_id = resolve_checkpoint_run(run_id, root)
    if isinstance(checkpoint, dict):
        checkpoint = CheckpointConfig(**checkpoint)
    if checkpoint is not None and checkpoint.root is None and root is not None:
        checkpoint = CheckpointConfig(
            interval=checkpoint.interval,
            root=root,
            keep=checkpoint.keep,
            keep_on_success=checkpoint.keep_on_success,
            interrupt_after=checkpoint.interrupt_after,
            background=checkpoint.background,
        )
    ckpt, payload = Checkpointer.open(full_id, root=root, config=checkpoint)
    manifest = ckpt.manifest or {}
    config = manifest.get("config")
    if not isinstance(config, dict):
        raise CheckpointError(
            f"run {full_id[:12]} has no resumable config in its manifest"
        )
    arrivals = config.get("arrivals")
    if arrivals is None:
        raise CheckpointError(
            f"run {full_id[:12]} recorded no arrival spec; cannot rebuild its trace"
        )
    admission = config.get("admission") or {}
    sharding = config.get("sharding") or {}

    from repro.api import run_fleet

    return run_fleet(
        arrival_process=arrivals,
        machines=tuple(config["machines"]),
        policy=config["policy"],
        max_corun=config.get("max_corun"),
        compressed=config.get("compressed", True),
        shards=sharding.get("shards"),
        fleet_backend=sharding.get("backend", "serial"),
        faults=config.get("faults"),
        queue_limit=admission.get("queue_limit"),
        deadline=admission.get("deadline"),
        shed_policy=admission.get("shed_policy", "reject-at-arrival"),
        checkpoint=ckpt,
        store=store,
        _resume=payload,
    )
