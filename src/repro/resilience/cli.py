"""``python -m repro resume`` — restart an interrupted fleet run.

Thin argparse shell around :func:`repro.resilience.resume.resume_fleet`;
exit codes follow the report CLI's convention (0 success, 2 usage/not
found, 130 interrupted again).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys

from repro.resilience.checkpoint import (
    CheckpointError,
    RunInterrupted,
    list_checkpoint_runs,
)
from repro.resilience.resume import resume_fleet


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro resume",
        description="Resume an interrupted checkpointed fleet run.",
    )
    parser.add_argument(
        "run",
        nargs="?",
        help="checkpointed run id (a unique prefix of >= 4 chars is enough); "
        "omit to list resumable runs",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="checkpoint root directory (default: $REPRO_CHECKPOINT_DIR or .checkpoints)",
    )
    parser.add_argument(
        "--store",
        default=None,
        help="run-store directory the completed run records into "
        "(default: $REPRO_STORE_DIR when set)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the outcome as JSON"
    )
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.run is None:
        runs = list_checkpoint_runs(args.root)
        if not runs:
            print("no checkpointed runs found")
            return 0
        for run_id in runs:
            print(run_id)
        return 0
    try:
        outcome = resume_fleet(args.run, root=args.root, store=args.store)
    except RunInterrupted as exc:
        print(str(exc), file=sys.stderr)
        return 130
    except (CheckpointError, KeyError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(f"error: {message}", file=sys.stderr)
        return 2
    body = dataclasses.asdict(outcome)
    if args.json:
        print(json.dumps(body, indent=2, sort_keys=True, default=str))
        return 0
    print(
        f"resumed run complete: policy={outcome.policy} jobs={outcome.num_jobs} "
        f"makespan={outcome.makespan:.3f} events={outcome.events_processed}"
    )
    if outcome.run_id:
        print(f"recorded as {outcome.run_id[:12]} (repro report show {outcome.run_id[:12]})")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
