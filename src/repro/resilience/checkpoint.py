"""Checkpoint/resume for fleet runs.

A :class:`Checkpointer` snapshots a running fleet simulation's **full
loop state** — central queue, machine states, event heap, the fleet
interference tracker, the arrival-process cursor, fault and admission
bookkeeping — every ``interval`` processed events, into an atomic
content-addressed directory keyed by the run's store identity
(:func:`repro.store.record.run_key` of the recorded config).  A killed
run restarts from its latest snapshot via
:func:`repro.resilience.resume.resume_fleet` (or ``python -m repro
resume <run_id>``) and produces a ``to_dict(include_overhead=False)``
digest byte-identical to the uninterrupted run.

Why one pickle per snapshot: the compressed loop's per-machine
``seg_records`` hold *live references* into the machine-local and
fleet-wide interference history deques; pickling machines, tracker and
heap as a single payload preserves that sharing exactly, so a resumed
segment keeps appending to the same deques the flush replay reads.

Snapshots are **incremental over the result rows**: the placement and
completion histories are append-only and quickly dwarf the mutable loop
state, so re-pickling them wholesale would make every save O(run so
far).  Instead each save writes the rows *added since the previous
save* to a ``rows-<seq>.pkl`` segment (never pruned — together the
segments hold each row exactly once) and the mutable state to a pruned
``ck-<seq>.pkl``; :meth:`Checkpointer.open` splices the segments back
under the newest readable snapshot.  Save cost is therefore O(interval)
instead of O(events so far), and the total row-serialisation work over
a whole run is O(rows) no matter how many snapshots are taken.

What is deliberately *not* captured:

* the estimator memo and stats — pure caches; a resumed run recomputes
  misses (overhead-only counters are digest-excluded anyway);
* the policy object — rebuilt from its registered name against the
  restored tracker (policy memos are pure per-run caches too);
* the arrival RNG — an arrival process regenerates deterministically
  from its spec, and the snapshot's ``arrivals_pulled`` cursor tells
  the resume how many jobs to drop from the fresh stream.

Write discipline matches the run store: ``mkstemp`` + ``os.replace``
per snapshot, newest-``keep`` retention, and a JSON manifest carrying
the run's recorded config so a resume can rebuild the simulator without
any other state.
"""

from __future__ import annotations

import json
import os
import pickle
import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

#: Environment override for the checkpoint root directory.
CHECKPOINT_DIR_ENV = "REPRO_CHECKPOINT_DIR"
#: Default checkpoint root (relative to the working directory), chosen
#: to sit beside the run store's ``.run_store``.
DEFAULT_CHECKPOINT_DIR = ".checkpoints"
#: Bump when the snapshot payload layout changes: a resume refuses a
#: snapshot written by an incompatible schema instead of deserialising
#: garbage into a live event loop.
CHECKPOINT_SCHEMA_VERSION = 2

#: State keys holding append-only result-row lists (packed tuples, see
#: ``repro.fleet.simulator._PackCache``).  These are delta-written to
#: ``rows-*.pkl`` segments instead of being re-pickled on every save.
_ROW_KEYS = ("placements", "completions")


class CheckpointError(RuntimeError):
    """A checkpoint could not be written, found, or understood."""


class RunInterrupted(RuntimeError):
    """A checkpointed run stopped at a sync point (signal or plan).

    Raised *after* the final snapshot is flushed, so the run is always
    resumable from the exact interruption point.
    """

    def __init__(self, run_id: str, seq: int, events: int) -> None:
        super().__init__(
            f"run {run_id} interrupted at checkpoint {seq} "
            f"({events} events processed); resume with "
            f"`python -m repro resume {run_id}`"
        )
        self.run_id = run_id
        self.seq = seq
        self.events = events


def checkpoint_root(root: "str | Path | None" = None) -> Path:
    """Resolve the checkpoint root: explicit > $REPRO_CHECKPOINT_DIR > default."""
    if root is not None:
        return Path(root)
    return Path(os.environ.get(CHECKPOINT_DIR_ENV) or DEFAULT_CHECKPOINT_DIR)


def checkpoint_dir(run_id: str, root: "str | Path | None" = None) -> Path:
    """The snapshot directory of one run (two-level, like the run store)."""
    base = checkpoint_root(root)
    return base / run_id[:2] / run_id


def list_checkpoint_runs(root: "str | Path | None" = None) -> tuple[str, ...]:
    """Run ids with at least one snapshot under ``root``, sorted."""
    base = checkpoint_root(root)
    if not base.is_dir():
        return ()
    found = []
    for shard in sorted(p for p in base.iterdir() if p.is_dir()):
        for run_dir in sorted(p for p in shard.iterdir() if p.is_dir()):
            if any(run_dir.glob("ck-*.pkl")):
                found.append(run_dir.name)
    return tuple(found)


def resolve_checkpoint_run(prefix: str, root: "str | Path | None" = None) -> str:
    """Expand a run-id prefix (>= 4 chars) against the checkpoint root."""
    runs = list_checkpoint_runs(root)
    if prefix in runs:
        return prefix
    if len(prefix) < 4:
        raise KeyError(f"run id prefix too short (need >= 4 chars): {prefix!r}")
    matches = [run for run in runs if run.startswith(prefix)]
    if not matches:
        raise KeyError(f"no checkpointed run matches {prefix!r}")
    if len(matches) > 1:
        raise KeyError(
            f"ambiguous run id prefix {prefix!r}: " + ", ".join(m[:12] for m in matches)
        )
    return matches[0]


@dataclass(frozen=True)
class CheckpointConfig:
    """Checkpointing knobs for one fleet run.

    ``interval`` is in *processed events* (the loops' sync points);
    ``keep`` bounds retained snapshots (newest wins); ``interrupt_after``
    deterministically interrupts the run once that many events have been
    processed — the chaos harness's simulated mid-run SIGTERM, which is
    what lets tests and benches kill a run at an arbitrary-but-exact
    checkpoint without real signals or subprocesses.
    """

    interval: int = 256
    root: "str | Path | None" = None
    keep: int = 2
    keep_on_success: bool = False
    interrupt_after: int | None = None
    #: Serialise and write snapshots from a forked child (BGSAVE-style)
    #: where the platform allows it.  Pickling the ~10^5-object live
    #: graph in-process measurably degrades the simulator's allocator
    #: and cache locality for the *rest of the run* — far beyond the
    #: dump's own wall time — so the parent hands the copy-on-write
    #: snapshot to a child that pickles, writes and ``os._exit``s.
    #: Ignored (synchronous saves) when ``os.fork`` is unavailable.
    background: bool = True

    def __post_init__(self) -> None:
        if self.interval < 1:
            raise ValueError("checkpoint interval must be at least 1 event")
        if self.keep < 1:
            raise ValueError("keep must retain at least 1 snapshot")
        if self.interrupt_after is not None and self.interrupt_after < 0:
            raise ValueError("interrupt_after must be >= 0")


def resolve_checkpoint(
    value: "bool | int | dict | CheckpointConfig | Checkpointer | None",
    *,
    run_id: str,
    manifest: dict | None = None,
) -> "Checkpointer | None":
    """Coerce a user-facing ``checkpoint=`` spec into a :class:`Checkpointer`.

    ``True`` means defaults, an int is the event interval, a dict maps
    to :class:`CheckpointConfig` fields, and ready config/checkpointer
    values pass through.  ``None``/``False`` disable checkpointing.
    """
    if value is None or value is False:
        return None
    if isinstance(value, Checkpointer):
        return value
    if value is True:
        config = CheckpointConfig()
    elif isinstance(value, CheckpointConfig):
        config = value
    elif isinstance(value, bool):  # unreachable, keeps bool out of the int arm
        config = CheckpointConfig()
    elif isinstance(value, int):
        config = CheckpointConfig(interval=value)
    elif isinstance(value, dict):
        config = CheckpointConfig(**value)
    else:
        raise TypeError(
            f"cannot build a checkpoint config from {type(value).__name__}"
        )
    return Checkpointer(run_id, config, manifest=manifest)


def _atomic_write(path: Path, data: bytes) -> None:
    """mkstemp + os.replace, the store's crash-safe write discipline."""
    path.parent.mkdir(parents=True, exist_ok=True)
    handle, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "wb") as tmp:
            tmp.write(data)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _splice_rows(directory: Path, payload: dict) -> None:
    """Rebuild a snapshot's full row lists from its delta segments.

    Mutates ``payload["state"]`` in place: every key in
    ``payload["row_totals"]`` gets the concatenation of the
    ``rows-*.pkl`` deltas with ``seq <=`` the snapshot's, spliced at
    each segment's recorded base offset (so a re-sent delta after a
    torn write just overwrites identical rows).  Raises
    :class:`CheckpointError` when the spliced history has holes or
    falls short of the snapshot's recorded totals.
    """
    totals = payload.get("row_totals") or {}
    if not totals:
        return
    spliced: dict[str, list] = {key: [] for key in totals}
    for path in sorted(directory.glob("rows-*.pkl")):
        try:
            if int(path.stem.split("-", 1)[1]) > payload["seq"]:
                continue  # newer than the snapshot being restored
        except ValueError:
            raise CheckpointError(f"unparseable row segment name {path.name}")
        try:
            segment = pickle.loads(path.read_bytes())
        except Exception as exc:
            raise CheckpointError(f"torn row segment {path.name}: {exc}") from exc
        if (
            not isinstance(segment, dict)
            or segment.get("version") != CHECKPOINT_SCHEMA_VERSION
            or segment.get("run_id") != payload.get("run_id")
            or segment.get("seq") != int(path.stem.split("-", 1)[1])
        ):
            raise CheckpointError(f"incompatible row segment {path.name}")
        for key, delta in (segment.get("rows") or {}).items():
            rows = spliced.setdefault(key, [])
            base = (segment.get("base") or {}).get(key, len(rows))
            if base > len(rows):
                raise CheckpointError(
                    f"row segment {path.name} leaves a hole in {key!r} "
                    f"(base {base}, have {len(rows)})"
                )
            rows[base : base + len(delta)] = delta
    for key, total in totals.items():
        rows = spliced.get(key, [])
        if len(rows) < total:
            raise CheckpointError(
                f"row history for {key!r} is short: "
                f"{len(rows)} spliced rows vs {total} recorded"
            )
        payload["state"][key] = rows[:total]


class Checkpointer:
    """Periodic atomic snapshots of one run's loop state.

    The simulator loops call :meth:`tick` at the top of every event
    iteration with the current event count and a zero-cost ``capture``
    closure; the checkpointer decides whether to snapshot, and raises
    :class:`RunInterrupted` (after a final snapshot) when a stop was
    requested — by a signal handler via :meth:`request_stop`, or by the
    config's deterministic ``interrupt_after``.
    """

    def __init__(
        self,
        run_id: str,
        config: CheckpointConfig | None = None,
        *,
        manifest: dict | None = None,
    ) -> None:
        self.run_id = run_id
        self.config = config or CheckpointConfig()
        #: JSON-ready run description (the recorded store config wrapped
        #: by the caller); written once beside the snapshots so a resume
        #: can rebuild the simulator from the directory alone.
        self.manifest = manifest
        self.seq = 0
        self.saves = 0
        self._last_events = 0
        self._stop = False
        self._manifest_written = False
        #: Per row key: how many rows the rows-*.pkl segments already
        #: hold — the base offset of the next delta write.
        self._rows_persisted: dict[str, int] = {}
        #: Live background-writer pids (see ``CheckpointConfig.background``).
        self._children: list[int] = []
        self._background = bool(self.config.background and hasattr(os, "fork"))
        self._dir = checkpoint_dir(run_id, self.config.root)
        self._rearm()

    def _rearm(self) -> None:
        """Recompute the single event count :meth:`tick` compares against.

        ``tick`` runs once per processed event on the simulators' hot
        loops, so its fast path must be one comparison — the next save
        point and the deterministic interrupt point are folded into one
        trigger, and :meth:`request_stop` re-arms it to fire immediately.
        """
        trigger = self._last_events + self.config.interval
        if self.config.interrupt_after is not None:
            trigger = min(trigger, self.config.interrupt_after)
        self._trigger = 0 if self._stop else trigger

    @property
    def directory(self) -> Path:
        return self._dir

    def request_stop(self) -> None:
        """Ask the run to stop at its next sync point (signal-safe)."""
        self._stop = True
        self._trigger = 0

    @property
    def stop_requested(self) -> bool:
        return self._stop

    # -- write path ----------------------------------------------------------------

    def tick(self, events: int, capture: Callable[[], dict]) -> None:
        """Snapshot if due; raise :class:`RunInterrupted` if stopping.

        Called once per processed event; the fast path is one integer
        comparison against the pre-folded trigger (see :meth:`_rearm`).
        """
        if events < self._trigger:
            return
        config = self.config
        interrupted = self._stop or (
            config.interrupt_after is not None and events >= config.interrupt_after
        )
        self.save(events, capture(), wait=interrupted)
        if interrupted:
            raise RunInterrupted(self.run_id, self.seq, events)

    def save(self, events: int, state: dict, *, wait: bool = False) -> Path:
        """Atomically write one snapshot and prune old ones.

        Row histories (see ``_ROW_KEYS``) leave the snapshot and go to a
        ``rows-<seq>.pkl`` delta segment: only rows appended since the
        previous save are serialised.  Each segment records its base
        offsets, so a retried save after a torn write just overwrites
        the same positions on splice — the rows are deterministic.

        Periodic saves hand serialisation to a forked child when the
        config allows (see :class:`CheckpointConfig.background`); with
        ``wait=True`` (the final snapshot before :class:`RunInterrupted`)
        the write is synchronous and all in-flight writers are reaped
        first, so the directory is quiescent when the caller sees the
        interrupt.
        """
        self.seq += 1
        slim = dict(state)
        row_deltas: dict[str, list] = {}
        row_bases: dict[str, int] = {}
        row_totals: dict[str, int] = {}
        for key in _ROW_KEYS:
            rows = slim.pop(key, None)
            if rows is None:
                continue
            base = self._rows_persisted.get(key, 0)
            row_deltas[key] = rows[base:]
            row_bases[key] = base
            row_totals[key] = len(rows)
        self._write_manifest()
        segment = None
        if row_totals:
            segment = {
                "version": CHECKPOINT_SCHEMA_VERSION,
                "run_id": self.run_id,
                "seq": self.seq,
                "base": row_bases,
                "rows": row_deltas,
            }
        payload = {
            "version": CHECKPOINT_SCHEMA_VERSION,
            "run_id": self.run_id,
            "seq": self.seq,
            "events": events,
            "row_totals": row_totals,
            "state": slim,
        }
        path = self._dir / f"ck-{self.seq:08d}.pkl"
        if wait:
            self._reap(block=True)
            self._write_snapshot(path, segment, payload)
        else:
            self._reap(block=False)
            pid = self._fork_writer(path, segment, payload)
            if pid is None:
                self._write_snapshot(path, segment, payload)
            else:
                self._children.append(pid)
        # Advance the delta bases assuming the snapshot lands; if a
        # background writer dies its segment is missing and the splice
        # detects the hole, falling back to an older intact snapshot.
        self._rows_persisted.update(row_totals)
        self.saves += 1
        self._last_events = events
        self._rearm()
        self._prune()
        return path

    def _write_snapshot(self, path: Path, segment: dict | None, payload: dict) -> None:
        if segment is not None:
            _atomic_write(
                self._dir / f"rows-{payload['seq']:08d}.pkl",
                pickle.dumps(segment, protocol=pickle.HIGHEST_PROTOCOL),
            )
        _atomic_write(path, pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))

    def _fork_writer(self, path: Path, segment: dict | None, payload: dict) -> "int | None":
        """Fork a child that serialises + writes the snapshot, BGSAVE-style.

        The child sees the copy-on-write image of the loop state as of
        this sync point, pickles and writes it, then ``os._exit``s —
        never running finalisers or flushing inherited stdio.  Returns
        ``None`` (caller writes synchronously) when backgrounding is off
        or the fork fails.
        """
        if not self._background:
            return None
        try:
            pid = os.fork()
        except OSError:
            return None
        if pid != 0:
            return pid
        status = 1
        try:
            self._write_snapshot(path, segment, payload)
            status = 0
        finally:
            os._exit(status)

    def _reap(self, *, block: bool) -> None:
        """Collect finished background writers (all of them when ``block``)."""
        for pid in list(self._children):
            try:
                done, _ = os.waitpid(pid, 0 if block else os.WNOHANG)
            except (ChildProcessError, OSError):
                done = pid
            if done:
                self._children.remove(pid)

    def _write_manifest(self) -> None:
        if self._manifest_written or self.manifest is None:
            return
        body = {
            "version": CHECKPOINT_SCHEMA_VERSION,
            "run_id": self.run_id,
            "manifest": self.manifest,
        }
        _atomic_write(
            self._dir / "manifest.json",
            json.dumps(body, sort_keys=True, indent=2).encode("utf-8"),
        )
        self._manifest_written = True

    def _prune(self) -> None:
        snapshots = sorted(self._dir.glob("ck-*.pkl"))
        for stale in snapshots[: -self.config.keep]:
            try:
                stale.unlink()
            except OSError:
                pass

    def complete(self) -> None:
        """The run finished: drop its snapshots (unless asked to keep)."""
        self._reap(block=True)
        if self.config.keep_on_success:
            return
        shutil.rmtree(self._dir, ignore_errors=True)
        # Drop the now-empty two-level shard directory too, best-effort.
        try:
            self._dir.parent.rmdir()
        except OSError:
            pass

    # -- read path -----------------------------------------------------------------



    @classmethod
    def open(
        cls,
        run_id: str,
        *,
        root: "str | Path | None" = None,
        config: CheckpointConfig | None = None,
    ) -> "tuple[Checkpointer, dict]":
        """Load a run's manifest + newest readable snapshot for a resume.

        Returns ``(checkpointer, payload)`` where the checkpointer
        continues the snapshot sequence (same directory, same run id)
        and ``payload`` is the snapshot dict (``state``/``events``/
        ``seq``).  A torn or corrupt newest snapshot falls back to the
        previous one — the reason ``keep`` defaults to 2.
        """
        directory = checkpoint_dir(run_id, root if root is not None else (config.root if config else None))
        manifest_path = directory / "manifest.json"
        if not manifest_path.is_file():
            raise CheckpointError(f"no checkpoint manifest for run {run_id!r} under {directory.parent.parent}")
        try:
            body = json.loads(manifest_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"unreadable checkpoint manifest for {run_id!r}: {exc}") from exc
        snapshots = sorted(directory.glob("ck-*.pkl"))
        if not snapshots:
            raise CheckpointError(f"run {run_id!r} has a manifest but no snapshots")
        payload = None
        for path in reversed(snapshots):
            try:
                candidate = pickle.loads(path.read_bytes())
            except Exception:
                continue  # torn write: fall back to the previous snapshot
            if (
                isinstance(candidate, dict)
                and candidate.get("version") == CHECKPOINT_SCHEMA_VERSION
                and candidate.get("run_id") == run_id
                and isinstance(candidate.get("state"), dict)
            ):
                try:
                    _splice_rows(directory, candidate)
                except CheckpointError:
                    continue  # missing/torn row segment: try an older snapshot
                payload = candidate
                break
        if payload is None:
            raise CheckpointError(
                f"no readable snapshot for run {run_id!r} "
                f"({len(snapshots)} present, all torn or incompatible)"
            )
        resume_config = config or CheckpointConfig(root=root)
        checkpointer = cls(run_id, resume_config, manifest=body.get("manifest"))
        checkpointer.seq = payload["seq"]
        checkpointer._last_events = payload["events"]
        checkpointer._rows_persisted = dict(payload.get("row_totals") or {})
        checkpointer._rearm()
        checkpointer._manifest_written = True
        return checkpointer, payload


class GracefulInterrupt:
    """Two-stage SIGINT/SIGTERM guard around a checkpointed run.

    The first signal only calls :meth:`Checkpointer.request_stop` — the
    run flushes a final snapshot at its next sync point and raises
    :class:`RunInterrupted`, so nothing is lost.  A second signal
    restores the default disposition and re-raises itself, force-exiting
    a run that is wedged between sync points.  Installation is
    best-effort: off the main thread (or anywhere ``signal.signal``
    refuses) the guard is a no-op and the run keeps its caller's
    handlers.
    """

    def __init__(self, checkpointer: Checkpointer) -> None:
        self.checkpointer = checkpointer
        self._previous: dict = {}
        self._fired = False

    def __enter__(self) -> "GracefulInterrupt":
        import signal
        import threading

        if threading.current_thread() is not threading.main_thread():
            return self
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                self._previous[sig] = signal.signal(sig, self._handle)
            except (ValueError, OSError):  # embedded/odd runtimes
                self._previous.pop(sig, None)
        return self

    def _handle(self, signum, frame) -> None:
        import signal

        if self._fired:
            signal.signal(signum, signal.SIG_DFL)
            os.kill(os.getpid(), signum)
            return
        self._fired = True
        self.checkpointer.request_stop()

    def __exit__(self, *exc_info) -> None:
        import signal

        for sig, previous in self._previous.items():
            try:
                signal.signal(sig, previous)
            except (ValueError, OSError):
                pass
