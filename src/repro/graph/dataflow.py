"""The dataflow graph: operation instances plus dependency edges."""

from __future__ import annotations

from typing import Iterable, Iterator

import networkx as nx

from repro.graph.op import OpInstance


class DataflowGraph:
    """A directed acyclic graph of :class:`OpInstance` nodes.

    Edges point from producers to consumers: an edge ``a -> b`` means ``b``
    cannot start until ``a`` has finished (data or control dependency).
    """

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self._g = nx.DiGraph()
        self._ops: dict[str, OpInstance] = {}

    # -- construction -------------------------------------------------------------

    def add_op(self, op: OpInstance, deps: Iterable[str | OpInstance] = ()) -> OpInstance:
        """Add ``op`` with dependencies ``deps`` (names or instances)."""
        if op.name in self._ops:
            raise ValueError(f"duplicate operation name: {op.name}")
        self._ops[op.name] = op
        self._g.add_node(op.name)
        for dep in deps:
            dep_name = dep if isinstance(dep, str) else dep.name
            if dep_name not in self._ops:
                raise KeyError(f"dependency {dep_name!r} not in graph")
            self._g.add_edge(dep_name, op.name)
        return op

    def add_dependency(self, producer: str | OpInstance, consumer: str | OpInstance) -> None:
        """Add an edge producer -> consumer between existing nodes."""
        p = producer if isinstance(producer, str) else producer.name
        c = consumer if isinstance(consumer, str) else consumer.name
        for node in (p, c):
            if node not in self._ops:
                raise KeyError(f"unknown operation {node!r}")
        if p == c:
            raise ValueError("an operation cannot depend on itself")
        self._g.add_edge(p, c)
        if not nx.is_directed_acyclic_graph(self._g):
            self._g.remove_edge(p, c)
            raise ValueError(f"edge {p} -> {c} would create a cycle")

    # -- queries ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ops)

    def __contains__(self, name: str) -> bool:
        return name in self._ops

    def __iter__(self) -> Iterator[OpInstance]:
        return iter(self._ops.values())

    def op(self, name: str) -> OpInstance:
        return self._ops[name]

    @property
    def ops(self) -> tuple[OpInstance, ...]:
        return tuple(self._ops.values())

    @property
    def num_edges(self) -> int:
        return self._g.number_of_edges()

    def predecessors(self, name: str | OpInstance) -> tuple[str, ...]:
        node = name if isinstance(name, str) else name.name
        return tuple(self._g.predecessors(node))

    def successors(self, name: str | OpInstance) -> tuple[str, ...]:
        node = name if isinstance(name, str) else name.name
        return tuple(self._g.successors(node))

    def sources(self) -> tuple[str, ...]:
        """Operations with no dependencies (ready at step start)."""
        return tuple(n for n in self._g.nodes if self._g.in_degree(n) == 0)

    def sinks(self) -> tuple[str, ...]:
        """Operations nothing depends on."""
        return tuple(n for n in self._g.nodes if self._g.out_degree(n) == 0)

    def validate(self) -> None:
        """Raise ``ValueError`` if the graph is not a non-empty DAG."""
        if len(self._ops) == 0:
            raise ValueError(f"graph {self.name!r} is empty")
        if not nx.is_directed_acyclic_graph(self._g):
            raise ValueError(f"graph {self.name!r} contains a cycle")

    def op_types(self) -> dict[str, int]:
        """Histogram of operation types -> instance counts."""
        histogram: dict[str, int] = {}
        for op in self._ops.values():
            histogram[op.op_type] = histogram.get(op.op_type, 0) + 1
        return histogram

    def instances_of(self, op_type: str) -> tuple[OpInstance, ...]:
        """All instances of a given operation type."""
        return tuple(op for op in self._ops.values() if op.op_type == op_type)

    def to_networkx(self) -> nx.DiGraph:
        """A copy of the underlying networkx graph (node names only)."""
        return self._g.copy()

    def subgraph(self, names: Iterable[str]) -> "DataflowGraph":
        """Induced subgraph on ``names`` (keeping internal edges)."""
        keep = set(names)
        missing = keep - set(self._ops)
        if missing:
            raise KeyError(f"unknown operations: {sorted(missing)}")
        sub = DataflowGraph(name=f"{self.name}/subgraph")
        for name in self._ops:
            if name in keep:
                sub._ops[name] = self._ops[name]
                sub._g.add_node(name)
        for u, v in self._g.edges:
            if u in keep and v in keep:
                sub._g.add_edge(u, v)
        return sub

    def __str__(self) -> str:
        return (
            f"DataflowGraph({self.name!r}, {len(self)} ops, "
            f"{self.num_edges} edges)"
        )
