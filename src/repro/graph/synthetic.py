"""Seeded generator of synthetic layered/branching dataflow graphs.

The five paper models (ResNet-50, Inception-v3, DCGAN, LSTMs) pin down
*realistic* graphs; scaling studies and the simulator benchmarks need
*configurable* ones — graphs whose size, width and branching factor can
be dialed from a hundred to a few thousand operations while staying
representative: a mix of heavyweight tensor ops (convolutions, GEMMs)
and lightweight streaming ops (elementwise, reductions, normalisation),
arranged in layers with skip connections like real training steps.

Everything is driven by one seed, so a ``(num_ops, seed)`` pair names a
reproducible workload — benchmarks and tests can reference "the 500-op
graph" and mean the same DAG everywhere.
"""

from __future__ import annotations

import numpy as np

from repro.graph.builder import GraphBuilder
from repro.graph.dataflow import DataflowGraph
from repro.graph.op import OpInstance
from repro.graph.shapes import TensorShape
from repro.utils.seeding import make_rng

#: Bounds on the generated graph size (the scaling studies' range).
MIN_OPS = 8
MAX_OPS = 20000

#: Heavyweight (tunable, MKL-style) operation types the generator mixes in.
_HEAVY_TYPES = (
    "Conv2D",
    "Conv2DBackpropFilter",
    "Conv2DBackpropInput",
    "MatMul",
)
#: Lightweight streaming operation types (binary and unary elementwise).
_BINARY_TYPES = ("Mul", "Add", "Sub")
_UNARY_TYPES = ("Relu", "Tanh", "Sigmoid")
_LIGHT_TYPES = _BINARY_TYPES + _UNARY_TYPES + ("BiasAdd",)
#: Reduction-style operation types (occasional joins).
_REDUCE_TYPES = ("Sum", "Mean", "L2Loss")

_SPATIAL_CHOICES = (4, 8, 16, 32)
_CHANNEL_CHOICES = (32, 64, 128, 256, 512)
_MATMUL_DIMS = (128, 256, 512, 1024)


def _random_conv_shapes(
    rng: np.random.Generator, op_type: str, batch: int
) -> tuple[tuple[TensorShape, ...], TensorShape, dict]:
    spatial = int(rng.choice(_SPATIAL_CHOICES))
    c_in = int(rng.choice(_CHANNEL_CHOICES))
    c_out = int(rng.choice(_CHANNEL_CHOICES))
    act = TensorShape((batch, spatial, spatial, c_in))
    out = TensorShape((batch, spatial, spatial, c_out))
    attrs = {"kernel": (3, 3), "stride": 1}
    if op_type == "Conv2D":
        return (act,), out, attrs
    if op_type == "Conv2DBackpropFilter":
        return (act, out), TensorShape((3, 3, c_in, c_out)), attrs
    # Conv2DBackpropInput: gradient w.r.t. the activation.
    return (act, out), act, attrs


def _random_matmul_shapes(
    rng: np.random.Generator, batch: int
) -> tuple[tuple[TensorShape, ...], TensorShape]:
    k = int(rng.choice(_MATMUL_DIMS))
    n = int(rng.choice(_MATMUL_DIMS))
    a = TensorShape((batch, k))
    b = TensorShape((k, n))
    return (a, b), TensorShape((batch, n))


def _random_light_shape(rng: np.random.Generator, batch: int) -> TensorShape:
    spatial = int(rng.choice(_SPATIAL_CHOICES))
    channels = int(rng.choice(_CHANNEL_CHOICES))
    return TensorShape((batch, spatial, spatial, channels))


def synthetic_graph(
    num_ops: int = 500,
    *,
    seed: int = 0,
    width: int = 8,
    heavy_fraction: float = 0.35,
    skip_probability: float = 0.15,
    batch: int = 32,
    name: str | None = None,
) -> DataflowGraph:
    """Generate a layered, branching DAG of ``num_ops`` operation instances.

    Parameters
    ----------
    num_ops:
        Total operation count (the scaling studies use 100-2000).
    seed:
        Drives every random choice; the same ``(num_ops, seed, ...)``
        always yields an identical graph.
    width:
        Target number of operations per layer (the graph's parallelism).
        Actual layer widths vary randomly between 1 and ``2 * width``.
    heavy_fraction:
        Fraction of operations drawn from the heavyweight (convolution /
        GEMM) types; the rest are streaming elementwise or reduction ops.
    skip_probability:
        Chance that an operation additionally depends on an op two or
        more layers back (skip connections / weight-update edges).
    batch:
        Batch dimension of every generated tensor.
    name:
        Graph name; defaults to ``synthetic-{num_ops}-s{seed}``.
    """
    if not MIN_OPS <= num_ops <= MAX_OPS:
        raise ValueError(f"num_ops must lie in [{MIN_OPS}, {MAX_OPS}], got {num_ops}")
    if width < 1:
        raise ValueError("width must be at least 1")
    if not 0.0 <= heavy_fraction <= 1.0:
        raise ValueError("heavy_fraction must lie in [0, 1]")
    if not 0.0 <= skip_probability <= 1.0:
        raise ValueError("skip_probability must lie in [0, 1]")

    rng = make_rng(seed)
    builder = GraphBuilder(name or f"synthetic-{num_ops}-s{seed}")
    previous_layer: list[OpInstance] = []
    older_ops: list[OpInstance] = []
    remaining = num_ops

    while remaining > 0:
        layer_width = int(rng.integers(1, 2 * width + 1))
        layer_width = min(layer_width, remaining)
        layer: list[OpInstance] = []
        for _ in range(layer_width):
            deps: list[OpInstance] = []
            if previous_layer:
                num_deps = min(len(previous_layer), 1 + int(rng.integers(0, 3)))
                picks = rng.choice(len(previous_layer), size=num_deps, replace=False)
                deps = [previous_layer[int(i)] for i in sorted(picks)]
            if older_ops and rng.random() < skip_probability:
                deps.append(older_ops[int(rng.integers(0, len(older_ops)))])

            draw = rng.random()
            if draw < heavy_fraction:
                op_type = str(rng.choice(_HEAVY_TYPES))
                if op_type == "MatMul":
                    inputs, output = _random_matmul_shapes(rng, batch)
                    op = builder.add(
                        op_type, inputs=inputs, output=output, deps=deps, scope="syn"
                    )
                else:
                    inputs, output, attrs = _random_conv_shapes(rng, op_type, batch)
                    op = builder.add(
                        op_type,
                        inputs=inputs,
                        output=output,
                        deps=deps,
                        attrs=attrs,
                        scope="syn",
                    )
            elif draw < heavy_fraction + 0.1 and previous_layer:
                op_type = str(rng.choice(_REDUCE_TYPES))
                shape = _random_light_shape(rng, batch)
                op = builder.add(
                    op_type,
                    inputs=[shape],
                    output=TensorShape((1,)),
                    deps=deps,
                    scope="syn",
                )
            else:
                op_type = str(rng.choice(_LIGHT_TYPES))
                shape = _random_light_shape(rng, batch)
                if op_type in _BINARY_TYPES:
                    inputs: list[TensorShape] = [shape, shape]
                elif op_type == "BiasAdd":
                    inputs = [shape, TensorShape((shape.dims[-1],))]
                else:
                    inputs = [shape]
                op = builder.add(
                    op_type,
                    inputs=inputs,
                    output=shape,
                    deps=deps,
                    scope="syn",
                )
            layer.append(op)
        older_ops.extend(previous_layer)
        previous_layer = layer
        remaining -= layer_width

    return builder.build()


def synthetic_suite(
    sizes: tuple[int, ...] = (100, 500, 2000),
    *,
    seed: int = 0,
) -> dict[int, DataflowGraph]:
    """A family of synthetic graphs across the scaling-study size range."""
    return {size: synthetic_graph(size, seed=seed) for size in sizes}
