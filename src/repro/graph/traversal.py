"""Graph traversal helpers: topological order, ready frontier, critical path."""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

import networkx as nx

from repro.graph.dataflow import DataflowGraph


def topological_order(graph: DataflowGraph) -> tuple[str, ...]:
    """A deterministic topological ordering of operation names.

    Ties are broken lexicographically so that repeated runs (and tests)
    see the same order.
    """
    g = graph.to_networkx()
    return tuple(nx.lexicographical_topological_sort(g))


def ready_frontier(graph: DataflowGraph, completed: Iterable[str]) -> tuple[str, ...]:
    """Operations whose dependencies are all in ``completed`` and which are
    not themselves completed — the "ready to run" queue of the paper.
    """
    done = set(completed)
    unknown = done - {op.name for op in graph}
    if unknown:
        raise KeyError(f"completed set references unknown operations: {sorted(unknown)}")
    ready = []
    for op in graph:
        if op.name in done:
            continue
        if all(dep in done for dep in graph.predecessors(op.name)):
            ready.append(op.name)
    return tuple(sorted(ready))


def critical_path_length(
    graph: DataflowGraph,
    cost: Mapping[str, float] | Callable[[str], float],
) -> float:
    """Length of the longest weighted path (the step's lower bound on time
    with unlimited parallelism), with per-node costs from ``cost``.
    """
    get = cost.__getitem__ if isinstance(cost, Mapping) else cost
    order = topological_order(graph)
    longest: dict[str, float] = {}
    for name in order:
        node_cost = float(get(name))
        if node_cost < 0:
            raise ValueError(f"negative cost for {name}")
        preds = graph.predecessors(name)
        best_pred = max((longest[p] for p in preds), default=0.0)
        longest[name] = best_pred + node_cost
    return max(longest.values(), default=0.0)


def max_width(graph: DataflowGraph) -> int:
    """Maximum number of operations that could ever be ready simultaneously
    (the width of the DAG's level decomposition) — an upper bound on useful
    inter-op parallelism.
    """
    order = topological_order(graph)
    level: dict[str, int] = {}
    for name in order:
        preds = graph.predecessors(name)
        level[name] = 1 + max((level[p] for p in preds), default=-1)
    counts: dict[int, int] = {}
    for lvl in level.values():
        counts[lvl] = counts.get(lvl, 0) + 1
    return max(counts.values(), default=0)


def serial_time(
    graph: DataflowGraph,
    cost: Mapping[str, float] | Callable[[str], float],
) -> float:
    """Sum of all node costs (time to run every op back to back)."""
    get = cost.__getitem__ if isinstance(cost, Mapping) else cost
    return float(sum(get(op.name) for op in graph))
