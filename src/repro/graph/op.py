"""Operation instances — the schedulable unit of the dataflow graph.

Terminology follows the paper:

* an **operation** (or operation type) is a primitive such as ``Conv2D``;
* an **operation instance** is one node of the training-step graph — a
  specific invocation of an operation with concrete input tensor shapes
  (Inception-v3 has e.g. 42 instances of ``Conv2DBackpropFilter``, each
  with different input sizes).

The runtime's Strategy 1 picks a thread count per *signature* (operation
type + input sizes); Strategy 2 collapses that to one thread count per
operation type, keyed by its largest-input instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.graph.shapes import TensorShape


@dataclass(frozen=True)
class OpSignature:
    """Operation type plus input shapes: the key of the performance model."""

    op_type: str
    input_dims: tuple[tuple[int, ...], ...]

    def __str__(self) -> str:
        shapes = ", ".join("x".join(map(str, dims)) for dims in self.input_dims)
        return f"{self.op_type}[{shapes}]"


@dataclass(frozen=True)
class OpInstance:
    """A node of the dataflow graph.

    Attributes
    ----------
    name:
        Unique node name within its graph (e.g.
        ``"res2a/branch2b/Conv2DBackpropFilter"``).
    op_type:
        The operation primitive name (``"Conv2D"``, ``"MatMul"``, ...).
    inputs:
        Input tensor shapes.
    output:
        Output tensor shape.
    attrs:
        Additional operation attributes (kernel size, strides, ...).
    implementation:
        Which kernel library provides the op.  The paper only retunes
        intra-op parallelism for MKL-DNN ops (Eigen ops pay a large
        re-configuration overhead), so the runtime needs to know this.
    """

    name: str
    op_type: str
    inputs: tuple[TensorShape, ...]
    output: TensorShape
    # attrs is excluded from equality/hashing so instances stay hashable
    # (names are unique within a graph, so identity is unambiguous anyway).
    attrs: Mapping[str, Any] = field(default_factory=dict, compare=False)
    implementation: str = "mkl"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("operation instance needs a non-empty name")
        if not self.op_type:
            raise ValueError("operation instance needs a non-empty op_type")
        if self.implementation not in ("mkl", "eigen"):
            raise ValueError("implementation must be 'mkl' or 'eigen'")

    @property
    def signature(self) -> OpSignature:
        """Type + input-shape key used by the performance models."""
        return OpSignature(
            op_type=self.op_type,
            input_dims=tuple(s.dims for s in self.inputs),
        )

    @property
    def total_input_bytes(self) -> int:
        return sum(s.num_bytes for s in self.inputs)

    @property
    def total_input_elements(self) -> int:
        return sum(s.num_elements for s in self.inputs)

    @property
    def total_bytes(self) -> int:
        """Bytes of all inputs plus the output."""
        return self.total_input_bytes + self.output.num_bytes

    @property
    def is_tunable(self) -> bool:
        """Whether the runtime may change this op's intra-op parallelism."""
        return self.implementation == "mkl"

    def primary_input(self) -> TensorShape:
        """The first (usually the data) input shape."""
        if not self.inputs:
            raise ValueError(f"{self.name} has no inputs")
        return self.inputs[0]

    def __str__(self) -> str:
        return f"{self.name} <{self.op_type}>"
