"""Tensor shape description used throughout the graph and cost models."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator


@dataclass(frozen=True)
class TensorShape:
    """An immutable tensor shape with element/byte accounting.

    The convolution shapes in the paper are NHWC, e.g. ``(32, 8, 8, 2048)``
    means batch 32, 8x8 spatial, 2048 channels.

    >>> TensorShape((32, 8, 8, 384)).num_elements
    786432
    """

    dims: tuple[int, ...]
    dtype_bytes: int = 4

    def __init__(self, dims: Iterable[int], dtype_bytes: int = 4) -> None:
        dims_tuple = tuple(int(d) for d in dims)
        if any(d <= 0 for d in dims_tuple):
            raise ValueError(f"all dimensions must be positive, got {dims_tuple}")
        if dtype_bytes <= 0:
            raise ValueError("dtype_bytes must be positive")
        object.__setattr__(self, "dims", dims_tuple)
        object.__setattr__(self, "dtype_bytes", int(dtype_bytes))

    @property
    def rank(self) -> int:
        return len(self.dims)

    @property
    def num_elements(self) -> int:
        count = 1
        for d in self.dims:
            count *= d
        return count

    @property
    def num_bytes(self) -> int:
        return self.num_elements * self.dtype_bytes

    def __iter__(self) -> Iterator[int]:
        return iter(self.dims)

    def __len__(self) -> int:
        return len(self.dims)

    def __getitem__(self, index: int) -> int:
        return self.dims[index]

    def __str__(self) -> str:
        return "(" + ",".join(str(d) for d in self.dims) + ")"

    # -- common NHWC accessors ---------------------------------------------------

    @property
    def batch(self) -> int:
        """First dimension (batch for NHWC activations)."""
        return self.dims[0]

    @property
    def channels(self) -> int:
        """Last dimension (channels for NHWC activations)."""
        return self.dims[-1]

    @property
    def spatial(self) -> tuple[int, ...]:
        """The dimensions between batch and channels."""
        if self.rank < 3:
            return ()
        return self.dims[1:-1]

    def with_batch(self, batch: int) -> "TensorShape":
        """Return the same shape with a different leading dimension."""
        if self.rank == 0:
            raise ValueError("cannot change batch of a scalar shape")
        return TensorShape((batch, *self.dims[1:]), self.dtype_bytes)


def shape(*dims: int, dtype_bytes: int = 4) -> TensorShape:
    """Convenience constructor: ``shape(32, 8, 8, 384)``."""
    return TensorShape(dims, dtype_bytes=dtype_bytes)
