"""Convenience builder used by the NN model generators.

Keeps track of the "current" frontier so sequential layers chain
automatically, generates unique names, and understands the fact that a
training step contains forward ops, their gradients, and optimizer
update ops.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from repro.graph.dataflow import DataflowGraph
from repro.graph.op import OpInstance
from repro.graph.shapes import TensorShape


class GraphBuilder:
    """Incrementally construct a :class:`DataflowGraph`.

    >>> b = GraphBuilder("demo")
    >>> x = b.add("Conv2D", inputs=[TensorShape((32, 8, 8, 384))],
    ...           output=TensorShape((32, 8, 8, 384)))
    >>> y = b.add("BiasAdd", inputs=[x.output], output=x.output, deps=[x])
    >>> graph = b.build()
    >>> len(graph)
    2
    """

    def __init__(self, name: str) -> None:
        self.graph = DataflowGraph(name=name)
        self._counters: dict[str, int] = {}

    def _unique_name(self, op_type: str, scope: str | None) -> str:
        base = f"{scope}/{op_type}" if scope else op_type
        index = self._counters.get(base, 0)
        self._counters[base] = index + 1
        return f"{base}_{index}"

    def add(
        self,
        op_type: str,
        *,
        inputs: Sequence[TensorShape],
        output: TensorShape,
        deps: Iterable[OpInstance | str] = (),
        scope: str | None = None,
        attrs: Mapping[str, Any] | None = None,
        implementation: str = "mkl",
        name: str | None = None,
    ) -> OpInstance:
        """Add an operation instance and return it."""
        op = OpInstance(
            name=name or self._unique_name(op_type, scope),
            op_type=op_type,
            inputs=tuple(inputs),
            output=output,
            attrs=dict(attrs or {}),
            implementation=implementation,
        )
        self.graph.add_op(op, deps=deps)
        return op

    def chain(
        self,
        specs: Sequence[tuple[str, Sequence[TensorShape], TensorShape]],
        *,
        deps: Iterable[OpInstance | str] = (),
        scope: str | None = None,
    ) -> list[OpInstance]:
        """Add a linear chain of operations, each depending on the previous.

        ``specs`` is a list of ``(op_type, inputs, output)`` tuples.  The
        first element additionally depends on ``deps``.
        """
        added: list[OpInstance] = []
        previous: list[OpInstance | str] = list(deps)
        for op_type, inputs, output in specs:
            op = self.add(op_type, inputs=inputs, output=output, deps=previous, scope=scope)
            added.append(op)
            previous = [op]
        return added

    def join(
        self,
        op_type: str,
        branches: Sequence[OpInstance],
        *,
        inputs: Sequence[TensorShape],
        output: TensorShape,
        scope: str | None = None,
        attrs: Mapping[str, Any] | None = None,
    ) -> OpInstance:
        """Add an operation depending on every op in ``branches`` (e.g. a
        concat or add joining parallel branches)."""
        if not branches:
            raise ValueError("join needs at least one branch")
        return self.add(
            op_type,
            inputs=inputs,
            output=output,
            deps=branches,
            scope=scope,
            attrs=attrs,
        )

    def build(self) -> DataflowGraph:
        """Validate and return the constructed graph."""
        self.graph.validate()
        return self.graph
