"""Operation-level dataflow graph (the role TensorFlow's graph plays).

A training step is a DAG whose nodes are *operation instances*
(:class:`repro.graph.op.OpInstance`) — a concrete invocation of an
operation type such as ``Conv2DBackpropFilter`` with specific input
tensor shapes — and whose edges are data/control dependencies.  An
instance becomes *ready* once all of its predecessors have finished,
exactly the execution semantics the paper's scheduler works against.
"""

from repro.graph.shapes import TensorShape
from repro.graph.op import OpInstance, OpSignature
from repro.graph.dataflow import DataflowGraph
from repro.graph.builder import GraphBuilder
from repro.graph.synthetic import synthetic_graph, synthetic_suite
from repro.graph.traversal import (
    critical_path_length,
    max_width,
    ready_frontier,
    topological_order,
)

__all__ = [
    "TensorShape",
    "OpInstance",
    "OpSignature",
    "DataflowGraph",
    "GraphBuilder",
    "synthetic_graph",
    "synthetic_suite",
    "topological_order",
    "ready_frontier",
    "critical_path_length",
    "max_width",
]
