"""Inception-v3 training-step graph (ImageNet, batch 16 in the paper).

Inception-v3 is the largest of the four workloads: the paper reports
~16,000 operations per training step and 42 differently-shaped instances
of ``Conv2DBackpropFilter``.  This generator builds the standard
architecture — the 299x299 stem, three groups of Inception modules
(35x35, 17x17 and 8x8 grids, with the factorised 7x1/1x7 modules in the
middle group and the expanded 3x1/1x3 modules at the end), global average
pooling and a 1000-way classifier — and appends the backward pass with
Adam updates.  Branch structure inside a module gives the scheduler
genuinely independent operations to co-run.
"""

from __future__ import annotations

from repro.graph.builder import GraphBuilder
from repro.graph.dataflow import DataflowGraph
from repro.graph.op import OpInstance
from repro.graph.shapes import TensorShape
from repro.models.common import (
    ModelGraphState,
    add_loss_and_backward,
    conv_block,
    dense_block,
    pool_block,
)


def _branch_conv_chain(
    state: ModelGraphState,
    inputs: OpInstance,
    input_shape: TensorShape,
    specs: list[tuple[int, tuple[int, int], int]],
    *,
    scope: str,
) -> tuple[OpInstance, TensorShape]:
    """A chain of conv blocks described by (out_channels, kernel, stride)."""
    current, shape = inputs, input_shape
    for index, (channels, kernel, stride) in enumerate(specs):
        current, shape = conv_block(
            state,
            current,
            shape,
            channels,
            scope=f"{scope}/conv{index + 1}",
            kernel=kernel,
            stride=stride,
            padding="same",
            input_conversion=index == 0,
        )
    return current, shape


def _inception_module(
    state: ModelGraphState,
    inputs: OpInstance,
    input_shape: TensorShape,
    branch_specs: list[list[tuple[int, tuple[int, int], int]]],
    *,
    scope: str,
    pool_channels: int | None = None,
) -> tuple[OpInstance, TensorShape]:
    """A generic Inception module: parallel branches joined by a concat."""
    b = state.builder
    branch_outputs: list[OpInstance] = []
    total_channels = 0
    out_spatial: tuple[int, int] | None = None
    for index, specs in enumerate(branch_specs):
        out, shape = _branch_conv_chain(
            state, inputs, input_shape, specs, scope=f"{scope}/branch{index + 1}"
        )
        branch_outputs.append(out)
        total_channels += shape.channels
        out_spatial = (shape.dims[1], shape.dims[2])
    if pool_channels is not None:
        pooled, pooled_shape = pool_block(
            state,
            inputs,
            input_shape,
            scope=f"{scope}/branch_pool",
            kind="AvgPool",
            kernel=(3, 3),
            stride=1,
        )
        pool_proj, pool_proj_shape = conv_block(
            state,
            pooled,
            pooled_shape,
            pool_channels,
            scope=f"{scope}/branch_pool/proj",
            kernel=(1, 1),
            stride=1,
        )
        branch_outputs.append(pool_proj)
        total_channels += pool_proj_shape.channels
        out_spatial = (pool_proj_shape.dims[1], pool_proj_shape.dims[2])

    assert out_spatial is not None
    batch = input_shape.batch
    output_shape = TensorShape((batch, out_spatial[0], out_spatial[1], total_channels))
    concat = b.join(
        "ConcatV2",
        branch_outputs,
        inputs=[output_shape],
        output=output_shape,
        scope=scope,
    )
    return concat, output_shape


def build_inception_v3(
    batch_size: int = 16,
    *,
    image_size: int = 299,
    num_classes: int = 1000,
    module_counts: tuple[int, int, int] = (3, 4, 2),
) -> DataflowGraph:
    """Build the training-step graph of Inception-v3.

    ``module_counts`` controls how many Inception modules each of the
    three grid groups contains (the full network uses (3, 4, 2) plus the
    two grid-reduction modules, which are always emitted); smaller counts
    make convenient test fixtures.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be positive")

    builder = GraphBuilder(f"inception_v3-b{batch_size}")
    state = ModelGraphState(builder=builder)

    image_shape = TensorShape((batch_size, image_size, image_size, 3))
    stem_in = builder.add(
        "InputConversion", inputs=[image_shape], output=image_shape, scope="stem"
    )

    # --- stem: 299x299x3 -> 35x35x192 -----------------------------------------
    current, shape = conv_block(
        state, stem_in, image_shape, 32, scope="stem/conv1", kernel=(3, 3), stride=2,
        padding="valid",
    )
    current, shape = conv_block(
        state, current, shape, 32, scope="stem/conv2", kernel=(3, 3), stride=1,
        padding="valid",
    )
    current, shape = conv_block(
        state, current, shape, 64, scope="stem/conv3", kernel=(3, 3), stride=1
    )
    current, shape = pool_block(
        state, current, shape, scope="stem/pool1", kind="MaxPooling", kernel=(3, 3), stride=2
    )
    current, shape = conv_block(
        state, current, shape, 80, scope="stem/conv4", kernel=(1, 1), stride=1
    )
    current, shape = conv_block(
        state, current, shape, 192, scope="stem/conv5", kernel=(3, 3), stride=1,
        padding="valid",
    )
    current, shape = pool_block(
        state, current, shape, scope="stem/pool2", kind="MaxPooling", kernel=(3, 3), stride=2
    )

    # --- 35x35 modules (Inception-A) --------------------------------------------
    for index in range(module_counts[0]):
        current, shape = _inception_module(
            state,
            current,
            shape,
            branch_specs=[
                [(64, (1, 1), 1)],
                [(48, (1, 1), 1), (64, (5, 5), 1)],
                [(64, (1, 1), 1), (96, (3, 3), 1), (96, (3, 3), 1)],
            ],
            pool_channels=64,
            scope=f"mixed_35x35_{index + 1}",
        )

    # --- grid reduction 35x35 -> 17x17 ------------------------------------------
    current, shape = _inception_module(
        state,
        current,
        shape,
        branch_specs=[
            [(384, (3, 3), 2)],
            [(64, (1, 1), 1), (96, (3, 3), 1), (96, (3, 3), 2)],
            [(shape.channels, (1, 1), 2)],
        ],
        scope="reduction_a",
    )

    # --- 17x17 modules (Inception-B, factorised 7x1/1x7) -------------------------
    for index in range(module_counts[1]):
        width = 128 if index == 0 else 160
        current, shape = _inception_module(
            state,
            current,
            shape,
            branch_specs=[
                [(192, (1, 1), 1)],
                [(width, (1, 1), 1), (width, (1, 7), 1), (192, (7, 1), 1)],
                [
                    (width, (1, 1), 1),
                    (width, (7, 1), 1),
                    (width, (1, 7), 1),
                    (192, (7, 1), 1),
                ],
            ],
            pool_channels=192,
            scope=f"mixed_17x17_{index + 1}",
        )

    # --- grid reduction 17x17 -> 8x8 ----------------------------------------------
    current, shape = _inception_module(
        state,
        current,
        shape,
        branch_specs=[
            [(192, (1, 1), 1), (320, (3, 3), 2)],
            [(192, (1, 1), 1), (192, (1, 7), 1), (192, (7, 1), 1), (192, (3, 3), 2)],
            [(shape.channels, (1, 1), 2)],
        ],
        scope="reduction_b",
    )

    # --- 8x8 modules (Inception-C) --------------------------------------------------
    for index in range(module_counts[2]):
        current, shape = _inception_module(
            state,
            current,
            shape,
            branch_specs=[
                [(320, (1, 1), 1)],
                [(384, (1, 1), 1), (384, (1, 3), 1), (384, (3, 1), 1)],
                [(448, (1, 1), 1), (384, (3, 3), 1), (384, (1, 3), 1), (384, (3, 1), 1)],
            ],
            pool_channels=192,
            scope=f"mixed_8x8_{index + 1}",
        )

    # --- classifier head --------------------------------------------------------------
    pooled, pooled_shape = pool_block(
        state,
        current,
        shape,
        scope="head/avgpool",
        kind="AvgPool",
        kernel=(shape.dims[1], shape.dims[2]),
        stride=shape.dims[1],
    )
    logits, logits_shape = dense_block(
        state, pooled, pooled_shape, num_classes, scope="head/fc"
    )
    add_loss_and_backward(state, logits, logits_shape, optimizer="ApplyAdam")
    return builder.build()
