"""Training-step graph generators for the paper's four NN models.

Each generator emits the operation-level dataflow graph of **one training
step** — forward pass, backward pass and optimiser updates — with
realistic operation types, instance counts and tensor shapes:

* :mod:`repro.models.resnet50` — ResNet-50 on CIFAR-10, batch 64;
* :mod:`repro.models.dcgan` — DCGAN on MNIST, batch 64;
* :mod:`repro.models.inception_v3` — Inception-v3 on ImageNet, batch 16;
* :mod:`repro.models.lstm` — a 2-layer word-level LSTM on PTB, batch 20.

The graphs are what the schedulers consume; they are not numerical
networks (no weights are trained), because the paper's contribution is
entirely about *when and with how many threads* each operation runs.
"""

from repro.models.registry import (
    MODEL_BUILDERS,
    available_models,
    build_model,
    model_batch_size,
)
from repro.models.resnet50 import build_resnet50
from repro.models.dcgan import build_dcgan
from repro.models.inception_v3 import build_inception_v3
from repro.models.lstm import build_lstm

__all__ = [
    "MODEL_BUILDERS",
    "available_models",
    "build_model",
    "model_batch_size",
    "build_resnet50",
    "build_dcgan",
    "build_inception_v3",
    "build_lstm",
]
