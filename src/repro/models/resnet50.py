"""ResNet-50 training-step graph (CIFAR-10, batch 64 in the paper).

The generator follows the standard bottleneck architecture — an initial
convolution followed by four stages of [3, 4, 6, 3] bottleneck blocks
with 256/512/1024/2048 output channels — and appends the backward pass
and Adam updates.  On CIFAR-sized inputs the spatial resolution starts at
32x32 and the stem keeps it (no aggressive 7x7/stride-2 + max-pool stem),
which matches the TensorFlow models-repository CIFAR variant the paper
uses.
"""

from __future__ import annotations

from repro.graph.builder import GraphBuilder
from repro.graph.dataflow import DataflowGraph
from repro.graph.op import OpInstance
from repro.graph.shapes import TensorShape
from repro.models.common import (
    ModelGraphState,
    add_loss_and_backward,
    conv_block,
    dense_block,
    pool_block,
)

#: Bottleneck blocks per stage for ResNet-50.
STAGE_BLOCKS: tuple[int, ...] = (3, 4, 6, 3)
#: Output channels of each stage (after the x4 bottleneck expansion).
STAGE_CHANNELS: tuple[int, ...] = (256, 512, 1024, 2048)


def _bottleneck(
    state: ModelGraphState,
    inputs: OpInstance,
    input_shape: TensorShape,
    out_channels: int,
    *,
    scope: str,
    stride: int = 1,
) -> tuple[OpInstance, TensorShape]:
    """One bottleneck residual block: 1x1 reduce, 3x3, 1x1 expand, shortcut."""
    b = state.builder
    mid_channels = out_channels // 4

    reduce_out, reduce_shape = conv_block(
        state,
        inputs,
        input_shape,
        mid_channels,
        scope=f"{scope}/reduce",
        kernel=(1, 1),
        stride=1,
    )
    mid_out, mid_shape = conv_block(
        state,
        reduce_out,
        reduce_shape,
        mid_channels,
        scope=f"{scope}/spatial",
        kernel=(3, 3),
        stride=stride,
        input_conversion=True,
    )
    expand_out, expand_shape = conv_block(
        state,
        mid_out,
        mid_shape,
        out_channels,
        scope=f"{scope}/expand",
        kernel=(1, 1),
        stride=1,
        activation=None,
    )

    needs_projection = stride != 1 or input_shape.channels != out_channels
    if needs_projection:
        shortcut, _ = conv_block(
            state,
            inputs,
            input_shape,
            out_channels,
            scope=f"{scope}/shortcut",
            kernel=(1, 1),
            stride=stride,
            activation=None,
        )
    else:
        shortcut = inputs

    summed = b.add(
        "Add",
        inputs=[expand_shape, expand_shape],
        output=expand_shape,
        deps=[expand_out, shortcut],
        scope=scope,
    )
    relu = b.add(
        "Relu",
        inputs=[expand_shape],
        output=expand_shape,
        deps=[summed],
        scope=scope,
    )
    return relu, expand_shape


def build_resnet50(
    batch_size: int = 64,
    *,
    image_size: int = 32,
    num_classes: int = 10,
    stage_blocks: tuple[int, ...] = STAGE_BLOCKS,
) -> DataflowGraph:
    """Build the training-step graph of ResNet-50.

    Parameters mirror the paper's setup (CIFAR-10: 32x32 images, 10
    classes, batch 64); smaller ``stage_blocks`` make handy test fixtures.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    if len(stage_blocks) != len(STAGE_CHANNELS):
        raise ValueError("stage_blocks must have four entries")

    builder = GraphBuilder(f"resnet50-b{batch_size}")
    state = ModelGraphState(builder=builder)

    image_shape = TensorShape((batch_size, image_size, image_size, 3))
    stem_in = builder.add(
        "InputConversion",
        inputs=[image_shape],
        output=image_shape,
        scope="stem",
    )
    current, shape = conv_block(
        state,
        stem_in,
        image_shape,
        64,
        scope="stem/conv1",
        kernel=(3, 3),
        stride=1,
        input_conversion=False,
    )
    current, shape = pool_block(
        state, current, shape, scope="stem/pool", kind="MaxPooling", kernel=(3, 3), stride=1
    )

    for stage_index, (blocks, channels) in enumerate(zip(stage_blocks, STAGE_CHANNELS)):
        for block_index in range(blocks):
            stride = 2 if (block_index == 0 and stage_index > 0) else 1
            current, shape = _bottleneck(
                state,
                current,
                shape,
                channels,
                scope=f"stage{stage_index + 1}/block{block_index + 1}",
                stride=stride,
            )

    pooled, pooled_shape = pool_block(
        state,
        current,
        shape,
        scope="head/avgpool",
        kind="AvgPool",
        kernel=(shape.dims[1], shape.dims[2]),
        stride=shape.dims[1],
    )
    logits, logits_shape = dense_block(
        state, pooled, pooled_shape, num_classes, scope="head/fc"
    )
    add_loss_and_backward(state, logits, logits_shape, optimizer="ApplyAdam")
    return builder.build()
