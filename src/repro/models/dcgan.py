"""DCGAN training-step graph (MNIST, batch 64 in the paper).

One DCGAN training step runs the generator (a stack of transposed
convolutions turning a latent vector into a 64x64 image), the
discriminator on both the real and the generated batch (strided
convolutions with leaky-ReLU and batch-norm), and the backward passes of
both networks with Adam updates — which is why ``Conv2DBackpropInput``,
``Conv2DBackpropFilter`` and ``ApplyAdam`` dominate its profile
(Table VI of the paper).
"""

from __future__ import annotations

from repro.graph.builder import GraphBuilder
from repro.graph.dataflow import DataflowGraph
from repro.graph.op import OpInstance
from repro.graph.shapes import TensorShape
from repro.models.common import (
    ModelGraphState,
    add_loss_and_backward,
    conv_block,
    deconv_block,
    dense_block,
)


def _generator(
    state: ModelGraphState,
    batch_size: int,
    latent_dim: int,
    base_channels: int,
) -> tuple[OpInstance, TensorShape]:
    """Latent vector -> 64x64x1 image through four transposed convolutions."""
    b = state.builder
    latent_shape = TensorShape((batch_size, latent_dim))
    project, project_shape = dense_block(
        state,
        None,
        latent_shape,
        4 * 4 * base_channels * 8,
        scope="gen/project",
        activation="Relu",
    )
    current = b.add(
        "Reshape",
        inputs=[project_shape],
        output=TensorShape((batch_size, 4, 4, base_channels * 8)),
        deps=[project],
        scope="gen",
    )
    shape = TensorShape((batch_size, 4, 4, base_channels * 8))
    channels = (base_channels * 4, base_channels * 2, base_channels, 1)
    out: OpInstance = current
    for index, out_channels in enumerate(channels):
        is_last = index == len(channels) - 1
        out, shape = deconv_block(
            state,
            out,
            shape,
            out_channels,
            scope=f"gen/deconv{index + 1}",
            kernel=(5, 5),
            stride=2,
            batch_norm=not is_last,
            activation="Tanh" if is_last else "Relu",
        )
    return out, shape


def _discriminator(
    state: ModelGraphState,
    image: OpInstance | None,
    image_shape: TensorShape,
    base_channels: int,
    *,
    scope: str,
) -> tuple[OpInstance, TensorShape]:
    """64x64 image -> real/fake logit through four strided convolutions."""
    channels = (base_channels, base_channels * 2, base_channels * 4, base_channels * 8)
    current: OpInstance | None = image
    shape = image_shape
    for index, out_channels in enumerate(channels):
        current, shape = conv_block(
            state,
            current,
            shape,
            out_channels,
            scope=f"{scope}/conv{index + 1}",
            kernel=(5, 5),
            stride=2,
            batch_norm=index > 0,
            activation="LeakyRelu",
            input_conversion=index == 0,
        )
    logit, logit_shape = dense_block(state, current, shape, 1, scope=f"{scope}/logit")
    return logit, logit_shape


def build_dcgan(
    batch_size: int = 64,
    *,
    image_size: int = 64,
    latent_dim: int = 100,
    base_channels: int = 64,
) -> DataflowGraph:
    """Build the training-step graph of DCGAN (generator + discriminator)."""
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    if image_size % 16 != 0:
        raise ValueError("image_size must be divisible by 16 (four stride-2 layers)")

    builder = GraphBuilder(f"dcgan-b{batch_size}")
    state = ModelGraphState(builder=builder)

    fake_image, fake_shape = _generator(state, batch_size, latent_dim, base_channels)

    real_shape = TensorShape((batch_size, image_size, image_size, 1))
    real_input = builder.add(
        "InputConversion",
        inputs=[real_shape],
        output=real_shape,
        scope="data",
    )
    real_logit, logit_shape = _discriminator(
        state, real_input, real_shape, base_channels, scope="disc/real"
    )
    fake_logit, _ = _discriminator(
        state, fake_image, fake_shape, base_channels, scope="disc/fake"
    )

    # GAN losses use sigmoid cross-entropy on the two logits.
    add_loss_and_backward(
        state,
        fake_logit,
        logit_shape,
        optimizer="ApplyAdam",
        loss_op="SparseSoftmaxCross",
        label_classes=2,
        scope="loss",
        extra_tail=[real_logit],
    )
    return builder.build()
