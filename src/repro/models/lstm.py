"""Word-level LSTM language-model training-step graph (PTB, batch 20).

The paper trains the TensorFlow models-repository PTB LSTM (batch 20).
One training step unrolls ``num_steps`` time steps of a two-layer LSTM:
for every (layer, time) cell there is one gate GEMM followed by a handful
of small elementwise operations (sigmoid/tanh gates, cell-state updates),
then a vocabulary-sized softmax cross-entropy loss and the BPTT backward
pass.  The step therefore consists of *many small operations* — none of
which needs the whole chip — which is why the paper's runtime gains come
almost entirely from concurrency control and co-running (Strategies 1-3)
and Strategy 4 finds nothing to do (Section IV-B).
"""

from __future__ import annotations

from repro.graph.builder import GraphBuilder
from repro.graph.dataflow import DataflowGraph
from repro.graph.op import OpInstance
from repro.graph.shapes import TensorShape
from repro.models.common import ModelGraphState, add_loss_and_backward, dense_block


def _lstm_cell(
    state: ModelGraphState,
    x: OpInstance,
    x_shape: TensorShape,
    h_prev: OpInstance | None,
    c_prev: OpInstance | None,
    hidden: int,
    *,
    scope: str,
) -> tuple[OpInstance, OpInstance, TensorShape]:
    """One LSTM cell: gate GEMM + elementwise gate math.

    Returns (new_h, new_c, hidden_shape).
    """
    b = state.builder
    batch = x_shape.dims[0]
    hidden_shape = TensorShape((batch, hidden))
    concat_shape = TensorShape((batch, x_shape.dims[-1] + hidden))
    gates_shape = TensorShape((batch, 4 * hidden))

    concat_deps = [x] + ([h_prev] if h_prev is not None else [])
    concat = b.add(
        "ConcatV2",
        inputs=[x_shape, hidden_shape],
        output=concat_shape,
        deps=concat_deps,
        scope=scope,
    )
    gates, _ = dense_block(
        state,
        concat,
        concat_shape,
        4 * hidden,
        scope=f"{scope}/gates",
        bias=True,
    )
    split = b.add(
        "Split",
        inputs=[gates_shape],
        output=gates_shape,
        deps=[gates],
        scope=scope,
    )
    input_gate = b.add("Sigmoid", inputs=[hidden_shape], output=hidden_shape, deps=[split], scope=scope)
    forget_gate = b.add("Sigmoid", inputs=[hidden_shape], output=hidden_shape, deps=[split], scope=scope)
    output_gate = b.add("Sigmoid", inputs=[hidden_shape], output=hidden_shape, deps=[split], scope=scope)
    candidate = b.add("Tanh", inputs=[hidden_shape], output=hidden_shape, deps=[split], scope=scope)

    forget_term_deps = [forget_gate] + ([c_prev] if c_prev is not None else [])
    forget_term = b.add(
        "Mul",
        inputs=[hidden_shape, hidden_shape],
        output=hidden_shape,
        deps=forget_term_deps,
        scope=scope,
    )
    input_term = b.add(
        "Mul",
        inputs=[hidden_shape, hidden_shape],
        output=hidden_shape,
        deps=[input_gate, candidate],
        scope=scope,
    )
    new_c = b.add(
        "AddN",
        inputs=[hidden_shape, hidden_shape],
        output=hidden_shape,
        deps=[forget_term, input_term],
        scope=scope,
    )
    cell_tanh = b.add("Tanh", inputs=[hidden_shape], output=hidden_shape, deps=[new_c], scope=scope)
    new_h = b.add(
        "Mul",
        inputs=[hidden_shape, hidden_shape],
        output=hidden_shape,
        deps=[output_gate, cell_tanh],
        scope=scope,
    )
    return new_h, new_c, hidden_shape


def build_lstm(
    batch_size: int = 20,
    *,
    num_steps: int = 20,
    hidden_size: int = 200,
    num_layers: int = 2,
    vocab_size: int = 10000,
    embedding_size: int | None = None,
) -> DataflowGraph:
    """Build the training-step graph of the PTB LSTM language model.

    Defaults correspond to the "small" PTB configuration of the
    TensorFlow models repository, which matches the per-operation times
    the paper reports for LSTM (top operations in the low-millisecond
    range, Table VI).
    """
    if batch_size < 1 or num_steps < 1 or num_layers < 1:
        raise ValueError("batch_size, num_steps and num_layers must be positive")
    emb = embedding_size if embedding_size is not None else hidden_size

    builder = GraphBuilder(f"lstm-b{batch_size}")
    state = ModelGraphState(builder=builder)

    token_shape = TensorShape((batch_size, num_steps))
    embed_shape = TensorShape((batch_size, num_steps, emb))
    embedding = builder.add(
        "Gather",
        inputs=[TensorShape((vocab_size, emb)), token_shape],
        output=embed_shape,
        scope="embedding",
    )

    # Per-time-step input slices.
    step_input_shape = TensorShape((batch_size, emb))
    step_inputs: list[OpInstance] = []
    for t in range(num_steps):
        step_inputs.append(
            builder.add(
                "Slice",
                inputs=[embed_shape],
                output=step_input_shape,
                deps=[embedding],
                scope=f"input/t{t}",
            )
        )

    # Unrolled 2-layer LSTM.
    hidden_shape = TensorShape((batch_size, hidden_size))
    h_prev: list[OpInstance | None] = [None] * num_layers
    c_prev: list[OpInstance | None] = [None] * num_layers
    outputs: list[OpInstance] = []
    for t in range(num_steps):
        layer_input = step_inputs[t]
        layer_input_shape = step_input_shape
        for layer in range(num_layers):
            new_h, new_c, hidden_shape = _lstm_cell(
                state,
                layer_input,
                layer_input_shape,
                h_prev[layer],
                c_prev[layer],
                hidden_size,
                scope=f"lstm/layer{layer}/t{t}",
            )
            h_prev[layer] = new_h
            c_prev[layer] = new_c
            layer_input = new_h
            layer_input_shape = hidden_shape
        outputs.append(layer_input)

    # Stack outputs and project to the vocabulary.
    stacked_shape = TensorShape((batch_size * num_steps, hidden_size))
    stacked = builder.join(
        "ConcatV2",
        outputs,
        inputs=[stacked_shape],
        output=stacked_shape,
        scope="output",
    )
    logits, logits_shape = dense_block(
        state, stacked, stacked_shape, vocab_size, scope="output/softmax_w"
    )
    add_loss_and_backward(
        state,
        logits,
        logits_shape,
        optimizer="ApplyGradientDescent",
        loss_op="SparseSoftmaxCross",
    )
    return builder.build()
