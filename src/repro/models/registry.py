"""Registry of the model graph builders evaluated in the paper."""

from __future__ import annotations

from typing import Callable

from repro.graph.dataflow import DataflowGraph
from repro.models.dcgan import build_dcgan
from repro.models.inception_v3 import build_inception_v3
from repro.models.lstm import build_lstm
from repro.models.resnet50 import build_resnet50

ModelBuilder = Callable[..., DataflowGraph]

#: Model name -> builder.  Names follow the paper's spelling.
MODEL_BUILDERS: dict[str, ModelBuilder] = {
    "resnet50": build_resnet50,
    "dcgan": build_dcgan,
    "inception_v3": build_inception_v3,
    "lstm": build_lstm,
}

#: Batch sizes used in the paper's evaluation (Section IV-A).
PAPER_BATCH_SIZES: dict[str, int] = {
    "resnet50": 64,
    "dcgan": 64,
    "inception_v3": 16,
    "lstm": 20,
}

_ALIASES = {
    "resnet-50": "resnet50",
    "resnet_50": "resnet50",
    "inception-v3": "inception_v3",
    "inceptionv3": "inception_v3",
    "inception": "inception_v3",
}


def _canonical(name: str) -> str:
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    if key not in MODEL_BUILDERS:
        raise KeyError(
            f"unknown model {name!r}; available: {', '.join(sorted(MODEL_BUILDERS))}"
        )
    return key


def available_models() -> tuple[str, ...]:
    """Names of all models with a graph builder."""
    return tuple(sorted(MODEL_BUILDERS))


def model_batch_size(name: str) -> int:
    """The batch size the paper uses for ``name``."""
    return PAPER_BATCH_SIZES[_canonical(name)]


def build_model(name: str, batch_size: int | None = None, **kwargs) -> DataflowGraph:
    """Build the training-step graph of ``name``.

    ``batch_size`` defaults to the paper's setting for that model; extra
    keyword arguments are forwarded to the specific builder (e.g.
    ``module_counts`` for Inception-v3 or ``stage_blocks`` for ResNet-50,
    which are handy for fast tests).
    """
    key = _canonical(name)
    builder = MODEL_BUILDERS[key]
    batch = batch_size if batch_size is not None else PAPER_BATCH_SIZES[key]
    return builder(batch, **kwargs)


#: Builder kwargs shrinking the deepest models for fast iteration while
#: preserving each graph's op-type mix (tests, scenarios, benchmarks).
REDUCED_MODEL_KWARGS: dict[str, dict] = {
    "inception_v3": {"module_counts": (1, 1, 1)},
    "resnet50": {"stage_blocks": (1, 1, 1, 1)},
    "lstm": {"num_steps": 6},
}


def build_reduced_model(name: str, batch_size: int | None = None) -> DataflowGraph:
    """Build a shrunk variant of ``name`` (same op mix, far fewer nodes)."""
    key = _canonical(name)
    return build_model(key, batch_size=batch_size, **REDUCED_MODEL_KWARGS.get(key, {}))
