"""Shared building blocks for the NN model graph generators.

The generators compose a small vocabulary of layer macros (convolution +
batch-norm + ReLU, dense layers, pooling) into full training-step graphs.
Every macro adds the forward operation(s) *and returns enough bookkeeping
to later add the corresponding backward and optimiser operations*, so the
resulting graphs contain the op mix the paper profiles (the
``Conv2DBackpropFilter`` / ``Conv2DBackpropInput`` instances, the MKL
layout conversion ops ``InputConversion`` / ``ToTf``, ``ApplyAdam``
updates, etc.).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.builder import GraphBuilder
from repro.graph.op import OpInstance
from repro.graph.shapes import TensorShape


@dataclass
class LayerRecord:
    """Bookkeeping of one trainable layer for backward-pass generation."""

    scope: str
    kind: str  # "conv", "dense", "deconv"
    forward_output: OpInstance
    input_shape: TensorShape
    output_shape: TensorShape
    weight_shape: TensorShape
    attrs: dict = field(default_factory=dict)


@dataclass
class ModelGraphState:
    """Mutable state threaded through a model generator."""

    builder: GraphBuilder
    layers: list[LayerRecord] = field(default_factory=list)
    #: Ops whose outputs feed the loss (ends of the forward pass).
    forward_tail: list[OpInstance] = field(default_factory=list)


def conv_output_shape(
    input_shape: TensorShape,
    out_channels: int,
    *,
    stride: int = 1,
    padding: str = "same",
    kernel: tuple[int, int] = (3, 3),
) -> TensorShape:
    """NHWC output shape of a 2-D convolution."""
    n, h, w, _ = input_shape.dims
    if padding == "same":
        oh = -(-h // stride)
        ow = -(-w // stride)
    elif padding == "valid":
        kh, kw = kernel
        oh = max(1, (h - kh) // stride + 1)
        ow = max(1, (w - kw) // stride + 1)
    else:
        raise ValueError(f"unknown padding {padding!r}")
    return TensorShape((n, oh, ow, out_channels))


def conv_block(
    state: ModelGraphState,
    inputs: OpInstance | None,
    input_shape: TensorShape,
    out_channels: int,
    *,
    scope: str,
    kernel: tuple[int, int] = (3, 3),
    stride: int = 1,
    padding: str = "same",
    batch_norm: bool = True,
    activation: str | None = "Relu",
    input_conversion: bool = False,
) -> tuple[OpInstance, TensorShape]:
    """Convolution (+ optional BN and activation) forward macro.

    Returns the last forward op of the block and its output shape.
    """
    b = state.builder
    deps = [inputs] if inputs is not None else []
    kh, kw = kernel
    weight_shape = TensorShape((kh, kw, input_shape.channels, out_channels))
    output_shape = conv_output_shape(
        input_shape, out_channels, stride=stride, padding=padding, kernel=kernel
    )
    current_input_shape = input_shape
    if input_conversion:
        conv_in = b.add(
            "InputConversion",
            inputs=[input_shape],
            output=input_shape,
            deps=deps,
            scope=scope,
        )
        deps = [conv_in]
    conv = b.add(
        "Conv2D",
        inputs=[current_input_shape],
        output=output_shape,
        deps=deps,
        scope=scope,
        attrs={"kernel": kernel, "stride": stride, "padding": padding},
    )
    state.layers.append(
        LayerRecord(
            scope=scope,
            kind="conv",
            forward_output=conv,
            input_shape=current_input_shape,
            output_shape=output_shape,
            weight_shape=weight_shape,
            attrs={"kernel": kernel, "stride": stride},
        )
    )
    last = conv
    if batch_norm:
        last = b.add(
            "FusedBatchNorm",
            inputs=[output_shape],
            output=output_shape,
            deps=[last],
            scope=scope,
        )
    else:
        last = b.add(
            "BiasAdd",
            inputs=[output_shape, TensorShape((out_channels,))],
            output=output_shape,
            deps=[last],
            scope=scope,
        )
    if activation is not None:
        last = b.add(
            activation,
            inputs=[output_shape],
            output=output_shape,
            deps=[last],
            scope=scope,
        )
    return last, output_shape


def deconv_block(
    state: ModelGraphState,
    inputs: OpInstance | None,
    input_shape: TensorShape,
    out_channels: int,
    *,
    scope: str,
    kernel: tuple[int, int] = (5, 5),
    stride: int = 2,
    batch_norm: bool = True,
    activation: str | None = "Relu",
) -> tuple[OpInstance, TensorShape]:
    """Transposed-convolution block (DCGAN generator)."""
    b = state.builder
    deps = [inputs] if inputs is not None else []
    n, h, w, _ = input_shape.dims
    output_shape = TensorShape((n, h * stride, w * stride, out_channels))
    kh, kw = kernel
    weight_shape = TensorShape((kh, kw, out_channels, input_shape.channels))
    deconv = b.add(
        "Conv2DTranspose",
        inputs=[input_shape],
        output=output_shape,
        deps=deps,
        scope=scope,
        attrs={"kernel": kernel, "stride": stride},
    )
    state.layers.append(
        LayerRecord(
            scope=scope,
            kind="deconv",
            forward_output=deconv,
            input_shape=input_shape,
            output_shape=output_shape,
            weight_shape=weight_shape,
            attrs={"kernel": kernel, "stride": stride},
        )
    )
    last = deconv
    if batch_norm:
        last = b.add(
            "FusedBatchNorm",
            inputs=[output_shape],
            output=output_shape,
            deps=[last],
            scope=scope,
        )
    if activation is not None:
        last = b.add(
            activation,
            inputs=[output_shape],
            output=output_shape,
            deps=[last],
            scope=scope,
        )
    return last, output_shape


def dense_block(
    state: ModelGraphState,
    inputs: OpInstance | None,
    input_shape: TensorShape,
    out_features: int,
    *,
    scope: str,
    activation: str | None = None,
    bias: bool = True,
) -> tuple[OpInstance, TensorShape]:
    """Fully connected (GEMM) layer macro."""
    b = state.builder
    deps = [inputs] if inputs is not None else []
    batch = input_shape.dims[0]
    in_features = input_shape.num_elements // batch
    flat_shape = TensorShape((batch, in_features))
    weight_shape = TensorShape((in_features, out_features))
    output_shape = TensorShape((batch, out_features))
    matmul = b.add(
        "MatMul",
        inputs=[flat_shape, weight_shape],
        output=output_shape,
        deps=deps,
        scope=scope,
    )
    state.layers.append(
        LayerRecord(
            scope=scope,
            kind="dense",
            forward_output=matmul,
            input_shape=flat_shape,
            output_shape=output_shape,
            weight_shape=weight_shape,
        )
    )
    last = matmul
    if bias:
        last = b.add(
            "BiasAdd",
            inputs=[output_shape, TensorShape((out_features,))],
            output=output_shape,
            deps=[last],
            scope=scope,
        )
    if activation is not None:
        last = b.add(
            activation,
            inputs=[output_shape],
            output=output_shape,
            deps=[last],
            scope=scope,
        )
    return last, output_shape


def pool_block(
    state: ModelGraphState,
    inputs: OpInstance,
    input_shape: TensorShape,
    *,
    scope: str,
    kind: str = "MaxPooling",
    kernel: tuple[int, int] = (3, 3),
    stride: int = 2,
) -> tuple[OpInstance, TensorShape]:
    """Pooling layer macro (records no trainable layer)."""
    b = state.builder
    n, h, w, c = input_shape.dims
    output_shape = TensorShape((n, max(1, -(-h // stride)), max(1, -(-w // stride)), c))
    pool = b.add(
        kind,
        inputs=[input_shape],
        output=output_shape,
        deps=[inputs],
        scope=scope,
        attrs={"kernel": kernel, "stride": stride},
    )
    return pool, output_shape


def add_loss_and_backward(
    state: ModelGraphState,
    logits: OpInstance,
    logits_shape: TensorShape,
    *,
    optimizer: str = "ApplyAdam",
    loss_op: str = "SparseSoftmaxCross",
    label_classes: int | None = None,
    scope: str = "loss",
    extra_tail: list[OpInstance] | None = None,
) -> OpInstance:
    """Append the loss, the layer-by-layer backward pass and the optimiser.

    The backward pass walks the recorded layers in reverse order and adds,
    per layer, the gradient ops the corresponding TensorFlow graph would
    contain (conv layers get ``Conv2DBackpropFilter`` / ``Conv2DBackpropInput``
    plus the layout conversions, dense layers get gradient GEMMs, and every
    trainable layer gets an optimiser update op).  Returns the final
    gradient-aggregation op so callers can append more work after it.
    """
    b = state.builder
    classes = label_classes if label_classes is not None else logits_shape.dims[-1]
    batch = logits_shape.dims[0]
    loss_deps: list[OpInstance] = [logits] + list(extra_tail or [])
    loss = b.add(
        loss_op,
        inputs=[logits_shape, TensorShape((batch,))],
        output=TensorShape((batch,)),
        deps=loss_deps,
        scope=scope,
        attrs={"classes": classes},
    )
    loss_value = b.add(
        "Mean",
        inputs=[TensorShape((batch,))],
        output=TensorShape((1,)),
        deps=[loss],
        scope=scope,
    )
    grad_seed = b.add(
        "Mul",
        inputs=[logits_shape, logits_shape],
        output=logits_shape,
        deps=[loss_value],
        scope=scope,
    )

    upstream: OpInstance = grad_seed
    for layer in reversed(state.layers):
        upstream = _backward_for_layer(state, layer, upstream, optimizer)
    return upstream


def _backward_for_layer(
    state: ModelGraphState,
    layer: LayerRecord,
    upstream: OpInstance,
    optimizer: str,
) -> OpInstance:
    b = state.builder
    scope = f"grad/{layer.scope}"
    if layer.kind in ("conv", "deconv"):
        # Activation gradient (elementwise mask multiply), then the MKL
        # layout conversion the TensorFlow/MKL-DNN graph inserts before the
        # convolution gradients.
        act_grad = b.add(
            "Mul",
            inputs=[layer.output_shape, layer.output_shape],
            output=layer.output_shape,
            deps=[upstream, layer.forward_output],
            scope=scope,
        )
        grad_conv_in = b.add(
            "InputConversion",
            inputs=[layer.output_shape],
            output=layer.output_shape,
            deps=[act_grad],
            scope=scope,
        )
        dfilter = b.add(
            "Conv2DBackpropFilter",
            inputs=[layer.input_shape, layer.output_shape],
            output=layer.weight_shape,
            deps=[grad_conv_in],
            scope=scope,
            attrs=dict(layer.attrs),
        )
        dinput = b.add(
            "Conv2DBackpropInput",
            inputs=[layer.input_shape, layer.output_shape],
            output=layer.input_shape,
            deps=[grad_conv_in],
            scope=scope,
            attrs=dict(layer.attrs),
        )
        to_tf = b.add(
            "ToTf",
            inputs=[layer.input_shape],
            output=layer.input_shape,
            deps=[dinput],
            scope=scope,
        )
        bn_grad = b.add(
            "FusedBatchNormGrad",
            inputs=[layer.output_shape],
            output=layer.output_shape,
            deps=[grad_conv_in],
            scope=scope,
        )
        # Broadcasting the per-channel BN scale/offset gradients back to the
        # activation shape shows up as a Tile op in the TensorFlow graph.
        bn_tile = b.add(
            "Tile",
            inputs=[TensorShape((layer.output_shape.dims[-1],))],
            output=layer.output_shape,
            deps=[bn_grad],
            scope=scope,
        )
        update = b.add(
            optimizer,
            inputs=[layer.weight_shape],
            output=layer.weight_shape,
            deps=[dfilter],
            scope=scope,
        )
        # The next (earlier) layer's upstream gradient is the input gradient,
        # after the BN gradient merges in.
        merged = b.add(
            "AddN",
            inputs=[layer.input_shape, layer.input_shape],
            output=layer.input_shape,
            deps=[to_tf, bn_tile],
            scope=scope,
        )
        # Optimiser updates are sinks; keep them reachable from the merge so
        # a step only finishes when every update is done.
        b.graph.add_dependency(update, merged)
        return merged

    # dense layer
    dweight = b.add(
        "MatMul",
        inputs=[layer.input_shape, layer.output_shape],
        output=layer.weight_shape,
        deps=[upstream, layer.forward_output],
        scope=scope,
        attrs={"transpose_a": True},
    )
    dinput = b.add(
        "MatMul",
        inputs=[layer.output_shape, layer.weight_shape],
        output=layer.input_shape,
        deps=[upstream, layer.forward_output],
        scope=scope,
        attrs={"transpose_b": True},
    )
    dbias = b.add(
        "BiasAddGrad",
        inputs=[layer.output_shape],
        output=TensorShape((layer.output_shape.dims[-1],)),
        deps=[upstream],
        scope=scope,
    )
    update = b.add(
        optimizer,
        inputs=[layer.weight_shape],
        output=layer.weight_shape,
        deps=[dweight, dbias],
        scope=scope,
    )
    merged = b.add(
        "AddN",
        inputs=[layer.input_shape, layer.input_shape],
        output=layer.input_shape,
        deps=[dinput],
        scope=scope,
    )
    b.graph.add_dependency(update, merged)
    return merged
