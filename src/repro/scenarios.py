"""Named, seedable scenarios: (machine, workload mix, runtime config).

The ROADMAP's north star asks for "as many scenarios as you can
imagine"; this module is where they get named.  A :class:`Scenario`
binds together

* a **machine** from the zoo (:mod:`repro.hardware.zoo`), by name so the
  scenario itself stays a small hashable value;
* a **workload mix** — one or more :class:`Workload` entries.  A single
  workload is a plain training step; several are merged into one
  dataflow graph whose components share no edges, so the scheduler
  co-runs them on the same chip (the multi-tenant / co-located-jobs
  setting the paper's Strategy 3 and 4 target);
* an optional :class:`~repro.core.config.RuntimeConfig`; and
* a **seed** driving every stochastic component (synthetic graph
  structure, profiling noise), so a scenario names a reproducible run.

:func:`repro.api.run_scenario` executes one end-to-end;
``repro-experiments --scenario <name>`` reuses a scenario's machine for
any experiment module.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.core.config import RuntimeConfig
from repro.graph.dataflow import DataflowGraph
from repro.graph.synthetic import synthetic_graph
from repro.graph.traversal import topological_order
from repro.hardware.topology import Machine
from repro.hardware.zoo import get_machine
from repro.models.registry import build_model, build_reduced_model


@dataclass(frozen=True)
class Workload:
    """One graph of a scenario's mix: a paper model or a synthetic DAG.

    Exactly one of ``model`` / ``synthetic_ops`` must be set.  The
    workload is a value (frozen, hashable): the graph itself is built on
    demand by :meth:`build`, deterministically from the scenario seed.
    """

    model: str | None = None
    #: Shrink deep models to their reduced variants (fast, same op mix).
    reduced: bool = True
    batch_size: int | None = None
    synthetic_ops: int | None = None
    synthetic_width: int = 8
    heavy_fraction: float = 0.35
    label: str | None = None

    def __post_init__(self) -> None:
        if (self.model is None) == (self.synthetic_ops is None):
            raise ValueError("exactly one of model/synthetic_ops must be set")
        if self.synthetic_ops is not None and self.synthetic_ops < 1:
            raise ValueError("synthetic_ops must be positive")

    @property
    def name(self) -> str:
        if self.label:
            return self.label
        if self.model is not None:
            return self.model
        return f"synthetic-{self.synthetic_ops}"

    def build(self, seed: int = 0) -> DataflowGraph:
        """Materialise the workload's dataflow graph."""
        if self.model is not None:
            if self.reduced:
                return build_reduced_model(self.model, batch_size=self.batch_size)
            return build_model(self.model, batch_size=self.batch_size)
        return synthetic_graph(
            self.synthetic_ops,
            seed=seed,
            width=self.synthetic_width,
            heavy_fraction=self.heavy_fraction,
        )


def merge_graphs(graphs: dict[str, DataflowGraph], name: str) -> DataflowGraph:
    """Disjoint union of several graphs into one schedulable step.

    Node names are prefixed with their graph's label so the mix stays
    collision-free; no cross-graph edges are added, which leaves the
    scheduler free to interleave the components (the co-run setting).
    """
    merged = DataflowGraph(name)
    for label, graph in graphs.items():
        renamed = {op: f"{label}/{op}" for op in (o.name for o in graph.ops)}
        for op_name in topological_order(graph):
            op = graph.op(op_name)
            merged.add_op(
                dataclasses.replace(op, name=renamed[op_name]),
                deps=[renamed[dep] for dep in graph.predecessors(op_name)],
            )
    return merged


@dataclass(frozen=True)
class Scenario:
    """A named, reproducible (machine, workload mix, config, seed) binding."""

    name: str
    machine: str
    workloads: tuple[Workload, ...]
    config: RuntimeConfig | None = None
    seed: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        if not self.workloads:
            raise ValueError("a scenario needs at least one workload")

    @property
    def is_corun_mix(self) -> bool:
        return len(self.workloads) > 1

    def build_machine(self) -> Machine:
        return get_machine(self.machine)

    def build_config(self) -> RuntimeConfig:
        """The runtime config, reseeded with the scenario's seed."""
        config = self.config if self.config is not None else RuntimeConfig()
        return dataclasses.replace(config, seed=self.seed)

    def build_graph(self) -> DataflowGraph:
        """The step graph: one workload's graph, or the merged co-run mix."""
        if not self.is_corun_mix:
            return self.workloads[0].build(self.seed)
        graphs: dict[str, DataflowGraph] = {}
        for index, workload in enumerate(self.workloads):
            # Distinct per-workload seeds so two synthetic entries differ.
            graphs[f"{index}-{workload.name}"] = workload.build(self.seed + index)
        return merge_graphs(graphs, name=f"{self.name}-mix")

    # -- serialization -----------------------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-ready, stable spec of the scenario.

        Round-trips through :meth:`from_dict` exactly; fleet traces and
        external tooling reference scenarios by this spec rather than by
        registry identity.
        """
        return {
            "name": self.name,
            "machine": self.machine,
            "workloads": [dataclasses.asdict(workload) for workload in self.workloads],
            "config": dataclasses.asdict(self.config) if self.config is not None else None,
            "seed": self.seed,
            "description": self.description,
        }

    @staticmethod
    def from_dict(data: dict) -> "Scenario":
        """Rebuild a scenario from :meth:`to_dict` output (exact round-trip)."""
        config = data.get("config")
        return Scenario(
            name=data["name"],
            machine=data["machine"],
            workloads=tuple(Workload(**workload) for workload in data["workloads"]),
            config=RuntimeConfig(**config) if config is not None else None,
            seed=data.get("seed", 0),
            description=data.get("description", ""),
        )


# -- the registry -------------------------------------------------------------------

SCENARIOS: dict[str, Scenario] = {}


def register_scenario(scenario: Scenario, *, overwrite: bool = False) -> Scenario:
    """Add ``scenario`` to the registry (``overwrite=True`` to replace)."""
    if scenario.name in SCENARIOS and not overwrite:
        raise ValueError(f"scenario {scenario.name!r} is already registered")
    # Fail fast on dangling machine names; the graph is built lazily.
    get_machine(scenario.machine)
    SCENARIOS[scenario.name] = scenario
    return scenario


def available_scenarios() -> tuple[str, ...]:
    """Names of every registered scenario, in registration order."""
    return tuple(SCENARIOS)


def get_scenario(name: str) -> Scenario:
    """Look up a registered scenario by name."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {', '.join(SCENARIOS)}"
        ) from None


def describe_scenarios() -> str:
    """One line per registered scenario, sorted by name (the CLI's
    ``--list-scenarios``) — deterministic regardless of registration order."""
    lines = []
    for name in sorted(SCENARIOS):
        scenario = SCENARIOS[name]
        mix = " + ".join(w.name for w in scenario.workloads)
        lines.append(
            f"{scenario.name:>24}  [{scenario.machine}] {mix}"
            f"{' — ' + scenario.description if scenario.description else ''}"
        )
    return "\n".join(lines)


def scenario_specs() -> dict[str, dict]:
    """Every registered scenario's stable spec, sorted by name.

    The machine-readable counterpart of :func:`describe_scenarios`
    (``--list-scenarios --json``); values round-trip via
    :meth:`Scenario.from_dict`.
    """
    return {name: SCENARIOS[name].to_dict() for name in sorted(SCENARIOS)}


# -- the fault-spec registry --------------------------------------------------------
#
# Named fault plans for the fleet simulator, stored as the plain JSON
# specs of :meth:`repro.fleet.faults.FaultPlan.to_dict` (keeping this
# module import-free of the fleet layer).  ``run_fleet(faults="name")``
# and the CLI's ``--fault-plan name`` resolve through here.  The default
# plans are tuned to the default 5-machine fleet (machine ids m0..m4,
# see :data:`repro.api.DEFAULT_FLEET`) and the default 50-job trace
# scale (~100 simulated seconds).

FAULT_SPECS: dict[str, dict] = {}

#: Descriptions shown by :func:`describe_fault_specs`.
_FAULT_SPEC_DESCRIPTIONS: dict[str, str] = {}


def register_fault_spec(
    name: str, spec: dict, *, description: str = "", overwrite: bool = False
) -> dict:
    """Register a named fault plan spec (``overwrite=True`` to replace).

    ``spec`` must be a :meth:`repro.fleet.faults.FaultPlan.to_dict`-shaped
    dict (``{"events": [...], "max_retries": ...}``); it is stored by
    value so later mutation of the caller's dict cannot corrupt the
    registry.
    """
    if not name:
        raise ValueError("fault spec name must be non-empty")
    if not isinstance(spec, dict) or not isinstance(spec.get("events", None), list):
        raise ValueError(
            "a fault spec must be a dict with an 'events' list "
            "(see FaultPlan.to_dict)"
        )
    if name in FAULT_SPECS and not overwrite:
        raise ValueError(f"fault spec {name!r} is already registered")
    FAULT_SPECS[name] = {
        "max_retries": spec.get("max_retries", 3),
        "events": [dict(event) for event in spec["events"]],
    }
    _FAULT_SPEC_DESCRIPTIONS[name] = description
    return FAULT_SPECS[name]


def available_fault_specs() -> tuple[str, ...]:
    """Names of every registered fault spec, in registration order."""
    return tuple(FAULT_SPECS)


def get_fault_spec(name: str) -> dict:
    """Look up a registered fault spec by name (a deep-enough copy)."""
    try:
        spec = FAULT_SPECS[name]
    except KeyError:
        raise KeyError(
            f"unknown fault spec {name!r}; available: {', '.join(FAULT_SPECS)}"
        ) from None
    return {
        "max_retries": spec["max_retries"],
        "events": [dict(event) for event in spec["events"]],
    }


def describe_fault_specs() -> str:
    """One line per registered fault spec, sorted by name."""
    lines = []
    for name in sorted(FAULT_SPECS):
        spec = FAULT_SPECS[name]
        description = _FAULT_SPEC_DESCRIPTIONS.get(name, "")
        lines.append(
            f"{name:>24}  {len(spec['events'])} events"
            f"{' — ' + description if description else ''}"
        )
    return "\n".join(lines)


def _register_default_fault_specs() -> None:
    register_fault_spec(
        "single-crash",
        {
            "events": [{"kind": "crash", "time": 25.0, "machine": "m0"}],
        },
        description="one early crash of the first machine",
    )
    register_fault_spec(
        "rolling-churn",
        {
            "events": [
                {"kind": "crash", "time": 20.0, "machine": "m1"},
                {"kind": "join", "time": 30.0, "machine_name": "desktop-8c"},
                {"kind": "leave", "time": 45.0, "machine": "m2"},
                {"kind": "join", "time": 60.0, "machine_name": "cloud-vm-16v"},
                {"kind": "crash", "time": 70.0, "machine": "m0"},
            ],
        },
        description="machines crash, drain and join throughout the trace",
    )
    register_fault_spec(
        "straggler-tail",
        {
            "events": [
                {
                    "kind": "straggler",
                    "time": 10.0,
                    "machine": "m0",
                    "factor": 2.5,
                    "duration": 50.0,
                },
                {
                    "kind": "straggler",
                    "time": 40.0,
                    "machine": "m3",
                    "factor": 1.8,
                    "duration": 40.0,
                },
            ],
        },
        description="two overlapping straggler windows on the fast desktops",
    )
    register_fault_spec(
        "preempt-wave",
        {
            "events": [
                {"kind": "preempt", "time": 3.0, "job": "job-000-dcgan"},
                {"kind": "preempt", "time": 6.5, "job": "job-002-syn-heavy"},
                {"kind": "preempt", "time": 20.0, "job": "job-004-syn-deep"},
            ],
        },
        description="bursts of preemptions against the default seed-0 trace",
    )


_register_default_fault_specs()


# -- the arrival-spec registry ------------------------------------------------------
#
# Named open-loop load shapes for the fleet simulator, stored as the
# plain spec dicts of :meth:`repro.fleet.arrivals.ArrivalProcess.to_dict`
# minus the caller-side fields (``num_jobs``/``seed``/step bounds are
# filled in by ``resolve_arrivals(..., num_jobs=...)`` at use time, so
# one shape serves any trace length).  ``run_fleet(arrival_process=
# "name")`` and the CLI's ``--arrival-process name`` resolve through
# here; like the fault registry this keeps the module import-free of the
# fleet layer.

ARRIVAL_SPECS: dict[str, dict] = {}

#: Descriptions shown by :func:`describe_arrival_specs`.
_ARRIVAL_SPEC_DESCRIPTIONS: dict[str, str] = {}


def register_arrival_spec(
    name: str, spec: dict, *, description: str = "", overwrite: bool = False
) -> dict:
    """Register a named arrival-process spec (``overwrite=True`` to replace).

    ``spec`` must carry a ``"kind"`` naming a process
    (:data:`repro.fleet.arrivals.ARRIVAL_KINDS`: ``poisson``,
    ``diurnal``, ``bursty``) plus any shape parameters; it is stored by
    value so later mutation of the caller's dict cannot corrupt the
    registry.
    """
    if not name:
        raise ValueError("arrival spec name must be non-empty")
    if not isinstance(spec, dict) or not isinstance(spec.get("kind", None), str):
        raise ValueError(
            "an arrival spec must be a dict with a 'kind' string "
            "(see repro.fleet.arrivals.ARRIVAL_KINDS)"
        )
    if name in ARRIVAL_SPECS and not overwrite:
        raise ValueError(f"arrival spec {name!r} is already registered")
    # Deep validation: the spec must actually build, so unknown kinds and
    # malformed shape parameters are rejected at registration time, not
    # at first use.  The import is deferred (this module stays import-free
    # of the fleet layer); during the circular-import window at package
    # init (fleet.arrivals imports scenarios, which registers the default
    # specs below) it falls back to the structural check above, which the
    # defaults satisfy by construction.
    try:
        from repro.fleet.arrivals import arrival_from_dict
    except ImportError:  # pragma: no cover - import-order dependent
        arrival_from_dict = None
    if arrival_from_dict is not None:
        try:
            arrival_from_dict(dict(spec), num_jobs=spec.get("num_jobs", 1), seed=0)
        except ValueError as exc:
            raise ValueError(f"invalid arrival spec {name!r}: {exc}") from None
    ARRIVAL_SPECS[name] = dict(spec)
    _ARRIVAL_SPEC_DESCRIPTIONS[name] = description
    return ARRIVAL_SPECS[name]


def available_arrival_specs() -> tuple[str, ...]:
    """Names of every registered arrival spec, in registration order."""
    return tuple(ARRIVAL_SPECS)


def get_arrival_spec(name: str) -> dict:
    """Look up a registered arrival spec by name (a copy)."""
    try:
        spec = ARRIVAL_SPECS[name]
    except KeyError:
        raise KeyError(
            f"unknown arrival spec {name!r}; available: {', '.join(ARRIVAL_SPECS)}"
        ) from None
    return dict(spec)


def describe_arrival_specs() -> str:
    """One line per registered arrival spec, sorted by name."""
    lines = []
    for name in sorted(ARRIVAL_SPECS):
        spec = ARRIVAL_SPECS[name]
        description = _ARRIVAL_SPEC_DESCRIPTIONS.get(name, "")
        lines.append(
            f"{name:>24}  {spec['kind']}"
            f"{' — ' + description if description else ''}"
        )
    return "\n".join(lines)


def _register_default_arrival_specs() -> None:
    register_arrival_spec(
        "steady-poisson",
        {"kind": "poisson", "mean_interarrival": 2.0},
        description="the classic memoryless trace (generate_trace's shape)",
    )
    register_arrival_spec(
        "rush-hour",
        {"kind": "diurnal", "mean_interarrival": 2.0, "period": 120.0, "amplitude": 0.8},
        description="sinusoidal day/night load, peaking 1.8x the mean rate",
    )
    register_arrival_spec(
        "flash-crowd",
        {
            "kind": "bursty",
            "mean_interarrival": 2.5,
            "burst_size": 6,
            "intra_burst_gap": 0.05,
            "tail_alpha": 1.3,
        },
        description="heavy-tailed bursts: tight crowds separated by long lulls",
    )
    register_arrival_spec(
        "overload",
        {"kind": "poisson", "mean_interarrival": 0.4},
        description="sustained ~5x overload of the default 5-machine fleet",
    )


_register_default_arrival_specs()


def _register_defaults() -> None:
    defaults = [
        Scenario(
            "paper-knl",
            machine="knl",
            workloads=(Workload(model="resnet50"),),
            description="the paper's setting: ResNet-50 on the KNL node",
        ),
        Scenario(
            "resnet50-xeon-2s",
            machine="xeon-2s-56c",
            workloads=(Workload(model="resnet50"),),
            description="ResNet-50 on a dual-socket Xeon server",
        ),
        Scenario(
            "dcgan-desktop",
            machine="desktop-8c",
            workloads=(Workload(model="dcgan"),),
            description="DCGAN on an eight-core desktop",
        ),
        Scenario(
            "inception-cloud",
            machine="cloud-vm-16v",
            workloads=(Workload(model="inception_v3"),),
            description="Inception-v3 on a 16-vCPU cloud instance",
        ),
        Scenario(
            "lstm-arm-server",
            machine="arm-server-64c",
            workloads=(Workload(model="lstm"),),
            description="LSTM on an SMT-less ARM server",
        ),
        Scenario(
            "synthetic-500-epyc",
            machine="epyc-2s-128c",
            workloads=(Workload(synthetic_ops=500),),
            seed=7,
            description="a 500-op synthetic DAG on a 128-core EPYC",
        ),
        Scenario(
            "corun-mix-knl",
            machine="knl",
            workloads=(Workload(model="resnet50"), Workload(model="dcgan")),
            description="two training jobs co-located on one KNL node",
        ),
        Scenario(
            "synthetic-burst-laptop",
            machine="laptop-4c",
            workloads=(
                Workload(synthetic_ops=60, synthetic_width=4),
                Workload(synthetic_ops=60, synthetic_width=4),
            ),
            seed=11,
            description="two bursty synthetic jobs on a thermally-limited laptop",
        ),
        Scenario(
            "resnet50-gpu-host",
            machine="gpu-node-16c",
            workloads=(Workload(model="resnet50"),),
            description="ResNet-50 on an accelerator host (GPU attached)",
        ),
    ]
    for scenario in defaults:
        register_scenario(scenario)


_register_defaults()
