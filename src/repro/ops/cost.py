"""Dispatch from an operation instance to its cost characteristics."""

from __future__ import annotations

from functools import lru_cache

from repro.graph.op import OpInstance
from repro.ops.characteristics import OpCharacteristics
from repro.ops.registry import OpRegistry, default_registry


def characterize(op: OpInstance, registry: OpRegistry | None = None) -> OpCharacteristics:
    """Estimate the cost characteristics of ``op``.

    Uses the default registry (populated from the catalog) unless an
    explicit registry is supplied.
    """
    reg = registry if registry is not None else default_registry()
    return reg.estimate(op)


@lru_cache(maxsize=65536)
def _characterize_cached(op: OpInstance) -> OpCharacteristics:
    return default_registry().estimate(op)


def characterize_cached(op: OpInstance) -> OpCharacteristics:
    """Memoised variant of :func:`characterize` for the default registry.

    Operation instances are immutable, and a training step evaluates the
    same instances thousands of times during profiling sweeps, so caching
    pays off.  Only valid for the default registry.
    """
    try:
        return _characterize_cached(op)
    except TypeError:
        # attrs may contain unhashable values; fall back to the uncached path.
        return characterize(op)


def clear_characterization_cache() -> None:
    """Drop the default-registry characterization memo (tests, re-registration)."""
    _characterize_cached.cache_clear()


class CharacterizationCache:
    """Per-registry memo of ``registry.estimate`` keyed by op instance.

    The process-wide :func:`characterize_cached` only serves the default
    registry; simulators built around a custom :class:`OpRegistry` used to
    re-run ``estimate`` for every running operation on every scheduling
    event.  One cache instance per registry gives those the same
    amortised O(1) characterization.  Estimators are assumed pure (the
    registry contract); unhashable instances fall back to direct calls.
    """

    def __init__(self, registry: OpRegistry | None = None) -> None:
        self._registry = registry if registry is not None else default_registry()
        self._memo: dict[OpInstance, OpCharacteristics] = {}

    @property
    def registry(self) -> OpRegistry:
        return self._registry

    def __len__(self) -> int:
        return len(self._memo)

    def __call__(self, op: OpInstance) -> OpCharacteristics:
        try:
            chars = self._memo.get(op)
        except TypeError:
            return self._registry.estimate(op)
        if chars is None:
            chars = self._registry.estimate(op)
            self._memo[op] = chars
        return chars

    def clear(self) -> None:
        self._memo.clear()
