"""Dispatch from an operation instance to its cost characteristics."""

from __future__ import annotations

from functools import lru_cache

from repro.graph.op import OpInstance
from repro.ops.characteristics import OpCharacteristics
from repro.ops.registry import OpRegistry, default_registry


def characterize(op: OpInstance, registry: OpRegistry | None = None) -> OpCharacteristics:
    """Estimate the cost characteristics of ``op``.

    Uses the default registry (populated from the catalog) unless an
    explicit registry is supplied.
    """
    reg = registry if registry is not None else default_registry()
    return reg.estimate(op)


@lru_cache(maxsize=65536)
def _characterize_cached(op: OpInstance) -> OpCharacteristics:
    return default_registry().estimate(op)


def characterize_cached(op: OpInstance) -> OpCharacteristics:
    """Memoised variant of :func:`characterize` for the default registry.

    Operation instances are immutable, and a training step evaluates the
    same instances thousands of times during profiling sweeps, so caching
    pays off.  Only valid for the default registry.
    """
    try:
        return _characterize_cached(op)
    except TypeError:
        # attrs may contain unhashable values; fall back to the uncached path.
        return characterize(op)
