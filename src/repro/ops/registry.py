"""Registry mapping operation types to cost estimators.

An estimator is a callable ``(OpInstance) -> OpCharacteristics``.  The
default registry is populated by :mod:`repro.ops.catalog`; user code can
register additional operation types with :func:`register_op` (the paper
notes the hill-climbing model "can accommodate any future change of
operations in TensorFlow" — this registry is our equivalent extension
point).
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.graph.op import OpInstance
from repro.ops.characteristics import OpCharacteristics

Estimator = Callable[[OpInstance], OpCharacteristics]


class OpRegistry:
    """A mapping from operation type name to its cost estimator."""

    def __init__(self) -> None:
        self._estimators: dict[str, Estimator] = {}
        self._fallback: Estimator | None = None

    def register(self, op_type: str, estimator: Estimator, *, overwrite: bool = False) -> None:
        """Register ``estimator`` for ``op_type``."""
        if not op_type:
            raise ValueError("op_type must be non-empty")
        if op_type in self._estimators and not overwrite:
            raise ValueError(f"estimator for {op_type!r} already registered")
        self._estimators[op_type] = estimator

    def set_fallback(self, estimator: Estimator) -> None:
        """Set the estimator used for unknown operation types."""
        self._fallback = estimator

    def is_known(self, op_type: str) -> bool:
        return op_type in self._estimators

    def known_types(self) -> tuple[str, ...]:
        return tuple(sorted(self._estimators))

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._estimators))

    def __len__(self) -> int:
        return len(self._estimators)

    def estimate(self, op: OpInstance) -> OpCharacteristics:
        """Estimate characteristics for ``op`` (falling back if unknown)."""
        estimator = self._estimators.get(op.op_type)
        if estimator is None:
            if self._fallback is None:
                raise KeyError(
                    f"no estimator registered for operation type {op.op_type!r} "
                    "and no fallback set"
                )
            estimator = self._fallback
        return estimator(op)


_DEFAULT_REGISTRY: OpRegistry | None = None


def default_registry() -> OpRegistry:
    """The process-wide registry, populated lazily from the catalog."""
    global _DEFAULT_REGISTRY
    if _DEFAULT_REGISTRY is None:
        from repro.ops import catalog

        registry = OpRegistry()
        catalog.populate(registry)
        _DEFAULT_REGISTRY = registry
    return _DEFAULT_REGISTRY


def register_op(op_type: str, estimator: Estimator, *, overwrite: bool = False) -> None:
    """Register an estimator in the default registry."""
    default_registry().register(op_type, estimator, overwrite=overwrite)
