"""Operation catalog: per-operation-type cost characteristics.

The execution simulator needs, for every operation instance, an estimate
of its floating point work, memory traffic, cache-reuse potential, serial
fraction and parallel grain count.  The catalog provides those estimates
per operation type; :func:`repro.ops.cost.characterize` dispatches on the
operation type through the registry.
"""

from repro.ops.characteristics import OpCharacteristics
from repro.ops.registry import OpRegistry, default_registry, register_op
from repro.ops.cost import characterize

__all__ = [
    "OpCharacteristics",
    "OpRegistry",
    "default_registry",
    "register_op",
    "characterize",
]
