"""The cost characteristics attached to every operation instance."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class OpCharacteristics:
    """What the execution-time model needs to know about one op instance.

    Attributes
    ----------
    flops:
        Floating point operations performed by the instance.
    bytes_touched:
        Logical bytes moved by the kernel (reads + writes before any cache
        filtering).
    working_set:
        Bytes the kernel actively reuses (weights + a blocking tile); this
        is what competes for the tile L2.
    serial_fraction:
        Amdahl fraction of the runtime that does not parallelise
        (setup, reductions, pointer chasing).
    reuse_potential:
        Temporal reuse available to a cache-blocked implementation, in
        [0, 1].  High for GEMM/convolutions, near zero for streaming
        elementwise kernels.
    parallel_grains:
        Number of independent work items; thread counts above this yield
        no additional speedup (small ops cannot use the whole chip).
    per_thread_overhead:
        Seconds of parallelisation overhead added *per thread* (private
        buffer setup, partial-result reduction, task creation).  This is
        the term that creates the interior optimum of the time-vs-threads
        curve: the optimum thread count grows roughly as
        ``sqrt(parallel_work / per_thread_overhead)``, so larger inputs
        push the optimum toward the full chip while small operations want
        only a handful of threads — exactly the behaviour of Fig. 1 and
        Table II of the paper.
    branchiness:
        Branches per instruction (used only by the counter simulator).
    memory_bound:
        Rough fraction in [0, 1] of time bound by memory rather than
        compute for a single-thread run; used by the SMT model.
    """

    flops: float
    bytes_touched: float
    working_set: float
    serial_fraction: float
    reuse_potential: float
    parallel_grains: int
    per_thread_overhead: float = 2e-5
    branchiness: float = 0.08
    memory_bound: float = 0.5

    def __post_init__(self) -> None:
        if self.flops < 0 or self.bytes_touched < 0 or self.working_set < 0:
            raise ValueError("work quantities must be non-negative")
        if not (0.0 <= self.serial_fraction < 1.0):
            raise ValueError("serial_fraction must lie in [0, 1)")
        if not (0.0 <= self.reuse_potential <= 1.0):
            raise ValueError("reuse_potential must lie in [0, 1]")
        if self.parallel_grains < 1:
            raise ValueError("parallel_grains must be at least 1")
        if not (0.0 <= self.memory_bound <= 1.0):
            raise ValueError("memory_bound must lie in [0, 1]")
        if self.branchiness < 0:
            raise ValueError("branchiness must be non-negative")
        if self.per_thread_overhead < 0:
            raise ValueError("per_thread_overhead must be non-negative")

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte of logical traffic."""
        if self.bytes_touched == 0:
            return float("inf") if self.flops > 0 else 0.0
        return self.flops / self.bytes_touched

    def scaled(self, factor: float) -> "OpCharacteristics":
        """Return characteristics scaled by ``factor`` (used for batched runs)."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return OpCharacteristics(
            flops=self.flops * factor,
            bytes_touched=self.bytes_touched * factor,
            working_set=self.working_set,
            serial_fraction=self.serial_fraction,
            reuse_potential=self.reuse_potential,
            parallel_grains=max(1, int(self.parallel_grains * factor)),
            per_thread_overhead=self.per_thread_overhead,
            branchiness=self.branchiness,
            memory_bound=self.memory_bound,
        )
