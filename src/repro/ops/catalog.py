"""Cost estimators for the operation types appearing in the four NN models.

Every estimator converts an :class:`~repro.graph.op.OpInstance` (shapes +
attributes) into an :class:`~repro.ops.characteristics.OpCharacteristics`
record.  The constants encode the qualitative behaviour the paper
observes and exploits:

* convolutions and GEMMs are compute-bound with high cache reuse but pay
  a noticeable per-thread parallelisation overhead (private im2col /
  weight-gradient buffers), with ``Conv2DBackpropFilter`` paying the most
  — this reproduces Fig. 1's ordering of optimal thread counts
  (filter-grad < input-grad < forward conv) and Table II's growth of the
  optimum with input size;
* elementwise and data-movement operations are bandwidth-bound streaming
  kernels with almost no reuse — they saturate quickly and prefer small
  thread counts, which is what creates co-running opportunities
  (Strategies 3 and 4);
* reductions carry a larger serial fraction (the final combine step).

The absolute magnitudes are calibrated to a KNL-class node but the
*shape* of the resulting time-vs-threads curves is what matters for the
reproduction.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.graph.op import OpInstance
from repro.graph.shapes import TensorShape
from repro.ops.characteristics import OpCharacteristics
from repro.ops.registry import OpRegistry


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _kernel(op: OpInstance) -> tuple[int, int]:
    kh, kw = op.attrs.get("kernel", (3, 3))
    return int(kh), int(kw)


def _conv_dims(op: OpInstance) -> tuple[int, int, int, int, int, int, int]:
    """Return (N, OH, OW, C_in, C_out, kh, kw) for a convolution-like op."""
    kh, kw = _kernel(op)
    activation = op.inputs[0]
    if op.op_type == "Conv2DBackpropInput":
        # output is the activation gradient (N, H, W, C_in); the gradient
        # w.r.t. the layer output arrives as an input.
        grad = op.inputs[-1]
        n, oh, ow, c_out = grad.dims if grad.rank == 4 else (grad.dims[0], 1, 1, grad.dims[-1])
        c_in = op.output.channels
    elif op.op_type == "Conv2DBackpropFilter":
        grad = op.inputs[-1]
        n, oh, ow, c_out = grad.dims if grad.rank == 4 else (grad.dims[0], 1, 1, grad.dims[-1])
        c_in = activation.channels
    else:  # forward conv / transposed conv
        n = activation.batch
        c_in = activation.channels
        out = op.output
        if out.rank == 4:
            _, oh, ow, c_out = out.dims
        else:
            oh = ow = 1
            c_out = out.channels
    return int(n), int(oh), int(ow), int(c_in), int(c_out), kh, kw


def _sum_bytes(shapes: Sequence[TensorShape]) -> int:
    return sum(s.num_bytes for s in shapes)


def _streaming(
    op: OpInstance,
    *,
    flops_per_element: float,
    passes: float = 1.0,
    serial_fraction: float = 0.02,
    per_thread_overhead: float = 2.0e-7,
    branchiness: float = 0.05,
) -> OpCharacteristics:
    """Characteristics of a streaming (bandwidth-bound) kernel."""
    elements = op.output.num_elements
    bytes_touched = (op.total_input_bytes + op.output.num_bytes) * passes
    return OpCharacteristics(
        flops=flops_per_element * elements,
        bytes_touched=float(bytes_touched),
        working_set=float(min(bytes_touched, 4 * 1024 * 1024)),
        serial_fraction=serial_fraction,
        reuse_potential=0.1,
        parallel_grains=max(1, elements // 4096),
        per_thread_overhead=per_thread_overhead,
        branchiness=branchiness,
        memory_bound=0.85,
    )


# ---------------------------------------------------------------------------
# convolution family
# ---------------------------------------------------------------------------


def conv2d(op: OpInstance) -> OpCharacteristics:
    """Forward 2-D convolution (MKL-DNN direct/Winograd kernel)."""
    n, oh, ow, c_in, c_out, kh, kw = _conv_dims(op)
    flops = 2.0 * n * oh * ow * c_in * c_out * kh * kw
    weight_bytes = kh * kw * c_in * c_out * 4
    bytes_touched = op.total_input_bytes + op.output.num_bytes + weight_bytes
    return OpCharacteristics(
        flops=flops,
        bytes_touched=float(bytes_touched),
        working_set=float(weight_bytes + 512 * 1024),
        serial_fraction=0.035,
        reuse_potential=0.85,
        parallel_grains=max(1, n * oh * ow),
        per_thread_overhead=2e-6 + 1.9e-9 * math.sqrt(flops),
        branchiness=0.04,
        memory_bound=0.25,
    )


def conv2d_backprop_input(op: OpInstance) -> OpCharacteristics:
    """Gradient w.r.t. the convolution input (transposed convolution)."""
    n, oh, ow, c_in, c_out, kh, kw = _conv_dims(op)
    flops = 2.0 * n * oh * ow * c_in * c_out * kh * kw
    weight_bytes = kh * kw * c_in * c_out * 4
    bytes_touched = op.total_input_bytes + op.output.num_bytes + weight_bytes
    return OpCharacteristics(
        flops=flops,
        bytes_touched=float(bytes_touched),
        working_set=float(weight_bytes + 512 * 1024),
        serial_fraction=0.04,
        reuse_potential=0.8,
        parallel_grains=max(1, n * oh * ow),
        per_thread_overhead=2e-6 + 3.3e-9 * math.sqrt(flops),
        branchiness=0.05,
        memory_bound=0.3,
    )


def conv2d_backprop_filter(op: OpInstance) -> OpCharacteristics:
    """Gradient w.r.t. the convolution weights.

    Every thread accumulates into a private copy of the weight gradient,
    which is reduced at the end — the largest per-thread overhead of the
    three convolution kernels, hence the smallest optimal thread count
    (26 threads in Fig. 1).
    """
    n, oh, ow, c_in, c_out, kh, kw = _conv_dims(op)
    flops = 2.0 * n * oh * ow * c_in * c_out * kh * kw
    weight_bytes = kh * kw * c_in * c_out * 4
    bytes_touched = op.total_input_bytes + op.output.num_bytes + weight_bytes
    return OpCharacteristics(
        flops=flops,
        bytes_touched=float(bytes_touched),
        working_set=float(weight_bytes + 512 * 1024),
        serial_fraction=0.045,
        reuse_potential=0.8,
        parallel_grains=max(1, n * oh * ow),
        per_thread_overhead=3e-6 + 5.4e-9 * math.sqrt(flops),
        branchiness=0.05,
        memory_bound=0.3,
    )


def conv2d_transpose(op: OpInstance) -> OpCharacteristics:
    """Transposed ("deconvolution") forward op used by the DCGAN generator."""
    chars = conv2d_backprop_input(op)
    # The forward transposed conv behaves like backprop-input but without
    # the gradient-accumulation bookkeeping.
    return OpCharacteristics(
        flops=chars.flops,
        bytes_touched=chars.bytes_touched,
        working_set=chars.working_set,
        serial_fraction=0.04,
        reuse_potential=0.8,
        parallel_grains=chars.parallel_grains,
        per_thread_overhead=2e-6 + 2.8e-9 * math.sqrt(chars.flops),
        branchiness=0.05,
        memory_bound=0.3,
    )


# ---------------------------------------------------------------------------
# dense (GEMM) family
# ---------------------------------------------------------------------------


def matmul(op: OpInstance) -> OpCharacteristics:
    """Dense matrix multiply (fully connected layers, LSTM gates)."""
    a = op.inputs[0]
    b = op.inputs[1] if len(op.inputs) > 1 else op.output
    m = a.dims[0]
    k = a.dims[-1]
    n = op.output.dims[-1]
    flops = 2.0 * m * k * n
    bytes_touched = a.num_bytes + b.num_bytes + op.output.num_bytes
    return OpCharacteristics(
        flops=flops,
        bytes_touched=float(bytes_touched),
        working_set=float(min(b.num_bytes, 8 * 1024 * 1024) + 256 * 1024),
        serial_fraction=0.03,
        reuse_potential=0.9,
        parallel_grains=max(1, (m * n) // 1024),
        per_thread_overhead=1e-6 + 2.0e-9 * math.sqrt(flops),
        branchiness=0.03,
        memory_bound=0.3,
    )


def matmul_grad(op: OpInstance) -> OpCharacteristics:
    """Gradient GEMMs (dX = dY.W^T, dW = X^T.dY) — same cost family."""
    chars = matmul(op)
    return OpCharacteristics(
        flops=chars.flops,
        bytes_touched=chars.bytes_touched,
        working_set=chars.working_set,
        serial_fraction=0.035,
        reuse_potential=0.85,
        parallel_grains=chars.parallel_grains,
        per_thread_overhead=1e-6 + 3.0e-9 * math.sqrt(chars.flops),
        branchiness=0.03,
        memory_bound=0.35,
    )


# ---------------------------------------------------------------------------
# pooling family
# ---------------------------------------------------------------------------


def _pool(op: OpInstance, *, flops_per_window_element: float, serial: float) -> OpCharacteristics:
    kh, kw = op.attrs.get("kernel", (3, 3))
    window = int(kh) * int(kw)
    elements = op.output.num_elements
    flops = flops_per_window_element * window * elements
    bytes_touched = op.total_input_bytes + op.output.num_bytes
    return OpCharacteristics(
        flops=flops,
        bytes_touched=float(bytes_touched),
        working_set=float(min(bytes_touched, 2 * 1024 * 1024)),
        serial_fraction=serial,
        reuse_potential=0.4,
        parallel_grains=max(1, elements // 256),
        per_thread_overhead=4e-7 + 1.0e-9 * math.sqrt(flops),
        branchiness=0.12,
        memory_bound=0.7,
    )


def max_pool(op: OpInstance) -> OpCharacteristics:
    return _pool(op, flops_per_window_element=1.0, serial=0.03)


def max_pool_grad(op: OpInstance) -> OpCharacteristics:
    return _pool(op, flops_per_window_element=1.5, serial=0.05)


def avg_pool(op: OpInstance) -> OpCharacteristics:
    return _pool(op, flops_per_window_element=1.0, serial=0.03)


def avg_pool_grad(op: OpInstance) -> OpCharacteristics:
    return _pool(op, flops_per_window_element=1.0, serial=0.05)


# ---------------------------------------------------------------------------
# normalisation
# ---------------------------------------------------------------------------


def fused_batch_norm(op: OpInstance) -> OpCharacteristics:
    elements = op.output.num_elements
    bytes_touched = 2.5 * (op.total_input_bytes + op.output.num_bytes)
    return OpCharacteristics(
        flops=10.0 * elements,
        bytes_touched=float(bytes_touched),
        working_set=float(min(bytes_touched, 2 * 1024 * 1024)),
        serial_fraction=0.06,
        reuse_potential=0.3,
        parallel_grains=max(1, elements // 1024),
        per_thread_overhead=4e-7,
        branchiness=0.04,
        memory_bound=0.8,
    )


def fused_batch_norm_grad(op: OpInstance) -> OpCharacteristics:
    chars = fused_batch_norm(op)
    return OpCharacteristics(
        flops=chars.flops * 1.4,
        bytes_touched=chars.bytes_touched * 1.2,
        working_set=chars.working_set,
        serial_fraction=0.08,
        reuse_potential=0.3,
        parallel_grains=chars.parallel_grains,
        per_thread_overhead=6e-7,
        branchiness=0.04,
        memory_bound=0.8,
    )


def lrn(op: OpInstance) -> OpCharacteristics:
    return _streaming(op, flops_per_element=12.0, passes=1.5, serial_fraction=0.04)


# ---------------------------------------------------------------------------
# elementwise / activation family
# ---------------------------------------------------------------------------


def relu(op: OpInstance) -> OpCharacteristics:
    return _streaming(op, flops_per_element=1.0)


def relu_grad(op: OpInstance) -> OpCharacteristics:
    return _streaming(op, flops_per_element=2.0)


def sigmoid(op: OpInstance) -> OpCharacteristics:
    return _streaming(op, flops_per_element=8.0)


def tanh(op: OpInstance) -> OpCharacteristics:
    return _streaming(op, flops_per_element=10.0)


def activation_grad(op: OpInstance) -> OpCharacteristics:
    return _streaming(op, flops_per_element=4.0)


def elementwise_binary(op: OpInstance) -> OpCharacteristics:
    return _streaming(op, flops_per_element=1.0)


def addn(op: OpInstance) -> OpCharacteristics:
    num_inputs = max(2, len(op.inputs))
    return _streaming(op, flops_per_element=float(num_inputs - 1), passes=1.0)


def bias_add(op: OpInstance) -> OpCharacteristics:
    return _streaming(op, flops_per_element=1.0)


def square(op: OpInstance) -> OpCharacteristics:
    return _streaming(op, flops_per_element=1.0)


def sqrt_op(op: OpInstance) -> OpCharacteristics:
    return _streaming(op, flops_per_element=4.0)


def real_div(op: OpInstance) -> OpCharacteristics:
    return _streaming(op, flops_per_element=4.0)


# ---------------------------------------------------------------------------
# reductions
# ---------------------------------------------------------------------------


def _reduction(op: OpInstance, *, flops_per_element: float) -> OpCharacteristics:
    elements = op.total_input_elements
    bytes_touched = op.total_input_bytes + op.output.num_bytes
    return OpCharacteristics(
        flops=flops_per_element * elements,
        bytes_touched=float(bytes_touched),
        working_set=float(min(bytes_touched, 2 * 1024 * 1024)),
        serial_fraction=0.1,
        reuse_potential=0.2,
        parallel_grains=max(1, elements // 2048),
        per_thread_overhead=5e-7,
        branchiness=0.06,
        memory_bound=0.8,
    )


def bias_add_grad(op: OpInstance) -> OpCharacteristics:
    return _reduction(op, flops_per_element=1.0)


def reduce_sum(op: OpInstance) -> OpCharacteristics:
    return _reduction(op, flops_per_element=1.0)


def reduce_mean(op: OpInstance) -> OpCharacteristics:
    return _reduction(op, flops_per_element=1.2)


def l2_loss(op: OpInstance) -> OpCharacteristics:
    return _reduction(op, flops_per_element=2.0)


# ---------------------------------------------------------------------------
# softmax / loss family
# ---------------------------------------------------------------------------


def softmax(op: OpInstance) -> OpCharacteristics:
    return _streaming(op, flops_per_element=12.0, passes=2.0, serial_fraction=0.06)


def log_softmax(op: OpInstance) -> OpCharacteristics:
    return _streaming(op, flops_per_element=14.0, passes=2.0, serial_fraction=0.06)


def sparse_softmax_cross_entropy(op: OpInstance) -> OpCharacteristics:
    elements = op.total_input_elements
    bytes_touched = 2.0 * (op.total_input_bytes + op.output.num_bytes)
    return OpCharacteristics(
        flops=16.0 * elements,
        bytes_touched=float(bytes_touched),
        working_set=float(min(bytes_touched, 2 * 1024 * 1024)),
        serial_fraction=0.08,
        reuse_potential=0.25,
        parallel_grains=max(1, op.inputs[0].dims[0]),
        per_thread_overhead=8e-7,
        branchiness=0.1,
        memory_bound=0.7,
    )


# ---------------------------------------------------------------------------
# optimiser updates
# ---------------------------------------------------------------------------


def apply_adam(op: OpInstance) -> OpCharacteristics:
    elements = op.inputs[0].num_elements
    bytes_touched = 5.0 * op.inputs[0].num_bytes  # params, grad, m, v, out
    return OpCharacteristics(
        flops=12.0 * elements,
        bytes_touched=float(bytes_touched),
        working_set=float(min(bytes_touched, 4 * 1024 * 1024)),
        serial_fraction=0.02,
        reuse_potential=0.05,
        parallel_grains=max(1, elements // 4096),
        per_thread_overhead=3e-7,
        branchiness=0.03,
        memory_bound=0.9,
    )


def apply_gradient_descent(op: OpInstance) -> OpCharacteristics:
    elements = op.inputs[0].num_elements
    bytes_touched = 3.0 * op.inputs[0].num_bytes
    return OpCharacteristics(
        flops=2.0 * elements,
        bytes_touched=float(bytes_touched),
        working_set=float(min(bytes_touched, 4 * 1024 * 1024)),
        serial_fraction=0.02,
        reuse_potential=0.05,
        parallel_grains=max(1, elements // 4096),
        per_thread_overhead=3e-7,
        branchiness=0.03,
        memory_bound=0.9,
    )


def apply_momentum(op: OpInstance) -> OpCharacteristics:
    elements = op.inputs[0].num_elements
    bytes_touched = 4.0 * op.inputs[0].num_bytes
    return OpCharacteristics(
        flops=4.0 * elements,
        bytes_touched=float(bytes_touched),
        working_set=float(min(bytes_touched, 4 * 1024 * 1024)),
        serial_fraction=0.02,
        reuse_potential=0.05,
        parallel_grains=max(1, elements // 4096),
        per_thread_overhead=3e-7,
        branchiness=0.03,
        memory_bound=0.9,
    )


# ---------------------------------------------------------------------------
# data movement / layout
# ---------------------------------------------------------------------------


def _data_movement(op: OpInstance, *, passes: float = 1.0) -> OpCharacteristics:
    bytes_touched = (op.total_input_bytes + op.output.num_bytes) * passes
    elements = op.output.num_elements
    return OpCharacteristics(
        flops=0.25 * elements,
        bytes_touched=float(bytes_touched),
        working_set=float(min(bytes_touched, 2 * 1024 * 1024)),
        serial_fraction=0.03,
        reuse_potential=0.05,
        parallel_grains=max(1, elements // 8192),
        per_thread_overhead=2e-7,
        branchiness=0.04,
        memory_bound=0.95,
    )


def tile(op: OpInstance) -> OpCharacteristics:
    return _data_movement(op)


def concat(op: OpInstance) -> OpCharacteristics:
    return _data_movement(op)


def split(op: OpInstance) -> OpCharacteristics:
    return _data_movement(op)


def transpose(op: OpInstance) -> OpCharacteristics:
    return _data_movement(op, passes=1.3)


def pad(op: OpInstance) -> OpCharacteristics:
    return _data_movement(op)


def input_conversion(op: OpInstance) -> OpCharacteristics:
    """MKL layout conversion of an input tensor (``InputConversion``)."""
    return _data_movement(op, passes=1.5)


def to_tf(op: OpInstance) -> OpCharacteristics:
    """MKL-to-TensorFlow layout conversion (``ToTf``)."""
    return _data_movement(op, passes=1.5)


def cast(op: OpInstance) -> OpCharacteristics:
    return _data_movement(op)


def reshape(op: OpInstance) -> OpCharacteristics:
    # Metadata-only in TF, but still a schedulable node; near-zero cost.
    return OpCharacteristics(
        flops=1.0,
        bytes_touched=64.0,
        working_set=64.0,
        serial_fraction=0.5,
        reuse_potential=0.0,
        parallel_grains=1,
        per_thread_overhead=1e-7,
        branchiness=0.1,
        memory_bound=0.5,
    )


def identity(op: OpInstance) -> OpCharacteristics:
    return reshape(op)


def gather(op: OpInstance) -> OpCharacteristics:
    """Embedding lookup (LSTM input layer)."""
    bytes_touched = op.output.num_bytes * 2.0
    elements = op.output.num_elements
    return OpCharacteristics(
        flops=0.5 * elements,
        bytes_touched=float(bytes_touched),
        working_set=float(min(bytes_touched, 2 * 1024 * 1024)),
        serial_fraction=0.04,
        reuse_potential=0.05,
        parallel_grains=max(1, elements // 4096),
        per_thread_overhead=3e-7,
        branchiness=0.15,
        memory_bound=0.95,
    )


def one_hot(op: OpInstance) -> OpCharacteristics:
    return _data_movement(op)


def fallback(op: OpInstance) -> OpCharacteristics:
    """Conservative streaming estimate for unknown operation types."""
    return _streaming(op, flops_per_element=2.0)


# ---------------------------------------------------------------------------
# registry population
# ---------------------------------------------------------------------------

_ESTIMATORS = {
    "Conv2D": conv2d,
    "Conv2DBackpropInput": conv2d_backprop_input,
    "Conv2DBackpropFilter": conv2d_backprop_filter,
    "Conv2DTranspose": conv2d_transpose,
    "MatMul": matmul,
    "MatMulGrad": matmul_grad,
    "MaxPooling": max_pool,
    "MaxPool": max_pool,
    "MaxPoolGrad": max_pool_grad,
    "AvgPool": avg_pool,
    "AvgPoolGrad": avg_pool_grad,
    "FusedBatchNorm": fused_batch_norm,
    "FusedBatchNormGrad": fused_batch_norm_grad,
    "LRN": lrn,
    "Relu": relu,
    "ReluGrad": relu_grad,
    "LeakyRelu": relu,
    "LeakyReluGrad": relu_grad,
    "Sigmoid": sigmoid,
    "SigmoidGrad": activation_grad,
    "Tanh": tanh,
    "TanhGrad": activation_grad,
    "Add": elementwise_binary,
    "Sub": elementwise_binary,
    "Mul": elementwise_binary,
    "RealDiv": real_div,
    "Square": square,
    "Sqrt": sqrt_op,
    "AddN": addn,
    "BiasAdd": bias_add,
    "BiasAddGrad": bias_add_grad,
    "Sum": reduce_sum,
    "Mean": reduce_mean,
    "L2Loss": l2_loss,
    "Softmax": softmax,
    "LogSoftmax": log_softmax,
    "SparseSoftmaxCross": sparse_softmax_cross_entropy,
    "SparseSoftmaxCrossEntropyWithLogits": sparse_softmax_cross_entropy,
    "ApplyAdam": apply_adam,
    "ApplyGradientDescent": apply_gradient_descent,
    "ApplyMomentum": apply_momentum,
    "Tile": tile,
    "ConcatV2": concat,
    "Concat": concat,
    "Split": split,
    "Transpose": transpose,
    "Pad": pad,
    "InputConversion": input_conversion,
    "ToTf": to_tf,
    "Cast": cast,
    "Reshape": reshape,
    "Identity": identity,
    "Gather": gather,
    "OneHot": one_hot,
}


def populate(registry: OpRegistry) -> None:
    """Register every catalog estimator (and the fallback) in ``registry``."""
    for op_type, estimator in _ESTIMATORS.items():
        registry.register(op_type, estimator, overwrite=True)
    registry.set_fallback(fallback)


def known_op_types() -> tuple[str, ...]:
    """All operation types with a dedicated estimator."""
    return tuple(sorted(_ESTIMATORS))
