"""Retry/backoff policy and failure records for the sweep engine.

The executor's fault tolerance is configured by one frozen value — a
:class:`RetryPolicy` — so a sweep's behaviour under worker crashes,
hangs and poison tasks is as declarative (and as reproducible) as a
:class:`~repro.fleet.faults.FaultPlan` is for the simulated fleet.
Backoff jitter is *seeded*: the same policy produces the same delay
sequence, keeping chaos-suite wall times and retry traces reproducible.

The module lives in ``repro.sweep`` (stdlib-only, no fleet imports) so
the executor can depend on it without a layering cycle;
``repro.resilience`` re-exports it as part of the resilience surface.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass


def _fraction(*parts: object) -> float:
    """A deterministic uniform-ish fraction in [0, 1) from hashed parts."""
    text = "\x1f".join(repr(part) for part in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class RetryPolicy:
    """How the sweep executor treats failing, hung and poison tasks.

    Parameters
    ----------
    max_attempts:
        Pool executions per task before it is exhausted (1 = the seed
        behaviour: first failure propagates).
    timeout:
        Per-task wall-clock budget in seconds, measured while the
        parent waits on the task's future; ``None`` waits forever.  A
        timed-out process pool is force-closed (the hung child reaped)
        and its other in-flight tasks resubmitted.
    backoff / max_backoff / jitter / seed:
        Exponential backoff between retry rounds:
        ``min(backoff * 2**(round-1), max_backoff)`` seconds, scaled by
        ``1 + jitter * u`` where ``u`` is a seeded deterministic
        fraction — reproducible delays, no thundering resubmits.
    quarantine:
        After exhaustion (and a failed local degrade), record the task
        as a :class:`SweepTaskFailure` in its result slot and keep
        going, instead of sinking the whole sweep.
    degrade:
        After pool-side exhaustion, run the task once locally in the
        parent (serial) before giving up — a crashed or hung *backend*
        then costs latency, never a result.  Repeated pool failures
        also degrade the backend itself: process → thread → serial.
    heartbeat:
        Liveness-probe interval, in seconds, while waiting on a future
        under a ``timeout`` (the granularity of hang detection).
    """

    max_attempts: int = 3
    timeout: float | None = None
    backoff: float = 0.05
    max_backoff: float = 2.0
    jitter: float = 0.5
    seed: int = 0
    quarantine: bool = False
    degrade: bool = True
    heartbeat: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.timeout is not None and (
            not math.isfinite(self.timeout) or self.timeout <= 0
        ):
            raise ValueError(f"timeout must be positive, got {self.timeout!r}")
        if self.backoff < 0 or self.max_backoff < 0 or self.jitter < 0:
            raise ValueError("backoff, max_backoff and jitter must be >= 0")
        if self.heartbeat <= 0:
            raise ValueError("heartbeat must be positive")

    def delay(self, round_index: int) -> float:
        """Seeded backoff delay before retry round ``round_index`` (1-based)."""
        base = min(self.backoff * (2 ** max(round_index - 1, 0)), self.max_backoff)
        if base <= 0 or self.jitter <= 0:
            return base
        return base * (1.0 + self.jitter * _fraction(self.seed, round_index))


#: The seed executor's semantics as a policy: one attempt, no timeout,
#: first failure propagates.  Used when no RetryPolicy is configured.
SINGLE_ATTEMPT = RetryPolicy(
    max_attempts=1, timeout=None, backoff=0.0, jitter=0.0,
    quarantine=False, degrade=False,
)


@dataclass(frozen=True)
class SweepTaskFailure:
    """A quarantined task's result slot: what failed, how, how often.

    Lands in the executor's input-ordered result list in place of the
    task's value, so a sweep under quarantine still returns one entry
    per task, in submission order.
    """

    index: int
    error: str
    attempts: int
    kind: str  # "exception" | "timeout" | "crash"

    def __bool__(self) -> bool:
        return False
