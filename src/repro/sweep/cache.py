"""Content-addressed, on-disk cache for sweep and experiment task results.

Every cacheable unit of work in the experiment layer — a thread-count
sweep of one operation signature, a hill-climbing profile, a simulated
training step under a fixed policy — is a *pure function of its
arguments*: the op characteristics, the machine description and a few
plain parameters.  The cache therefore keys each result on a SHA-256
content hash of

* the task function's fully-qualified name,
* a canonical encoding of every argument (dataclasses are walked
  field-by-field, so the machine topology, cache/memory models and op
  characteristics all land in the key),
* the package version (``repro.version.__version__``) and a cache schema
  number.

Bumping the package version — which every PR that changes the analytic
models does — invalidates every prior entry, so a stale cache can never
leak results computed by older model code.  Unknown or unstable values
(lambdas, objects with default ``repr``) refuse to hash: the task then
simply runs uncached rather than risking a wrong hit.

Entries are pickles stored in a two-level sharded directory layout
(``<root>/<key[:2]>/<key>.pkl``) and written atomically
(temp file + ``os.replace``) so concurrent worker processes never
observe a torn entry.  A corrupt or unreadable entry is treated as a
miss and rewritten.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import os
import pickle
import sys
import tempfile
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.version import __version__

#: Bump when the canonical encoding or the pickle layout changes.
#: 2: mapping keys sort by (type name, repr) — stable for mixed-type
#:    keys — and the machine dataclass tree grew sockets and a GPU slot.
CACHE_SCHEMA_VERSION = 2

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_SWEEP_CACHE_DIR"

#: Default on-disk location, relative to the working directory (the same
#: convention as ``.pytest_cache``).
DEFAULT_CACHE_DIR = ".sweep_cache"


class UncacheableValue(TypeError):
    """Raised when a task argument has no stable content encoding."""


def is_module_level_function(value: Any) -> bool:
    """True when ``value`` is an importable module-level function.

    The single rule shared by the content hash (a stable, state-free
    identity) and the process backend (pickle-by-reference): bound
    methods (dotted qualname) carry instance state, lambdas and locals
    ('<' in qualname) are not importable, and anything that does not
    resolve back to itself via ``sys.modules`` cannot be reconstructed
    in a worker.
    """
    if not callable(value):
        return False
    module = getattr(value, "__module__", None)
    qualname = getattr(value, "__qualname__", "")
    if not module or not qualname or "<" in qualname or "." in qualname:
        return False
    owner = sys.modules.get(module)
    return owner is not None and getattr(owner, qualname, None) is value


def _canonical(value: Any) -> Any:
    """A hashable, deterministic encoding of ``value``.

    Only value-like objects are accepted; anything whose identity or
    address could leak into the encoding raises :class:`UncacheableValue`.
    """
    if value is None or isinstance(value, (bool, int, str, bytes)):
        return value
    if isinstance(value, float):
        # hex() is exact; repr() would also round-trip but is slower to
        # compare and subtly version-dependent for exotic values.
        return ("f", float(value).hex())
    if isinstance(value, enum.Enum):
        return ("enum", type(value).__module__, type(value).__qualname__, value.name)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return (
            "dc",
            type(value).__module__,
            type(value).__qualname__,
            tuple(
                (f.name, _canonical(getattr(value, f.name)))
                for f in dataclasses.fields(value)
            ),
        )
    if isinstance(value, (tuple, list)):
        return ("seq", tuple(_canonical(item) for item in value))
    if isinstance(value, (set, frozenset)):
        return ("set", tuple(sorted(repr(_canonical(item)) for item in value)))
    if isinstance(value, Mapping):
        items = [(_canonical(k), _canonical(v)) for k, v in value.items()]
        # Sort by (type name, repr), not repr alone: mixed-type keys whose
        # reprs interleave (e.g. 1 vs "1", True vs 1) would otherwise
        # order unstably across values, splitting or colliding keys.
        items.sort(key=lambda kv: (type(kv[0]).__name__, repr(kv[0])))
        return ("map", tuple(items))
    if callable(value):
        if not is_module_level_function(value):
            raise UncacheableValue(
                f"callable {value!r} is not an importable module-level function"
            )
        return ("fn", value.__module__, value.__qualname__)
    raise UncacheableValue(f"no canonical encoding for {type(value).__qualname__}")


def content_key(kind: str, *parts: Any) -> str:
    """SHA-256 content hash of ``parts`` under the ``kind`` namespace.

    Raises :class:`UncacheableValue` when any part has no stable
    encoding — callers should treat that as "run uncached".
    """
    token = repr(
        (
            "repro-sweep",
            CACHE_SCHEMA_VERSION,
            __version__,
            kind,
            tuple(_canonical(part) for part in parts),
        )
    )
    return hashlib.sha256(token.encode("utf-8")).hexdigest()


@dataclasses.dataclass
class CacheStats:
    """Hit/miss/store counters of one :class:`SweepCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    errors: int = 0

    def reset(self) -> None:
        self.hits = self.misses = self.stores = self.errors = 0


class SweepCache:
    """On-disk pickle store addressed by :func:`content_key` hashes."""

    def __init__(self, root: str | os.PathLike | None = None, *, enabled: bool = True) -> None:
        if root is None:
            root = os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)
        self.root = Path(root)
        self.enabled = enabled
        self.stats = CacheStats()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def lookup(self, key: str) -> tuple[bool, Any]:
        """``(hit, value)`` for ``key``; corrupt entries count as misses."""
        if not self.enabled:
            self.stats.misses += 1
            return False, None
        path = self._path(key)
        try:
            with path.open("rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            return False, None
        except Exception:
            # Torn write from a crashed process, disk corruption, or a
            # pickle from an incompatible interpreter: drop and recompute.
            self.stats.errors += 1
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return False, None
        self.stats.hits += 1
        return True, value

    def store(self, key: str, value: Any) -> None:
        """Atomically persist ``value`` under ``key``."""
        if not self.enabled:
            return
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=".tmp-", suffix=".pkl")
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            # A read-only or full filesystem must never fail the sweep.
            self.stats.errors += 1
            return
        self.stats.stores += 1

    # -- maintenance ---------------------------------------------------------------

    def _entries(self) -> Iterator[Path]:
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.iterdir()):
            if shard.is_dir():
                yield from sorted(shard.glob("*.pkl"))

    def __len__(self) -> int:
        return sum(1 for _ in self._entries())

    def __bool__(self) -> bool:
        # An empty cache must stay truthy: ``cache or fallback`` would
        # otherwise silently swap in the fallback once len() == 0.
        return True

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in list(self._entries()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
