"""Work-stealing sweep executor with pluggable backends.

The experiment layer decomposes every table/figure into *tasks*: pure,
module-level functions of picklable arguments (one op signature's sweep,
one (model, interval) profile, one (model, policy) simulated step, ...).
:class:`SweepExecutor` runs a batch of such tasks

* ``serial``  — in the calling thread (the reference semantics),
* ``thread``  — on a ``ThreadPoolExecutor`` (cheap, shares memory, but
  bounded by the GIL for this pure-Python workload),
* ``process`` — on a ``ProcessPoolExecutor`` (one worker per core; the
  backend that actually scales the experiment layer),

and always returns results **in task order**, so parallel output is
bit-identical to serial output regardless of completion order.

Before dispatching, each task's result is looked up in a
:class:`~repro.sweep.cache.SweepCache` keyed on the task function and a
content hash of its arguments; hits skip execution entirely, which is
what makes repeated ``repro-experiments`` invocations (and overlapping
sweeps *across* experiments) cheap.  Tasks whose function or arguments
cannot be hashed or pickled degrade gracefully: they run locally in the
parent process, uncached.
"""

from __future__ import annotations

import os
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.sweep.cache import (
    CACHE_DIR_ENV,
    SweepCache,
    UncacheableValue,
    content_key,
    is_module_level_function,
)

#: Recognised backend names.
BACKENDS: tuple[str, ...] = ("serial", "thread", "process")

#: Environment overrides for the process-wide default executor.
BACKEND_ENV = "REPRO_SWEEP_BACKEND"
JOBS_ENV = "REPRO_SWEEP_JOBS"
NO_CACHE_ENV = "REPRO_SWEEP_NO_CACHE"


def available_cpus() -> int:
    """CPUs this process may actually run on.

    ``os.cpu_count()`` reports the whole machine, which oversubscribes
    the worker pool inside containers/CI and under ``taskset``; the
    scheduler affinity mask is the real budget.  Falls back to
    ``os.cpu_count()`` on platforms without ``sched_getaffinity``.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - macOS/Windows
        return os.cpu_count() or 1


@dataclass(frozen=True)
class SweepTask:
    """One unit of sweep work: ``fn(*args)``.

    ``fn`` must be a module-level function for the process backend and
    for caching; anything else still runs, just locally and uncached.
    ``cacheable=False`` opts a task out of the result cache (e.g. when
    the caller knows the function reads ambient state).
    """

    fn: Callable[..., Any]
    args: tuple = ()
    cacheable: bool = True


@dataclass
class ExecutorStats:
    """Counters describing how the last/accumulated runs were serviced."""

    submitted: int = 0
    cache_hits: int = 0
    executed: int = 0
    executed_local: int = 0

    def reset(self) -> None:
        self.submitted = self.cache_hits = self.executed = self.executed_local = 0


def _args_picklable(args: tuple) -> bool:
    import pickle

    try:
        pickle.dumps(args, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        return False
    return True


def _call(fn: Callable, args: tuple) -> Any:
    return fn(*args)


class SweepExecutor:
    """Run batches of sweep tasks with caching and deterministic ordering."""

    def __init__(
        self,
        backend: str = "serial",
        *,
        jobs: int | None = None,
        cache: SweepCache | None = None,
    ) -> None:
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
        if jobs is not None and jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.backend = backend
        self.jobs = jobs or available_cpus()
        self.cache = cache if cache is not None else SweepCache(enabled=False)
        self.stats = ExecutorStats()
        self._pool: ThreadPoolExecutor | ProcessPoolExecutor | None = None

    # -- public API ----------------------------------------------------------------

    def map(
        self,
        fn: Callable[..., Any],
        arg_tuples: Iterable[tuple],
        *,
        cacheable: bool = True,
    ) -> list:
        """Apply ``fn`` to every argument tuple; results in input order."""
        return self.run([SweepTask(fn, tuple(args), cacheable=cacheable) for args in arg_tuples])

    def run(self, tasks: Sequence[SweepTask]) -> list:
        """Execute ``tasks``, consulting the cache first.

        The returned list is ordered like ``tasks`` for every backend,
        so downstream assembly is deterministic.
        """
        results: list[Any] = [None] * len(tasks)
        self.stats.submitted += len(tasks)

        keys: list[str | None] = []
        misses: list[int] = []
        for index, task in enumerate(tasks):
            key = self._key_for(task)
            keys.append(key)
            if key is not None:
                hit, value = self.cache.lookup(key)
                if hit:
                    results[index] = value
                    self.stats.cache_hits += 1
                    continue
            misses.append(index)

        if misses:
            self._execute(tasks, misses, results)
            for index in misses:
                key = keys[index]
                if key is not None:
                    self.cache.store(key, results[index])
        return results

    # -- internals -----------------------------------------------------------------

    def _key_for(self, task: SweepTask) -> str | None:
        if not task.cacheable or not self.cache.enabled:
            return None
        if not is_module_level_function(task.fn):
            return None
        try:
            return content_key("task", task.fn, task.args)
        except UncacheableValue:
            return None

    def _execute(self, tasks: Sequence[SweepTask], misses: list[int], results: list) -> None:
        if self.backend == "serial" or self.jobs == 1 or len(misses) == 1:
            for index in misses:
                results[index] = _call(tasks[index].fn, tasks[index].args)
                self.stats.executed += 1
                self.stats.executed_local += 1
            return

        if self.backend == "thread":
            pooled, local = misses, []
        else:
            # The process backend can only ship module-level functions
            # (pickle-by-reference) with picklable arguments; everything
            # else runs in the parent.
            pooled, local = [], []
            for i in misses:
                if is_module_level_function(tasks[i].fn) and _args_picklable(tasks[i].args):
                    pooled.append(i)
                else:
                    local.append(i)

        if pooled:
            pool = self._get_pool()
            futures: list[tuple[int, Future]] = [
                (index, pool.submit(_call, tasks[index].fn, tasks[index].args))
                for index in pooled
            ]
            try:
                for index, future in futures:
                    results[index] = future.result()
                    self.stats.executed += 1
            except BaseException:
                # A dead worker leaves the pool broken; drop it so a later
                # run() can start fresh instead of failing forever.
                self.close()
                raise

        for index in local:
            results[index] = _call(tasks[index].fn, tasks[index].args)
            self.stats.executed += 1
            self.stats.executed_local += 1

    def _get_pool(self):
        """The lazily-created worker pool, reused across run() batches.

        One experiment invocation issues many small batches; re-forking a
        process pool per batch would put the spawn cost right back on the
        hot path this executor exists to remove.
        """
        if self._pool is None:
            if self.backend == "thread":
                self._pool = ThreadPoolExecutor(max_workers=self.jobs)
            else:
                import multiprocessing as mp

                # fork reuses the parent's warm interpreter (imports, lru
                # caches); spawn would re-import repro in every worker.
                if "fork" in mp.get_all_start_methods():
                    context = mp.get_context("fork")
                else:  # pragma: no cover - Windows/macOS default
                    context = mp.get_context()
                self._pool = ProcessPoolExecutor(max_workers=self.jobs, mp_context=context)
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent; the next run() revives it)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- process-wide default executor -------------------------------------------------

_default_executor: SweepExecutor | None = None


#: Spellings accepted by boolean environment switches.
_TRUTHY = frozenset({"1", "true", "yes", "on"})
_FALSY = frozenset({"", "0", "false", "no", "off"})


class EnvironmentConfigError(ValueError):
    """A ``REPRO_*`` environment variable holds an invalid value."""


def parse_bool_env(name: str, *, default: bool = False) -> bool:
    """Strictly parse the boolean environment switch ``name``.

    Values are normalised (``TRUE``, `` yes ``, ``On`` all count), an
    unset variable yields ``default``, and an unrecognised value raises
    :class:`EnvironmentConfigError` instead of silently picking a side.
    Shared by every ``REPRO_*`` on/off switch so they all accept the
    same spellings.
    """
    raw = os.environ.get(name)
    if raw is None:
        return default
    value = raw.strip().lower()
    if value in _TRUTHY:
        return True
    if value in _FALSY:
        return False
    raise EnvironmentConfigError(
        f"${name}={raw!r} is not a boolean; "
        f"use one of {sorted(_TRUTHY)} or {sorted(_FALSY - {''})}"
    )


def no_cache_requested() -> bool:
    """True when ``$REPRO_SWEEP_NO_CACHE`` asks to skip the result cache."""
    return parse_bool_env(NO_CACHE_ENV)


def _from_environment() -> SweepExecutor:
    backend = os.environ.get(BACKEND_ENV, "serial").strip().lower() or "serial"
    if backend not in BACKENDS:
        raise EnvironmentConfigError(
            f"${BACKEND_ENV}={os.environ[BACKEND_ENV]!r} is not a backend; "
            f"expected one of {BACKENDS}"
        )
    jobs_raw = os.environ.get(JOBS_ENV)
    jobs = None
    if jobs_raw and jobs_raw.strip():
        try:
            jobs = int(jobs_raw.strip())
        except ValueError:
            raise EnvironmentConfigError(
                f"${JOBS_ENV}={jobs_raw!r} is not an integer"
            ) from None
        if jobs < 1:
            raise EnvironmentConfigError(f"${JOBS_ENV}={jobs_raw!r} must be >= 1")
    # The library default is cache-OFF: persistent state must be opted
    # into, either by exporting $REPRO_SWEEP_CACHE_DIR, via configure(),
    # or through the CLI (which defaults to caching under .sweep_cache).
    # Otherwise a plain `pytest` run would leave pickles behind and could
    # serve stale results after model-code edits.
    cache_dir = os.environ.get(CACHE_DIR_ENV)
    enabled = cache_dir is not None and not no_cache_requested()
    return SweepExecutor(backend, jobs=jobs, cache=SweepCache(cache_dir, enabled=enabled))


def get_default_executor() -> SweepExecutor:
    """The executor used when an API accepts ``executor=None``.

    Constructed lazily from the environment (``REPRO_SWEEP_BACKEND``,
    ``REPRO_SWEEP_JOBS``, ``REPRO_SWEEP_NO_CACHE``,
    ``REPRO_SWEEP_CACHE_DIR``) unless :func:`configure` installed one.
    """
    global _default_executor
    if _default_executor is None:
        _default_executor = _from_environment()
    return _default_executor


def configure(
    *,
    backend: str | None = None,
    jobs: int | None = None,
    cache_dir: str | os.PathLike | None = None,
    cache_enabled: bool | None = None,
) -> SweepExecutor:
    """Install (and return) the process-wide default executor."""
    current = get_default_executor()
    cache = current.cache
    if cache_dir is not None or cache_enabled is not None:
        cache = SweepCache(
            cache_dir if cache_dir is not None else current.cache.root,
            enabled=cache_enabled if cache_enabled is not None else current.cache.enabled,
        )
    executor = SweepExecutor(
        backend if backend is not None else current.backend,
        jobs=jobs if jobs is not None else current.jobs,
        cache=cache,
    )
    global _default_executor
    _default_executor = executor
    return executor
