"""Work-stealing sweep executor with pluggable backends.

The experiment layer decomposes every table/figure into *tasks*: pure,
module-level functions of picklable arguments (one op signature's sweep,
one (model, interval) profile, one (model, policy) simulated step, ...).
:class:`SweepExecutor` runs a batch of such tasks

* ``serial``  — in the calling thread (the reference semantics),
* ``thread``  — on a ``ThreadPoolExecutor`` (cheap, shares memory, but
  bounded by the GIL for this pure-Python workload),
* ``process`` — on a ``ProcessPoolExecutor`` (one worker per core; the
  backend that actually scales the experiment layer),

and always returns results **in task order**, so parallel output is
bit-identical to serial output regardless of completion order.

Before dispatching, each task's result is looked up in a
:class:`~repro.sweep.cache.SweepCache` keyed on the task function and a
content hash of its arguments; hits skip execution entirely, which is
what makes repeated ``repro-experiments`` invocations (and overlapping
sweeps *across* experiments) cheap.  Tasks whose function or arguments
cannot be hashed or pickled degrade gracefully: they run locally in the
parent process, uncached.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FuturesTimeout
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.sweep.cache import (
    CACHE_DIR_ENV,
    SweepCache,
    UncacheableValue,
    content_key,
    is_module_level_function,
)
from repro.sweep.retry import SINGLE_ATTEMPT, RetryPolicy, SweepTaskFailure

#: Recognised backend names.
BACKENDS: tuple[str, ...] = ("serial", "thread", "process")

#: Environment overrides for the process-wide default executor.
BACKEND_ENV = "REPRO_SWEEP_BACKEND"
JOBS_ENV = "REPRO_SWEEP_JOBS"
NO_CACHE_ENV = "REPRO_SWEEP_NO_CACHE"


def available_cpus() -> int:
    """CPUs this process may actually run on.

    ``os.cpu_count()`` reports the whole machine, which oversubscribes
    the worker pool inside containers/CI and under ``taskset``; the
    scheduler affinity mask is the real budget.  Falls back to
    ``os.cpu_count()`` on platforms without ``sched_getaffinity``.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - macOS/Windows
        return os.cpu_count() or 1


@dataclass(frozen=True)
class SweepTask:
    """One unit of sweep work: ``fn(*args)``.

    ``fn`` must be a module-level function for the process backend and
    for caching; anything else still runs, just locally and uncached.
    ``cacheable=False`` opts a task out of the result cache (e.g. when
    the caller knows the function reads ambient state).
    """

    fn: Callable[..., Any]
    args: tuple = ()
    cacheable: bool = True


@dataclass
class ExecutorStats:
    """Counters describing how the last/accumulated runs were serviced.

    The resilience counters (``retries`` onward) stay zero on a healthy
    run: they only move when the retry policy repairs worker failures —
    ``retries`` counts resubmissions, ``timeouts`` hung tasks detected by
    the heartbeat wait, ``quarantined`` poison tasks recorded as
    :class:`~repro.sweep.retry.SweepTaskFailure` results, ``degraded``
    executions salvaged by falling back to the parent (or a slower
    backend), and ``pool_restarts`` worker pools force-reaped after a
    crash or hang.
    """

    submitted: int = 0
    cache_hits: int = 0
    executed: int = 0
    executed_local: int = 0
    retries: int = 0
    timeouts: int = 0
    quarantined: int = 0
    degraded: int = 0
    pool_restarts: int = 0

    def reset(self) -> None:
        self.submitted = self.cache_hits = self.executed = self.executed_local = 0
        self.retries = self.timeouts = self.quarantined = 0
        self.degraded = self.pool_restarts = 0


#: The resilience-facing name of the executor counters (the ISSUE-10
#: surface: retry/timeout/quarantine counters live on ``SweepStats``).
SweepStats = ExecutorStats


def _args_picklable(args: tuple) -> bool:
    import pickle

    try:
        pickle.dumps(args, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        return False
    return True


def _call(fn: Callable, args: tuple) -> Any:
    return fn(*args)


def _sleep(seconds: float) -> None:
    if seconds > 0:
        time.sleep(seconds)


class SweepExecutor:
    """Run batches of sweep tasks with caching and deterministic ordering."""

    def __init__(
        self,
        backend: str = "serial",
        *,
        jobs: int | None = None,
        cache: SweepCache | None = None,
        retry: RetryPolicy | None = None,
        chaos: "object | None" = None,
    ) -> None:
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
        if jobs is not None and jobs < 1:
            raise ValueError("jobs must be at least 1")
        if retry is not None and not isinstance(retry, RetryPolicy):
            raise TypeError(f"retry must be a RetryPolicy, got {type(retry).__name__}")
        self.backend = backend
        self.jobs = jobs or available_cpus()
        self.cache = cache if cache is not None else SweepCache(enabled=False)
        #: Fault-tolerance policy; ``None`` keeps the seed semantics
        #: (one attempt, no timeout, first failure propagates).
        self.retry = retry
        #: Optional :class:`~repro.resilience.chaos.ChaosPlan` injecting
        #: seeded worker crashes/hangs (test/bench harness only).
        self.chaos = chaos
        #: Original backend when repeated pool failures degraded it
        #: (process -> thread -> serial); ``None`` while undegraded.
        self.degraded_from: str | None = None
        self.stats = ExecutorStats()
        self._pool: ThreadPoolExecutor | ProcessPoolExecutor | None = None
        #: Monotonic per-task number (chaos directives key on it).
        self._task_seq = 0
        #: Consecutive force-closed pools; two in a row degrade the backend.
        self._pool_failures = 0

    # -- public API ----------------------------------------------------------------

    def map(
        self,
        fn: Callable[..., Any],
        arg_tuples: Iterable[tuple],
        *,
        cacheable: bool = True,
    ) -> list:
        """Apply ``fn`` to every argument tuple; results in input order."""
        return self.run([SweepTask(fn, tuple(args), cacheable=cacheable) for args in arg_tuples])

    def run(self, tasks: Sequence[SweepTask]) -> list:
        """Execute ``tasks``, consulting the cache first.

        The returned list is ordered like ``tasks`` for every backend,
        so downstream assembly is deterministic.
        """
        results: list[Any] = [None] * len(tasks)
        self.stats.submitted += len(tasks)

        keys: list[str | None] = []
        misses: list[int] = []
        for index, task in enumerate(tasks):
            key = self._key_for(task)
            keys.append(key)
            if key is not None:
                hit, value = self.cache.lookup(key)
                if hit:
                    results[index] = value
                    self.stats.cache_hits += 1
                    continue
            misses.append(index)

        if misses:
            base = self._task_seq
            self._task_seq += len(tasks)
            try:
                self._execute(tasks, misses, results, base)
                for index in misses:
                    key = keys[index]
                    # Quarantined failures are per-run verdicts, never
                    # cacheable results.
                    if key is not None and not isinstance(
                        results[index], SweepTaskFailure
                    ):
                        self.cache.store(key, results[index])
            except BaseException:
                # Any exit path through run() must reap the pool: a task
                # (or the result merge) raising used to leak the worker
                # children until interpreter exit.
                self.close(force=True)
                raise
        return results

    # -- internals -----------------------------------------------------------------

    def _key_for(self, task: SweepTask) -> str | None:
        if not task.cacheable or not self.cache.enabled:
            return None
        if not is_module_level_function(task.fn):
            return None
        try:
            return content_key("task", task.fn, task.args)
        except UncacheableValue:
            return None

    def _execute(
        self,
        tasks: Sequence[SweepTask],
        misses: list[int],
        results: list,
        base: int = 0,
    ) -> None:
        policy = self.retry or SINGLE_ATTEMPT
        if self.backend == "serial" or self.jobs == 1 or len(misses) == 1:
            self._run_local(tasks, misses, results, base, policy)
            return

        if self.backend == "thread":
            pooled, local = list(misses), []
        else:
            # The process backend can only ship module-level functions
            # (pickle-by-reference) with picklable arguments; everything
            # else runs in the parent.
            pooled, local = [], []
            for i in misses:
                if is_module_level_function(tasks[i].fn) and _args_picklable(tasks[i].args):
                    pooled.append(i)
                else:
                    local.append(i)

        if pooled:
            self._run_pooled(tasks, pooled, results, base, policy)
        if local:
            self._run_local(tasks, local, results, base, policy)

    # -- fault-tolerant execution paths --------------------------------------------

    def _directive(self, task_no: int, attempt: int):
        chaos = self.chaos
        if chaos is None:
            return None
        return chaos.directive(task_no, attempt)

    def _submit(self, pool, task: SweepTask, task_no: int, attempt: int) -> Future:
        directive = self._directive(task_no, attempt)
        if directive is None:
            return pool.submit(_call, task.fn, task.args)
        from repro.resilience.chaos import chaos_call

        return pool.submit(
            chaos_call, task.fn, task.args, directive, self.backend == "process"
        )

    def _invoke_local(self, task: SweepTask, task_no: int, attempt: int) -> Any:
        directive = self._directive(task_no, attempt)
        if directive is None:
            return _call(task.fn, task.args)
        from repro.resilience.chaos import chaos_call

        return chaos_call(task.fn, task.args, directive, False)

    def _await(self, future: Future, policy: RetryPolicy) -> Any:
        """Wait for one future, probing liveness every ``heartbeat``.

        With no ``timeout`` this is a plain blocking wait (the seed
        behaviour).  Otherwise the wait is sliced into heartbeat probes
        so a hung worker is detected within ``timeout`` wall-clock
        seconds and surfaces as a :class:`FuturesTimeout`.
        """
        if policy.timeout is None:
            return future.result()
        deadline = time.monotonic() + policy.timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise FuturesTimeout(
                    f"sweep task exceeded its {policy.timeout:g}s timeout"
                )
            try:
                return future.result(timeout=min(policy.heartbeat, remaining))
            except FuturesTimeout:
                continue

    def _run_local(
        self,
        tasks: Sequence[SweepTask],
        indices: Sequence[int],
        results: list,
        base: int,
        policy: RetryPolicy,
    ) -> None:
        """Serial in-parent execution with the same retry semantics."""
        for index in indices:
            task = tasks[index]
            attempt = 0
            while True:
                attempt += 1
                try:
                    value = self._invoke_local(task, base + index, attempt)
                except BaseException as exc:
                    if attempt < policy.max_attempts:
                        self.stats.retries += 1
                        _sleep(policy.delay(attempt))
                        continue
                    self._exhausted(
                        task, index, results, attempt, exc, "exception", policy,
                        local=True,
                    )
                    break
                else:
                    results[index] = value
                    self.stats.executed += 1
                    self.stats.executed_local += 1
                    break

    def _run_pooled(
        self,
        tasks: Sequence[SweepTask],
        pooled: list[int],
        results: list,
        base: int,
        policy: RetryPolicy,
    ) -> None:
        """Pool execution with bounded retry, hang detection and pool
        recycling.

        One *round* submits every outstanding task, then drains results
        in submission order (input-ordered results for free).  A worker
        crash (``BrokenExecutor``) or hang (heartbeat timeout) force-
        closes the pool — reaping its children — charges one attempt to
        every task the failure exposed, and resubmits the survivors next
        round after a seeded backoff delay.  Two consecutive pool
        failures degrade the backend (process -> thread -> serial).
        """
        attempts = {i: 0 for i in pooled}
        errors: dict[int, tuple[BaseException, str]] = {}
        outstanding = list(pooled)
        round_index = 0
        while outstanding:
            if self.backend == "serial":
                # Degraded all the way down: finish inline.
                self._run_local(tasks, outstanding, results, base, policy)
                return
            if round_index:
                _sleep(policy.delay(round_index))
            round_index += 1
            pool = self._get_pool()
            batch = outstanding
            outstanding = []
            failed: list[int] = []
            submitted: list[tuple[int, Future]] = []
            for i in batch:
                attempts[i] += 1
                submitted.append((i, self._submit(pool, tasks[i], base + i, attempts[i])))
            pool_dead = False
            for i, future in submitted:
                if pool_dead:
                    # The pool died earlier this round.  Futures that
                    # completed before the break still carry results;
                    # everything else is charged and resubmitted.
                    if future.done() and not future.cancelled() and future.exception() is None:
                        results[i] = future.result()
                        self.stats.executed += 1
                        continue
                    errors.setdefault(
                        i, (RuntimeError("worker pool died mid-batch"), "crash")
                    )
                    failed.append(i)
                    continue
                try:
                    value = self._await(future, policy)
                except FuturesTimeout:
                    errors[i] = (
                        TimeoutError(
                            f"sweep task hung past its {policy.timeout:g}s timeout"
                        ),
                        "timeout",
                    )
                    self.stats.timeouts += 1
                    failed.append(i)
                    # A hung worker poisons the whole pool: reap it (the
                    # stuck child included) and resubmit the survivors.
                    self._fail_pool()
                    pool_dead = True
                except BrokenExecutor as exc:
                    errors[i] = (exc, "crash")
                    failed.append(i)
                    self._fail_pool()
                    pool_dead = True
                except Exception as exc:
                    errors[i] = (exc, "exception")
                    failed.append(i)
                else:
                    results[i] = value
                    self.stats.executed += 1
            if not failed and not pool_dead:
                self._pool_failures = 0
            elif self._pool_failures >= 2 and policy.degrade:
                self._degrade_backend()
            for i in failed:
                if attempts[i] < policy.max_attempts:
                    self.stats.retries += 1
                    outstanding.append(i)
                else:
                    error, kind = errors.get(
                        i, (RuntimeError("sweep task failed"), "exception")
                    )
                    self._exhausted(
                        tasks[i], i, results, attempts[i], error, kind, policy
                    )

    def _fail_pool(self) -> None:
        self.close(force=True)
        self.stats.pool_restarts += 1
        self._pool_failures += 1

    def _degrade_backend(self) -> None:
        """Repeated pool failures: fall back process -> thread -> serial."""
        step = {"process": "thread", "thread": "serial"}
        nxt = step.get(self.backend)
        if nxt is None:
            return
        self.close(force=True)
        if self.degraded_from is None:
            self.degraded_from = self.backend
        self.backend = nxt
        self.stats.degraded += 1
        self._pool_failures = 0

    def _exhausted(
        self,
        task: SweepTask,
        index: int,
        results: list,
        attempt_count: int,
        error: BaseException,
        kind: str,
        policy: RetryPolicy,
        *,
        local: bool = False,
    ) -> None:
        """A task burned its whole retry budget: degrade, quarantine, or raise.

        The degrade execution runs the task in the parent *without*
        chaos directives — it models the operator's trusted serial
        fallback, which is what guarantees a chaos plan can never turn
        a pure task into a lost result.
        """
        if policy.degrade and not local:
            try:
                results[index] = _call(task.fn, task.args)
            except BaseException as exc:
                error, kind = exc, "exception"
            else:
                self.stats.executed += 1
                self.stats.executed_local += 1
                self.stats.degraded += 1
                return
        if policy.quarantine:
            results[index] = SweepTaskFailure(
                index=index,
                error=repr(error),
                attempts=attempt_count,
                kind=kind,
            )
            self.stats.quarantined += 1
            return
        self.close(force=True)
        raise error

    def _get_pool(self):
        """The lazily-created worker pool, reused across run() batches.

        One experiment invocation issues many small batches; re-forking a
        process pool per batch would put the spawn cost right back on the
        hot path this executor exists to remove.
        """
        if self._pool is None:
            if self.backend == "thread":
                self._pool = ThreadPoolExecutor(max_workers=self.jobs)
            else:
                import multiprocessing as mp

                # fork reuses the parent's warm interpreter (imports, lru
                # caches); spawn would re-import repro in every worker.
                if "fork" in mp.get_all_start_methods():
                    context = mp.get_context("fork")
                else:  # pragma: no cover - Windows/macOS default
                    context = mp.get_context()
                self._pool = ProcessPoolExecutor(max_workers=self.jobs, mp_context=context)
        return self._pool

    def close(self, *, force: bool = False) -> None:
        """Shut the worker pool down (idempotent; the next run() revives it).

        ``force=True`` is the crash/hang path: cancel queued work, don't
        wait for stragglers, and explicitly terminate + reap any process
        children so a hung worker cannot outlive the pool object.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        if not force:
            pool.shutdown()
            return
        pool.shutdown(wait=False, cancel_futures=True)
        processes = getattr(pool, "_processes", None)
        if processes:
            for proc in list(processes.values()):
                try:
                    proc.terminate()
                except Exception:  # pragma: no cover - already-dead child
                    pass
            for proc in list(processes.values()):
                try:
                    proc.join(timeout=5)
                except Exception:  # pragma: no cover - already-reaped child
                    pass

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- process-wide default executor -------------------------------------------------

_default_executor: SweepExecutor | None = None


#: Spellings accepted by boolean environment switches.
_TRUTHY = frozenset({"1", "true", "yes", "on"})
_FALSY = frozenset({"", "0", "false", "no", "off"})


class EnvironmentConfigError(ValueError):
    """A ``REPRO_*`` environment variable holds an invalid value."""


def parse_bool_env(name: str, *, default: bool = False) -> bool:
    """Strictly parse the boolean environment switch ``name``.

    Values are normalised (``TRUE``, `` yes ``, ``On`` all count), an
    unset variable yields ``default``, and an unrecognised value raises
    :class:`EnvironmentConfigError` instead of silently picking a side.
    Shared by every ``REPRO_*`` on/off switch so they all accept the
    same spellings.
    """
    raw = os.environ.get(name)
    if raw is None:
        return default
    value = raw.strip().lower()
    if value in _TRUTHY:
        return True
    if value in _FALSY:
        return False
    raise EnvironmentConfigError(
        f"${name}={raw!r} is not a boolean; "
        f"use one of {sorted(_TRUTHY)} or {sorted(_FALSY - {''})}"
    )


def no_cache_requested() -> bool:
    """True when ``$REPRO_SWEEP_NO_CACHE`` asks to skip the result cache."""
    return parse_bool_env(NO_CACHE_ENV)


def _from_environment() -> SweepExecutor:
    backend = os.environ.get(BACKEND_ENV, "serial").strip().lower() or "serial"
    if backend not in BACKENDS:
        raise EnvironmentConfigError(
            f"${BACKEND_ENV}={os.environ[BACKEND_ENV]!r} is not a backend; "
            f"expected one of {BACKENDS}"
        )
    jobs_raw = os.environ.get(JOBS_ENV)
    jobs = None
    if jobs_raw and jobs_raw.strip():
        try:
            jobs = int(jobs_raw.strip())
        except ValueError:
            raise EnvironmentConfigError(
                f"${JOBS_ENV}={jobs_raw!r} is not an integer"
            ) from None
        if jobs < 1:
            raise EnvironmentConfigError(f"${JOBS_ENV}={jobs_raw!r} must be >= 1")
    # The library default is cache-OFF: persistent state must be opted
    # into, either by exporting $REPRO_SWEEP_CACHE_DIR, via configure(),
    # or through the CLI (which defaults to caching under .sweep_cache).
    # Otherwise a plain `pytest` run would leave pickles behind and could
    # serve stale results after model-code edits.
    cache_dir = os.environ.get(CACHE_DIR_ENV)
    enabled = cache_dir is not None and not no_cache_requested()
    return SweepExecutor(backend, jobs=jobs, cache=SweepCache(cache_dir, enabled=enabled))


def get_default_executor() -> SweepExecutor:
    """The executor used when an API accepts ``executor=None``.

    Constructed lazily from the environment (``REPRO_SWEEP_BACKEND``,
    ``REPRO_SWEEP_JOBS``, ``REPRO_SWEEP_NO_CACHE``,
    ``REPRO_SWEEP_CACHE_DIR``) unless :func:`configure` installed one.
    """
    global _default_executor
    if _default_executor is None:
        _default_executor = _from_environment()
    return _default_executor


def configure(
    *,
    backend: str | None = None,
    jobs: int | None = None,
    cache_dir: str | os.PathLike | None = None,
    cache_enabled: bool | None = None,
) -> SweepExecutor:
    """Install (and return) the process-wide default executor."""
    current = get_default_executor()
    cache = current.cache
    if cache_dir is not None or cache_enabled is not None:
        cache = SweepCache(
            cache_dir if cache_dir is not None else current.cache.root,
            enabled=cache_enabled if cache_enabled is not None else current.cache.enabled,
        )
    executor = SweepExecutor(
        backend if backend is not None else current.backend,
        jobs=jobs if jobs is not None else current.jobs,
        cache=cache,
    )
    global _default_executor
    _default_executor = executor
    return executor
