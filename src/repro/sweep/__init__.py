"""Parallel sweep engine with cross-run result caching.

The experiment layer's hot path is re-running the same exhaustive
(threads, affinity) characterisations and policy simulations over and
over — across experiments inside one invocation and across invocations.
This package provides the two pieces that fix that:

* :class:`SweepExecutor` — fans independent sweep tasks out over a
  serial / thread / process backend with deterministic, input-ordered
  results (parallel output is bit-identical to serial);
* :class:`SweepCache` — an on-disk, content-hash-keyed store that
  memoises task results across experiments *and* across process
  invocations, keyed on op characteristics + machine description +
  package version.

``configure()`` / ``get_default_executor()`` manage the process-wide
default used by ``repro-experiments`` (see its ``--jobs``, ``--backend``
and ``--no-cache`` flags).
"""

from repro.sweep.cache import (
    CACHE_DIR_ENV,
    CACHE_SCHEMA_VERSION,
    DEFAULT_CACHE_DIR,
    SweepCache,
    UncacheableValue,
    content_key,
)
from repro.sweep.executor import (
    BACKENDS,
    EnvironmentConfigError,
    SweepExecutor,
    SweepTask,
    available_cpus,
    configure,
    get_default_executor,
    parse_bool_env,
)
from repro.sweep.tasks import cached_call, op_sweep, op_sweep_totals

__all__ = [
    "BACKENDS",
    "EnvironmentConfigError",
    "available_cpus",
    "CACHE_DIR_ENV",
    "CACHE_SCHEMA_VERSION",
    "DEFAULT_CACHE_DIR",
    "SweepCache",
    "SweepExecutor",
    "SweepTask",
    "UncacheableValue",
    "cached_call",
    "configure",
    "content_key",
    "get_default_executor",
    "op_sweep",
    "parse_bool_env",
    "op_sweep_totals",
]
