"""Shared, cacheable sweep primitives used across the core and experiment layers.

These are the hottest units the :class:`~repro.sweep.executor.SweepExecutor`
memoises: the exhaustive (threads, affinity) characterisation of one
operation signature.  They are module-level pure functions of picklable
arguments, so every backend (and the on-disk cache) can handle them.
"""

from __future__ import annotations

from typing import Any

from repro.execsim.op_runtime import OpTimeBreakdown, sweep_thread_counts
from repro.hardware.affinity import AffinityMode
from repro.hardware.topology import Machine
from repro.ops.characteristics import OpCharacteristics
from repro.sweep.cache import SweepCache, UncacheableValue, content_key


def op_sweep(
    chars: OpCharacteristics, machine: Machine
) -> dict[tuple[int, AffinityMode], OpTimeBreakdown]:
    """Full breakdown sweep of one op's feasible (threads, affinity) grid."""
    return sweep_thread_counts(chars, machine)


def op_sweep_totals(
    chars: OpCharacteristics, machine: Machine
) -> dict[tuple[int, AffinityMode], float]:
    """Total execution times only (what the oracle/ground truth store)."""
    return {key: breakdown.total for key, breakdown in sweep_thread_counts(chars, machine).items()}


def cached_call(cache: SweepCache | None, fn, *args: Any):
    """Run ``fn(*args)`` through ``cache`` (or uncached when impossible).

    The single-call analogue of ``SweepExecutor.run`` for code paths that
    need one memoised result without fanning anything out (e.g.
    ``StandaloneRunner.sweep`` and ``OraclePerformanceModel.observe``).
    """
    if cache is None or not cache.enabled:
        return fn(*args)
    try:
        key = content_key("task", fn, args)
    except UncacheableValue:
        return fn(*args)
    hit, value = cache.lookup(key)
    if hit:
        return value
    value = fn(*args)
    cache.store(key, value)
    return value
