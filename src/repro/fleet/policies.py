"""Pluggable job-placement policies.

Each policy answers one question — *which machine should this job run
on, if any?* — from an immutable :class:`~repro.fleet.state.FleetState`.
The ladder mirrors the paper's single-machine strategy ladder, one level
up:

* :class:`FirstFitPolicy` — the baseline a naive cluster uses: the first
  machine with a free slot (jobs pile onto early machines even while
  later ones idle, like TensorFlow's uniform defaults pile threads onto
  one pool);
* :class:`LoadBalancedPolicy` — spreads by *predicted* backlog, using
  the performance-model-driven solo step-time estimates (Strategy 1/2
  raised to machines: right-size each machine's load, ignore pairings);
* :class:`InterferenceAwarePolicy` — additionally consults the
  generalized :class:`~repro.core.interference.InterferenceTracker`
  (keyed by workload kind) and the per-mix co-run estimates, placing
  each job where its model-predicted marginal cost — its own steps plus
  the slowdown it imposes on residents — is smallest (Strategies 3/4
  raised to machines: co-locate only when the predictions say the mix
  is profitable, never on a blacklisted pairing).
"""

from __future__ import annotations

from typing import Callable, Protocol

from repro.core.interference import InterferenceTracker
from repro.fleet.estimates import StepTimeEstimator
from repro.fleet.job import Job
from repro.fleet.state import DEFAULT_INTERFERENCE_THRESHOLD, FleetState, MachineView


class PlacementPolicy(Protocol):
    """The interface the fleet simulator drives."""

    name: str

    def place(self, job: Job, fleet: FleetState) -> str | None:
        """The machine id to place ``job`` on, or ``None`` to keep it queued."""


class FirstFitPolicy:
    """Place on the first machine (in fleet order) with a free slot."""

    name = "first-fit"

    def place(self, job: Job, fleet: FleetState) -> str | None:
        for machine in fleet.machines:
            # A dead/draining machine reports zero free slots, but the
            # guard stays explicit: never place on a non-accepting box.
            if machine.accepting and machine.free_slots > 0:
                return machine.machine_id
        return None


class LoadBalancedPolicy:
    """Place on the machine with the least predicted backlog.

    Backlog is measured in predicted seconds, not job counts: every
    member's remaining steps are costed at its *solo* step-time estimate
    on that machine (the hill-climbing model's prediction), so a slow
    machine with one job can legitimately lose to a fast machine with
    two.  Pairing effects are deliberately ignored — that is the
    interference-aware policy's edge.
    """

    name = "load-balanced"

    def __init__(self, estimator: StepTimeEstimator) -> None:
        self.estimator = estimator

    def _backlog(self, machine: MachineView, job: Job, now: float) -> float:
        seconds = max(0.0, machine.busy_until - now)
        for member in machine.members:
            seconds += machine.remaining_of(member.name) * self.estimator.solo_time(
                machine.machine_name, member
            )
        seconds += job.num_steps * self.estimator.solo_time(machine.machine_name, job)
        return seconds

    def place(self, job: Job, fleet: FleetState) -> str | None:
        best: tuple[float, int] | None = None
        chosen: str | None = None
        for index, machine in enumerate(fleet.machines):
            if not machine.accepting or machine.free_slots <= 0:
                continue
            score = (self._backlog(machine, job, fleet.time), index)
            if best is None or score < best:
                best = score
                chosen = machine.machine_id
        return chosen


class InterferenceAwarePolicy:
    """Model-guided placement that avoids harmful co-run pairings.

    Machines whose members include a kind the shared interference
    tracker has blacklisted against the job's kind are skipped (unless
    *every* open machine is blacklisted, in which case the least-loaded
    open machine is used — starving a job is worse than a bad pairing).
    The remaining candidates are scored by predicted marginal cost:

    ``cost = mix_time * job.steps + (mix_time - current_time) * imposed``

    where ``mix_time`` is the estimated gang-round duration with the job
    joining, ``current_time`` without it, and ``imposed`` the resident
    steps that would suffer the slower rounds.  An idle machine scores
    ``solo_time * job.steps`` — co-location only wins when the model
    predicts the mix genuinely overlaps well, which is the fleet-level
    restatement of Strategy 3's "fill idle cores without decreasing
    system throughput".
    """

    name = "interference-aware"

    def __init__(
        self,
        estimator: StepTimeEstimator,
        tracker: InterferenceTracker | None = None,
        *,
        patience: float = 2.0,
    ) -> None:
        if patience < 1.0:
            raise ValueError("patience must be at least 1.0")
        self.estimator = estimator
        self.tracker = (
            tracker
            if tracker is not None
            else InterferenceTracker(threshold=DEFAULT_INTERFERENCE_THRESHOLD)
        )
        #: How much cheaper (multiplicatively) waiting for a full machine
        #: must look before the policy declines an open slot.  Waiting
        #: competes with the rest of the queue for the freed slot, so the
        #: prediction is optimistic; demanding a clear margin keeps the
        #: policy from starving itself on near-ties.
        self.patience = patience
        #: Memoised drain replays.  A queued job is re-scored against the
        #: whole fleet at every event until placed, and the drain of a
        #: (machine, member multiset) is a pure function of the
        #: estimator's pure step times — so identical replays are served
        #: from this dict instead of re-walking the subset ladder.  The
        #: simulator clears it at every run() entry so per-run estimator
        #: traffic stays reproducible.
        self._drain_memo: dict[tuple, float] = {}

    def clear_memo(self) -> None:
        """Drop memoised drain replays (called at each simulation start)."""
        self._drain_memo.clear()

    def _drain_time(self, machine_name: str, members: list[tuple[Job, int]]) -> float:
        """Predicted seconds until ``members`` all finish on ``machine_name``.

        Replays the gang-round dynamics symbolically: the current mix
        runs at its estimated round time until its shortest member
        drains, then the shrunken mix at *its* estimated rate, and so
        on.  Every subset estimate comes from the memoised estimator, so
        the replay costs a handful of dictionary hits — and the whole
        replay is itself memoised by the members' canonical signature.
        """
        key = (
            machine_name,
            tuple(
                sorted(
                    (
                        (job.kind, job.graph_seed, steps, job.workload)
                        for job, steps in members
                        if steps > 0
                    ),
                    key=lambda entry: entry[:3],
                )
            ),
        )
        cached = self._drain_memo.get(key)
        if cached is not None:
            return cached
        total = 0.0
        current = [(job, steps) for job, steps in members if steps > 0]
        while current:
            mix_time = self.estimator.step_time(
                machine_name, [job for job, _ in current]
            )
            rounds = min(steps for _, steps in current)
            total += rounds * mix_time
            current = [
                (job, steps - rounds) for job, steps in current if steps - rounds > 0
            ]
        self._drain_memo[key] = total
        return total

    def _cost_after_join(self, machine: MachineView, job: Job, now: float) -> float:
        """The machine's predicted time-to-drain once ``job`` joins it.

        Minimising this greedily equalises predicted machine finish
        times (what balances the fleet) *and* penalises bad pairings
        (a mix whose round time approaches the sum of the solos drains
        far slower than a complementary one) in a single number.
        """
        members = [
            (member, machine.remaining_of(member.name)) for member in machine.members
        ]
        members.append((job, job.num_steps))
        ready = max(0.0, machine.busy_until - now)
        return ready + self._drain_time(machine.machine_name, members)

    def _cost_after_wait(self, machine: MachineView, job: Job, now: float) -> float:
        """Predicted cost of waiting for a slot on a currently full machine.

        A slot frees once the member with the fewest remaining steps
        drains (rounds until then run at the members' current mix rate);
        the job then joins whatever is left and the machine drains as in
        :meth:`_cost_after_join`.
        """
        members = [
            (member, machine.remaining_of(member.name)) for member in machine.members
        ]
        current_mix = self.estimator.step_time(
            machine.machine_name, [member for member, _ in members]
        )
        min_remaining = min(steps for _, steps in members)
        wait = max(0.0, machine.busy_until - now) + (min_remaining - 1) * current_mix
        survivors = [
            (member, steps - min_remaining)
            for member, steps in members
            if steps > min_remaining
        ]
        survivors.append((job, job.num_steps))
        return wait + self._drain_time(machine.machine_name, survivors)

    def place(self, job: Job, fleet: FleetState) -> str | None:
        open_machines = [
            (index, machine)
            for index, machine in enumerate(fleet.machines)
            if machine.accepting and machine.free_slots > 0
        ]
        if not open_machines:
            return None
        compatible = [
            (index, machine)
            for index, machine in open_machines
            if self.tracker.allowed_with_all(job.kind, machine.member_kinds)
        ]
        if not compatible:
            # Every open machine pairs badly: fall back to the emptiest one
            # rather than queueing the job forever.
            index, machine = min(
                open_machines, key=lambda im: (len(im[1].members), im[0])
            )
            return machine.machine_id
        best: tuple[float, int] | None = None
        chosen: str | None = None
        for index, machine in compatible:
            score = (self._cost_after_join(machine, job, fleet.time), index)
            if best is None or score < best:
                best = score
                chosen = machine.machine_id
        assert best is not None
        # Placing now is not always right.  When every open machine is a
        # bad fit — say an idle thermally-limited laptop while a fast box
        # drains its last rounds — it can be cheaper to stay queued and
        # join the fast box once a slot frees.  Progress is guaranteed: a
        # full machine always has a pending round end, and the simulator
        # re-dispatches the queue on every event.
        for machine in fleet.machines:
            # Never wait on a non-accepting machine: a draining box's
            # slots open for nobody, so the predicted wait is a mirage
            # (and declining for it forever would stall the fleet).
            if machine.free_slots > 0 or not machine.members or not machine.accepting:
                continue
            if self._cost_after_wait(machine, job, fleet.time) * self.patience < best[0]:
                return None
        return chosen


#: Policy factories by CLI name.  Each takes the simulator's shared
#: estimator and interference tracker (first-fit needs neither but keeps
#: the uniform signature).
POLICIES: dict[str, Callable[[StepTimeEstimator, InterferenceTracker], PlacementPolicy]] = {
    "first-fit": lambda estimator, tracker: FirstFitPolicy(),
    "load-balanced": lambda estimator, tracker: LoadBalancedPolicy(estimator),
    "interference-aware": InterferenceAwarePolicy,
}


def available_policies() -> tuple[str, ...]:
    return tuple(sorted(POLICIES))


def make_policy(
    name: str,
    *,
    estimator: StepTimeEstimator,
    tracker: InterferenceTracker,
) -> PlacementPolicy:
    """Build a registered placement policy by name."""
    try:
        factory = POLICIES[name]
    except KeyError:
        raise KeyError(
            f"unknown policy {name!r}; available: {', '.join(available_policies())}"
        ) from None
    return factory(estimator, tracker)
