"""Open-loop arrival processes and admission control for the fleet.

PR 4-6 fed :class:`~repro.fleet.simulator.FleetSimulator` a *closed*,
pre-built job trace.  This module promotes the fleet to an online
service model:

* an :class:`ArrivalProcess` is a seeded **lazy generator** of jobs in
  nondecreasing arrival order.  The simulator pulls it event-by-event —
  exactly one future arrival is ever buffered in the heap — so a
  million-job open-loop run never materialises its trace, and streaming
  a process is byte-identical to pre-materialising the same process
  into a tuple (``process.materialize()``) and replaying that.
* an :class:`AdmissionController` bounds the central queue (reject new
  arrivals or shed the oldest queued job when the queue is full) and/or
  expires jobs that wait past a per-job deadline.  Shed jobs become
  :class:`~repro.fleet.simulator.JobRejection` records on the result,
  alongside completions and failures, so
  ``completions + failures + rejections == offered`` always holds.

Like fault plans (:mod:`repro.fleet.faults`), processes and controllers
are *values*: frozen, seeded, serialisable to dict specs, and consulted
identically by both simulator loops — the round-compression fast path
treats every admission decision and shed instant as a mandatory segment
boundary and stays byte-identical to ``FleetSimulator(compressed=False)``.
"""

from __future__ import annotations

import dataclasses
import json
import math
from dataclasses import dataclass, fields
from pathlib import Path
from typing import ClassVar, Iterable, Iterator, Sequence

from repro.fleet.job import DEFAULT_JOB_MIX, Job, validate_trace
from repro.scenarios import Workload
from repro.utils.seeding import make_rng

#: Shed policies the admission controller understands.
SHED_POLICIES = ("reject-at-arrival", "drop-oldest", "deadline-expire")


# ---------------------------------------------------------------------------
# admission control
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AdmissionController:
    """Backpressure rules applied to every arriving job.

    ``queue_limit`` bounds the *central* queue (jobs already placed on a
    machine do not count; crash-requeues of already-admitted jobs bypass
    the limit — admission is decided once, at the front door).  What
    happens when an arrival finds the queue full depends on
    ``shed_policy``:

    * ``"reject-at-arrival"`` — the arriving job is rejected on the spot
      (the queue is untouched);
    * ``"drop-oldest"`` — the oldest queued job is shed to make room and
      the arriving job is admitted;
    * ``"deadline-expire"`` — overflow still rejects at arrival, but the
      policy's defining rule is the ``deadline``: any admitted job still
      queued ``deadline`` simulated seconds after it arrived is shed at
      exactly that instant.

    ``deadline`` may also be combined with the queue policies.  A job
    that has been crash-requeued is exempt from its original deadline —
    it already bought service once; shedding it would double-charge the
    fault.  The default controller (all fields ``None``) admits
    everything, which is exactly the pre-admission behaviour.
    """

    queue_limit: int | None = None
    deadline: float | None = None
    shed_policy: str = "reject-at-arrival"

    def __post_init__(self) -> None:
        if self.shed_policy not in SHED_POLICIES:
            raise ValueError(
                f"unknown shed_policy {self.shed_policy!r}; "
                f"expected one of {', '.join(SHED_POLICIES)}"
            )
        if self.queue_limit is not None and self.queue_limit < 1:
            raise ValueError("queue_limit must be at least 1")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive")
        if self.shed_policy == "drop-oldest" and self.queue_limit is None:
            raise ValueError("shed_policy 'drop-oldest' requires a queue_limit")
        if self.shed_policy == "deadline-expire" and self.deadline is None:
            raise ValueError("shed_policy 'deadline-expire' requires a deadline")

    @property
    def active(self) -> bool:
        """Whether this controller can ever shed anything."""
        return self.queue_limit is not None or self.deadline is not None

    @property
    def drop_oldest(self) -> bool:
        return self.shed_policy == "drop-oldest"

    def to_dict(self) -> dict:
        return {
            "queue_limit": self.queue_limit,
            "deadline": self.deadline,
            "shed_policy": self.shed_policy,
        }

    @classmethod
    def from_dict(cls, spec: dict) -> "AdmissionController":
        return cls(
            queue_limit=spec.get("queue_limit"),
            deadline=spec.get("deadline"),
            shed_policy=spec.get("shed_policy", "reject-at-arrival"),
        )


#: The admit-everything controller both loops fall back to.
NO_ADMISSION = AdmissionController()


def resolve_admission(value) -> AdmissionController:
    """Coerce ``None`` / controller / spec dict into a controller."""
    if value is None:
        return NO_ADMISSION
    if isinstance(value, AdmissionController):
        return value
    if isinstance(value, dict):
        return AdmissionController.from_dict(value)
    raise TypeError(
        "admission must be an AdmissionController, a spec dict or None, "
        f"not {type(value).__name__}"
    )


# ---------------------------------------------------------------------------
# arrival processes
# ---------------------------------------------------------------------------


def _first_equal_index(workloads: Sequence[Workload]) -> tuple[int, ...]:
    """``workloads.index(w)`` for every position, precomputed once.

    Graph seeds are assigned per workload *kind* (first equal entry), so
    duplicate catalog entries share graphs.  The per-job linear scan the
    seed ``generate_trace`` did is O(catalog) per job — noticeable at a
    million jobs — so processes pay for the map once up front.
    """
    first: list[int] = []
    for index, workload in enumerate(workloads):
        for earlier in range(index + 1):
            if workloads[earlier] == workload:
                first.append(earlier)
                break
    return tuple(first)


def name_width(num_jobs: int) -> int:
    """Zero-padding for generated job names.

    At least 3 digits (the historical ``job-000-...`` shape that
    registered fault specs and docs reference), growing with the trace
    so names keep sorting lexically in arrival order past 999 jobs.
    """
    return max(3, len(str(max(num_jobs - 1, 0))))


class ArrivalProcess:
    """Base class: a seeded lazy stream of jobs.

    Subclasses are frozen dataclasses whose :meth:`jobs` yields
    :class:`Job` values in nondecreasing ``arrival_time`` order.  A
    process is a *factory*: every :meth:`jobs` call starts a fresh,
    identically seeded generator, so one process value can drive many
    simulations.
    """

    #: Registry key (``"poisson"``, ``"diurnal"``, ...).
    kind: ClassVar[str] = "abstract"

    # Subclasses provide ``num_jobs`` as a dataclass field or property.
    num_jobs: int

    def jobs(self) -> Iterator[Job]:
        raise NotImplementedError

    def materialize(self) -> tuple[Job, ...]:
        """The full trace as a tuple — for tests, replay and small runs."""
        return tuple(self.jobs())

    def prewarm_jobs(self) -> tuple[Job, ...]:
        """Representative jobs (one per workload kind) for estimator prewarm.

        Streaming runs cannot hand the whole trace to
        :meth:`StepTimeEstimator.prewarm`, but step-time signatures only
        depend on the workload multiset — one representative per distinct
        kind covers every mix the trace can form.  These jobs are never
        simulated.
        """
        raise NotImplementedError

    def to_dict(self) -> dict:
        raise NotImplementedError


@dataclass(frozen=True)
class _GeneratedArrivals(ArrivalProcess):
    """Shared machinery for the seeded generative processes.

    Per job, the draw order is fixed — workload index, step count, then
    the interarrival gap — so :class:`PoissonArrivals` reproduces the
    seed :func:`~repro.fleet.job.generate_trace` byte-for-byte and every
    subclass only customises the gap.
    """

    num_jobs: int
    seed: int = 0
    mean_interarrival: float = 2.0
    workloads: tuple[Workload, ...] = DEFAULT_JOB_MIX
    min_steps: int = 3
    max_steps: int = 10

    def __post_init__(self) -> None:
        if self.num_jobs < 0:
            raise ValueError("num_jobs must be non-negative")
        if not self.workloads:
            raise ValueError("the workload catalog must be non-empty")
        if not 1 <= self.min_steps <= self.max_steps:
            raise ValueError("need 1 <= min_steps <= max_steps")
        if self.mean_interarrival <= 0:
            raise ValueError("mean_interarrival must be positive")
        if not isinstance(self.workloads, tuple):
            object.__setattr__(self, "workloads", tuple(self.workloads))

    def _gap(self, rng, clock: float) -> float:
        """Next interarrival gap, drawn from ``rng`` at simulated ``clock``."""
        raise NotImplementedError

    def jobs(self) -> Iterator[Job]:
        rng = make_rng(self.seed)
        width = name_width(self.num_jobs)
        first = _first_equal_index(self.workloads)
        catalog = len(self.workloads)
        clock = 0.0
        for index in range(self.num_jobs):
            widx = int(rng.integers(0, catalog))
            workload = self.workloads[widx]
            steps = int(rng.integers(self.min_steps, self.max_steps + 1))
            clock += self._gap(rng, clock)
            yield Job(
                name=f"job-{index:0{width}d}-{workload.name}",
                workload=workload,
                num_steps=steps,
                arrival_time=clock,
                graph_seed=self.seed + first[widx],
            )

    def prewarm_jobs(self) -> tuple[Job, ...]:
        if self.num_jobs == 0:
            return ()
        first = _first_equal_index(self.workloads)
        return tuple(
            Job(
                name=f"prewarm-{widx}-{workload.name}",
                workload=workload,
                num_steps=self.min_steps,
                arrival_time=0.0,
                graph_seed=self.seed + widx,
            )
            for widx, workload in enumerate(self.workloads)
            if first[widx] == widx
        )

    def to_dict(self) -> dict:
        spec: dict = {"kind": self.kind}
        for f in fields(self):
            if f.name == "workloads":
                # Omitted for the default catalog (keeps registered specs
                # shape-only); a custom catalog must survive the round-trip.
                if self.workloads != DEFAULT_JOB_MIX:
                    spec["workloads"] = [
                        dataclasses.asdict(workload) for workload in self.workloads
                    ]
                continue
            spec[f.name] = getattr(self, f.name)
        return spec


@dataclass(frozen=True)
class PoissonArrivals(_GeneratedArrivals):
    """Memoryless arrivals at a constant mean rate.

    Byte-identical to the seed :func:`~repro.fleet.job.generate_trace`
    for the same parameters (which now delegates here).
    """

    kind: ClassVar[str] = "poisson"

    def _gap(self, rng, clock: float) -> float:
        return float(rng.exponential(self.mean_interarrival))


@dataclass(frozen=True)
class DiurnalArrivals(_GeneratedArrivals):
    """Poisson arrivals whose rate swings sinusoidally — a day/night cycle.

    The instantaneous rate is ``(1 + amplitude * sin(2π · t / period))``
    times the base rate, so load peaks ``(1 + amplitude)``× above the
    mean once per ``period`` and troughs ``(1 - amplitude)``× below it.
    ``amplitude`` must stay below 1 (the rate never reaches zero).
    """

    kind: ClassVar[str] = "diurnal"
    period: float = 200.0
    amplitude: float = 0.8

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.period <= 0:
            raise ValueError("period must be positive")
        if not 0 <= self.amplitude < 1:
            raise ValueError("amplitude must be in [0, 1)")

    def _gap(self, rng, clock: float) -> float:
        rate_factor = 1.0 + self.amplitude * math.sin(math.tau * clock / self.period)
        return float(rng.exponential(self.mean_interarrival / rate_factor))


@dataclass(frozen=True)
class BurstyArrivals(_GeneratedArrivals):
    """Heavy-tailed flash-crowd arrivals: tight bursts, Pareto quiet gaps.

    Jobs arrive in geometric bursts of mean length ``burst_size``;
    inside a burst, gaps are exponential with mean
    ``mean_interarrival * intra_burst_gap`` (a tiny fraction of the base
    gap), and between bursts the gap is ``mean_interarrival`` scaled by
    ``1 + Pareto(tail_alpha)`` — a heavy tail, so occasional long lulls
    separate the crowds.  ``tail_alpha ≤ 1`` gives an infinite-mean lull
    distribution; the default 1.5 is heavy but integrable.
    """

    kind: ClassVar[str] = "bursty"
    burst_size: int = 4
    intra_burst_gap: float = 0.05
    tail_alpha: float = 1.5

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.burst_size < 1:
            raise ValueError("burst_size must be at least 1")
        if self.intra_burst_gap <= 0:
            raise ValueError("intra_burst_gap must be positive")
        if self.tail_alpha <= 0:
            raise ValueError("tail_alpha must be positive")

    def jobs(self) -> Iterator[Job]:
        # Stateful gap draw (burst countdown), so override jobs() rather
        # than _gap(); the per-job draw prefix (workload, steps) is kept
        # identical to the other generative processes.
        rng = make_rng(self.seed)
        width = name_width(self.num_jobs)
        first = _first_equal_index(self.workloads)
        catalog = len(self.workloads)
        clock = 0.0
        in_burst = 0
        for index in range(self.num_jobs):
            widx = int(rng.integers(0, catalog))
            workload = self.workloads[widx]
            steps = int(rng.integers(self.min_steps, self.max_steps + 1))
            if in_burst > 0:
                gap = self.mean_interarrival * self.intra_burst_gap
                gap *= float(rng.exponential(1.0))
                in_burst -= 1
            else:
                gap = self.mean_interarrival * (1.0 + float(rng.pareto(self.tail_alpha)))
                in_burst = int(rng.geometric(1.0 / self.burst_size))
            clock += gap
            yield Job(
                name=f"job-{index:0{width}d}-{workload.name}",
                workload=workload,
                num_steps=steps,
                arrival_time=clock,
                graph_seed=self.seed + first[widx],
            )


@dataclass(frozen=True)
class ReplayArrivals(ArrivalProcess):
    """An existing trace wrapped as a process (sorted into arrival order)."""

    kind: ClassVar[str] = "replay"
    trace: tuple[Job, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.trace, key=lambda job: (job.arrival_time, job.name))
        )
        validate_trace(ordered)
        object.__setattr__(self, "trace", ordered)

    @property
    def num_jobs(self) -> int:
        return len(self.trace)

    def jobs(self) -> Iterator[Job]:
        return iter(self.trace)

    def prewarm_jobs(self) -> tuple[Job, ...]:
        return self.trace

    def to_dict(self) -> dict:
        """The concrete trace, job by job (round-trips via
        :func:`arrival_from_dict`; can be large — one entry per job)."""
        return {
            "kind": self.kind,
            "trace": [job.to_dict() for job in self.trace],
        }


#: Spec-constructible process kinds (replay carries jobs, so it is built
#: from a sequence, not a spec).
ARRIVAL_KINDS: dict[str, type] = {
    "poisson": PoissonArrivals,
    "diurnal": DiurnalArrivals,
    "bursty": BurstyArrivals,
}


def build_arrivals(spec: dict, **defaults) -> ArrivalProcess:
    """Instantiate a process from a spec dict, filling omitted fields.

    Registered arrival specs describe a load *shape* (kind + shape
    parameters) and leave ``num_jobs`` / ``seed`` / step bounds to the
    caller; ``defaults`` supplies those when the spec omits them.
    """
    params = dict(spec)
    kind = params.pop("kind", None)
    if kind not in ARRIVAL_KINDS:
        known = ", ".join(sorted(ARRIVAL_KINDS))
        raise ValueError(f"unknown arrival process kind {kind!r}; expected one of {known}")
    for key, value in defaults.items():
        if value is not None and key not in params:
            params[key] = value
    workloads = params.get("workloads")
    if workloads is not None:
        try:
            params["workloads"] = tuple(
                w if isinstance(w, Workload) else Workload(**w) for w in workloads
            )
        except TypeError as exc:
            raise ValueError(f"bad workload catalog in arrival spec: {exc}") from None
    try:
        return ARRIVAL_KINDS[kind](**params)
    except TypeError as exc:
        raise ValueError(f"bad arrival spec for kind {kind!r}: {exc}") from None


def arrival_from_dict(spec: dict, **defaults) -> ArrivalProcess:
    """Symmetric inverse of :meth:`ArrivalProcess.to_dict`.

    Handles every process kind — the generative shapes go through
    :func:`build_arrivals` (so ``defaults`` still fills omitted fields),
    and ``"replay"`` specs rebuild their concrete job trace.  Both the
    run store and the scenario arrival-spec registry deserialise through
    this one entry point.
    """
    if not isinstance(spec, dict):
        raise ValueError(f"an arrival spec must be a dict, got {type(spec).__name__}")
    if spec.get("kind") == ReplayArrivals.kind:
        trace = spec.get("trace")
        if not isinstance(trace, (list, tuple)):
            raise ValueError("a replay arrival spec needs a 'trace' list of jobs")
        return ReplayArrivals(
            trace=tuple(
                job if isinstance(job, Job) else Job.from_dict(job) for job in trace
            )
        )
    return build_arrivals(spec, **defaults)


def resolve_arrivals(value, **defaults) -> ArrivalProcess:
    """Coerce the many ways callers name an arrival process.

    Accepts a process (pass-through), a sequence of jobs (wrapped in
    :class:`ReplayArrivals`), a spec dict, or a string: a process kind
    (``"poisson"``), a registered arrival-spec name
    (:func:`repro.scenarios.available_arrival_specs`), inline JSON, or a
    path to a JSON file.  ``defaults`` fills spec fields the named shape
    leaves open (``num_jobs=...``, ``seed=...``, ...), mirroring
    :func:`repro.fleet.faults.resolve_fault_plan`.
    """
    if isinstance(value, ArrivalProcess):
        return value
    if isinstance(value, dict):
        return arrival_from_dict(value, **defaults)
    if isinstance(value, str):
        if value in ARRIVAL_KINDS:
            return build_arrivals({"kind": value}, **defaults)
        from repro.scenarios import ARRIVAL_SPECS  # deferred: scenario registry

        if value in ARRIVAL_SPECS:
            from repro.scenarios import get_arrival_spec

            return build_arrivals(get_arrival_spec(value), **defaults)
        text = value
        if not text.lstrip().startswith("{"):
            path = Path(value)
            if not path.is_file():
                raise ValueError(
                    f"unknown arrival process {value!r}: not a kind, not a "
                    "registered spec, not JSON and not a readable file"
                )
            text = path.read_text()
        try:
            spec = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"bad arrival-spec JSON: {exc}") from None
        if not isinstance(spec, dict):
            raise ValueError("arrival-spec JSON must be an object")
        return arrival_from_dict(spec, **defaults)
    if isinstance(value, Iterable):
        return ReplayArrivals(trace=tuple(value))
    raise TypeError(
        "arrivals must be an ArrivalProcess, a job sequence, a spec dict "
        f"or a string, not {type(value).__name__}"
    )


def validated_stream(stream: Iterator[Job]) -> Iterator[Job]:
    """Cheap streaming trace validation (monotone arrivals, sane steps).

    The full :func:`~repro.fleet.job.validate_trace` needs the whole
    trace in hand (duplicate-name detection); streamed processes are
    trusted to generate unique names, and this wrapper only enforces the
    invariants the event loop itself relies on — O(1) memory.
    """
    last = 0.0
    for job in stream:
        if job.arrival_time < last:
            raise ValueError(
                f"arrival process went backwards in time at job {job.name!r} "
                f"({job.arrival_time} < {last})"
            )
        if job.num_steps < 1:
            raise ValueError(
                f"job {job.name!r} has non-positive num_steps ({job.num_steps})"
            )
        last = job.arrival_time
        yield job
