"""The fleet's model layer: placements, machine state, fleet state.

Placement policies only ever see the immutable views defined here
(:class:`MachineView` inside a :class:`FleetState`); the simulator owns
the mutable :class:`MachineState`.  Keeping the policy-facing surface
frozen makes policies trivially safe to reuse across simulations and
keeps the decision inputs explicit — exactly the information a real
cluster scheduler would have.

Because one fleet simulation consults the policy thousands of times and
most machines do not change between consecutive consultations,
:class:`MachineState` caches its :class:`MachineView` behind a dirty
flag: the simulator calls :meth:`MachineState.touch` whenever it mutates
a machine, and :meth:`MachineState.view` rebuilds the frozen snapshot
only then.  A 50-machine fleet rebuilds one view per mutation instead of
fifty per policy call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.core.interference import InterferenceTracker
from repro.fleet.job import Job

#: Relative co-run slowdown (vs the slower solo estimate) above which a
#: workload pairing is blacklisted.  Gang rounds of two jobs land
#: between max(solo) (perfect overlap) and solo_a + solo_b (none); 0.75
#: flags pairings that recover almost none of the overlap.  Shared by
#: the fleet-wide tracker, the per-machine trackers and the policies.
DEFAULT_INTERFERENCE_THRESHOLD = 0.75


@dataclass(frozen=True)
class Placement:
    """One placement decision: which machine a job was assigned to, when."""

    job: str
    kind: str
    machine_id: str
    time: float


@dataclass(frozen=True)
class MachineView:
    """Read-only snapshot of one machine, as exposed to policies."""

    machine_id: str
    #: Zoo name of the hardware (``"desktop-8c"``, ...).
    machine_name: str
    #: Jobs inside the currently executing gang round.
    residents: tuple[Job, ...]
    #: Jobs admitted to this machine, joining at the next round boundary.
    waiting: tuple[Job, ...]
    #: Remaining training steps per member job name.
    remaining_steps: tuple[tuple[str, int], ...]
    #: Placement slots still open (capacity - residents - waiting; always
    #: 0 on a machine that is not accepting).
    free_slots: int
    #: When the current round ends (== now when the machine is idle).
    busy_until: float
    #: False once the machine has crashed or finished draining.  Policies
    #: must never score a dead machine; its ``free_slots`` is 0.
    alive: bool = True
    #: False while crashed, dead, or gracefully draining — no new
    #: placements, but a draining machine still runs its members.
    accepting: bool = True

    @property
    def members(self) -> tuple[Job, ...]:
        """Every job currently bound to the machine (running or waiting)."""
        return self.residents + self.waiting

    @property
    def member_kinds(self) -> tuple[str, ...]:
        return tuple(job.kind for job in self.members)

    @cached_property
    def _remaining_map(self) -> dict[str, int]:
        return dict(self.remaining_steps)

    def remaining_of(self, job_name: str) -> int:
        try:
            return self._remaining_map[job_name]
        except KeyError:
            raise KeyError(f"{job_name!r} is not bound to {self.machine_id}") from None


@dataclass(frozen=True)
class FleetState:
    """Everything a placement policy may look at when placing one job."""

    time: float
    machines: tuple[MachineView, ...]
    queue: tuple[Job, ...]
    #: Admission controller's bound on the central queue (None when the
    #: fleet admits everything).  Policies can read
    #: ``queue_depth / queue_limit`` as a backpressure signal — a fleet
    #: near its limit is about to shed work.
    queue_limit: int | None = None

    @property
    def queue_depth(self) -> int:
        return len(self.queue)

    def machine(self, machine_id: str) -> MachineView:
        for view in self.machines:
            if view.machine_id == machine_id:
                return view
        raise KeyError(f"unknown machine {machine_id!r}")


@dataclass
class MachineState:
    """Mutable per-machine bookkeeping owned by the fleet simulator."""

    machine_id: str
    machine_name: str
    capacity: int
    residents: list[Job] = field(default_factory=list)
    waiting: list[Job] = field(default_factory=list)
    remaining_steps: dict[str, int] = field(default_factory=dict)
    busy_until: float = 0.0
    round_active: bool = False
    #: Duration of the round currently executing (reused at the round's
    #: end for interference accounting without re-querying the estimator).
    round_time: float = 0.0
    #: Accumulated busy seconds (drives the utilisation report).
    busy_time: float = 0.0
    rounds: int = 0
    corun_rounds: int = 0
    #: This machine's locally observed co-run interference; the simulator
    #: merges per-round deltas into the fleet-wide tracker via
    #: snapshot()/merge() so machines share what they learn, and the
    #: machine's own report carries what *it* observed.
    tracker: InterferenceTracker = field(
        default_factory=lambda: InterferenceTracker(
            threshold=DEFAULT_INTERFERENCE_THRESHOLD
        )
    )
    # -- round-compression bookkeeping (compressed fast path only) ---------------
    #: Gang rounds of the current compressed segment not yet flushed
    #: (0 when idle or on the reference path).
    seg_rounds_left: int = 0
    #: Per-round interference record plan, precomputed at segment start:
    #: one (machine history deque, fleet history deque, slowdown) per
    #: resident pair — flushing a round appends to both deques directly.
    seg_records: tuple = field(default=(), repr=False)
    #: Threshold-crossing pairs of this segment, applied to both
    #: blacklists at the first flushed boundary (then cleared).
    seg_blacklist: tuple[tuple[str, str], ...] = ()
    #: Invalidation counter for heap events (a truncated segment's stale
    #: end event is recognised and skipped by its old epoch).
    epoch: int = 0
    # -- fault-injection bookkeeping (see repro.fleet.faults) --------------------
    #: False once the machine crashed or finished a graceful drain.
    alive: bool = True
    #: False while crashed, dead, or draining: no new placements land.
    accepting: bool = True
    #: True between a MachineLeave instant and the retirement of the
    #: machine's last member (then the machine dies).
    draining: bool = False
    #: Simulated instant the machine left the fleet (None while alive).
    dead_since: float | None = None
    #: Simulated instant the machine entered the fleet (0.0 for the
    #: initial zoo; the MachineJoin time for mid-trace joins).
    joined_at: float = 0.0
    #: Active straggler factors, in window-open order; the effective
    #: round duration is the estimator base scaled by their product.
    straggle: tuple[float, ...] = ()
    #: Unscaled estimator round duration of the round/segment currently
    #: executing — interference records use this (a straggling machine is
    #: slow, not a bad pairing), busy accounting uses ``round_time``.
    round_base: float = 0.0
    #: Crash-requeues charged to this machine (jobs sent back to the
    #: queue with retry budget burned).
    retries: int = 0
    #: JobPreempt events applied on this machine.
    preemptions: int = 0
    #: Training steps of progress destroyed by aborted in-flight rounds
    #: (one per resident per aborted round).
    lost_steps: int = 0
    #: Dirty-flag cached policy view (see module docstring).
    _view_cache: MachineView | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def free_slots(self) -> int:
        if not self.accepting:
            return 0
        return self.capacity - len(self.residents) - len(self.waiting)

    def touch(self) -> None:
        """Invalidate the cached view after any policy-visible mutation."""
        self._view_cache = None

    def view(self) -> MachineView:
        view = self._view_cache
        if view is None:
            view = MachineView(
                machine_id=self.machine_id,
                machine_name=self.machine_name,
                residents=tuple(self.residents),
                waiting=tuple(self.waiting),
                remaining_steps=tuple(sorted(self.remaining_steps.items())),
                free_slots=self.free_slots,
                busy_until=self.busy_until,
                alive=self.alive,
                accepting=self.accepting,
            )
            self._view_cache = view
        return view
