"""Jobs and job traces: the unit of work the fleet scheduler places.

A :class:`Job` is one training run — a :class:`~repro.scenarios.Workload`
(one of the paper's models or a seeded synthetic DAG) plus how many
training steps it needs and when it arrives.  The fleet simulator
(:mod:`repro.fleet.simulator`) places a *stream* of jobs across zoo
machines; :func:`generate_trace` produces such streams deterministically
from a seed, and :func:`jobs_from_scenario` lifts a registered co-run
scenario's workload mix into jobs (so fleet traces can reference
scenarios by their stable serialized spec — see
:meth:`repro.scenarios.Scenario.to_dict`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Sequence

from repro.scenarios import Scenario, Workload, get_scenario

#: The default workload catalog traces draw from.  Mostly synthetic DAGs
#: (cheap to profile, seeded, diverse op mixes) plus one real reduced
#: model; each entry's *label* is the job kind the interference tracker
#: keys on.  Kept small on purpose: distinct co-run sets are multisets
#: over these kinds, so a small catalog keeps the per-(machine, mix)
#: step-time estimates highly reusable across rounds and runs.
DEFAULT_JOB_MIX: tuple[Workload, ...] = (
    Workload(synthetic_ops=48, synthetic_width=4, heavy_fraction=0.6, label="syn-heavy"),
    Workload(synthetic_ops=64, synthetic_width=8, heavy_fraction=0.35, label="syn-wide"),
    Workload(synthetic_ops=56, synthetic_width=4, heavy_fraction=0.1, label="syn-light"),
    Workload(synthetic_ops=40, synthetic_width=2, heavy_fraction=0.5, label="syn-deep"),
    Workload(model="dcgan", label="dcgan"),
)


@dataclass(frozen=True, slots=True)
class Job:
    """One training job in a fleet trace.

    The job is a value: its graph is built on demand (deterministically
    from ``graph_seed``) by the step-time estimator, never stored.
    Slotted: open-loop runs stream millions of these.
    """

    name: str
    workload: Workload
    num_steps: int
    arrival_time: float = 0.0
    #: Seed for synthetic workload graphs.  Traces reuse one seed per
    #: workload *kind* so identical kinds share graphs — which is what
    #: keeps the per-(machine, co-run set) estimate cache small.
    graph_seed: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("job name must be non-empty")
        if self.num_steps < 1:
            raise ValueError("num_steps must be at least 1")
        if self.arrival_time < 0:
            raise ValueError("arrival_time must be non-negative")

    @property
    def kind(self) -> str:
        """The workload kind — the interference tracker's pairing key."""
        return self.workload.name

    def to_dict(self) -> dict:
        """A JSON-ready spec; round-trips through :meth:`from_dict`."""
        return {
            "name": self.name,
            "workload": dataclasses.asdict(self.workload),
            "num_steps": self.num_steps,
            "arrival_time": self.arrival_time,
            "graph_seed": self.graph_seed,
        }

    @staticmethod
    def from_dict(data: dict) -> "Job":
        """Rebuild a job from :meth:`to_dict` output (exact round-trip)."""
        workload = data["workload"]
        if isinstance(workload, dict):
            workload = Workload(**workload)
        return Job(
            name=data["name"],
            workload=workload,
            num_steps=data["num_steps"],
            arrival_time=data.get("arrival_time", 0.0),
            graph_seed=data.get("graph_seed", 0),
        )


def validate_trace(jobs: Sequence[Job]) -> None:
    """Reject malformed traces before they corrupt simulator state.

    :class:`Job` validates its own fields, but traces built by external
    tooling (or dataclasses constructed via ``__new__`` / replace tricks)
    can still smuggle in duplicate names, non-positive step counts or
    negative arrivals — each of which would silently corrupt the
    simulator's remaining-steps map or the event heap.  Raises a
    :class:`ValueError` naming the offending job(s).
    """
    seen: set[str] = set()
    duplicates: list[str] = []
    for job in jobs:
        if job.name in seen:
            duplicates.append(job.name)
        seen.add(job.name)
        if job.num_steps < 1:
            raise ValueError(
                f"job {job.name!r} has non-positive num_steps ({job.num_steps})"
            )
        if job.arrival_time < 0:
            raise ValueError(
                f"job {job.name!r} has negative arrival_time ({job.arrival_time})"
            )
    if duplicates:
        raise ValueError(
            "duplicate job names in trace: " + ", ".join(sorted(set(duplicates)))
        )


def generate_trace(
    num_jobs: int,
    *,
    seed: int = 0,
    workloads: Sequence[Workload] = DEFAULT_JOB_MIX,
    mean_interarrival: float = 2.0,
    min_steps: int = 3,
    max_steps: int = 10,
) -> tuple[Job, ...]:
    """A deterministic stream of jobs with Poisson arrivals.

    The same ``(num_jobs, seed, workloads, ...)`` always produces the
    identical trace: workload kinds, step counts and arrival times are
    all drawn from one seeded generator.  ``mean_interarrival`` is in
    simulated seconds — against the default catalog's step times it
    controls how heavily the fleet is loaded (smaller = burstier).

    This is the materialised form of
    :class:`repro.fleet.arrivals.PoissonArrivals` (to which it
    delegates): job names zero-pad to the trace length (at least 3
    digits, so they always sort lexically in arrival order), graph seeds
    are assigned per workload *kind* via a precomputed first-index map
    (identical kinds share graphs, keeping estimate cache keys
    reusable), and ``num_jobs=0`` returns an empty trace for symmetry
    with ``FleetSimulator.run([])``.
    """
    from repro.fleet.arrivals import PoissonArrivals  # deferred: avoids cycle

    if num_jobs == 0:
        return ()
    process = PoissonArrivals(
        num_jobs=num_jobs,
        seed=seed,
        mean_interarrival=mean_interarrival,
        workloads=tuple(workloads),
        min_steps=min_steps,
        max_steps=max_steps,
    )
    jobs = process.materialize()
    validate_trace(jobs)
    return jobs


def jobs_from_scenario(
    scenario: str | Scenario,
    *,
    num_steps: int = 5,
    arrival_time: float = 0.0,
) -> tuple[Job, ...]:
    """One job per workload of a registered scenario's mix.

    Turns the single-machine co-run scenarios (``corun-mix-knl``, ...)
    into fleet inputs: what PR 3 co-located on one chip, the fleet layer
    is free to spread across machines.
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    return tuple(
        Job(
            name=f"{scenario.name}-{index}-{workload.name}",
            workload=workload,
            num_steps=num_steps,
            arrival_time=arrival_time,
            graph_seed=scenario.seed + index,
        )
        for index, workload in enumerate(scenario.workloads)
    )
