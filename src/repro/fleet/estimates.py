"""Per-(job mix, machine) step-time estimates for the fleet simulator.

The fleet layer's unit of time is the *gang round*: every job resident
on a machine advances one training step, and the round takes as long as
one simulated step of the jobs' **merged** graph under the paper's
runtime — exactly the single-machine co-run path PR 3 built
(:func:`repro.scenarios.merge_graphs` + profiling +
:class:`~repro.core.scheduler.RuntimeSchedulerPolicy` on the incremental
:class:`~repro.execsim.simulator.StepSimulator`).

Because a round's duration is a pure function of ``(machine kind,
multiset of (workload, graph seed), runtime config)``, the computation
lives in a module-level task function (:func:`corun_step_time`) that the
sweep engine can fan out and its on-disk cache can memoise across runs;
:class:`StepTimeEstimator` adds the canonicalisation and an in-memory
memo so one fleet simulation never pays for the same mix twice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.config import RuntimeConfig
from repro.fleet.job import Job
from repro.hardware.zoo import get_machine
from repro.scenarios import Workload, merge_graphs
from repro.sweep.cache import SweepCache, UncacheableValue, content_key
from repro.sweep.executor import SweepExecutor, SweepTask, get_default_executor

#: Canonical co-run mix entry: (label, workload, graph_seed).
MixEntry = tuple[str, Workload, int]


def corun_step_time(
    entries: tuple[MixEntry, ...],
    machine_name: str,
    config: RuntimeConfig,
) -> float:
    """Simulated step time of one gang round on ``machine_name``.

    Builds each entry's graph, merges them into one schedulable step,
    profiles the merged graph with the hill-climbing model and runs one
    scheduled step under the full runtime policy.  Pure and picklable:
    the sweep engine's process backend and on-disk cache both apply.
    """
    from repro.core.runtime import TrainingRuntime  # local: keeps import cycle-free

    if not entries:
        raise ValueError("a co-run mix needs at least one entry")
    machine = get_machine(machine_name)
    graphs = {
        label: workload.build(graph_seed) for label, workload, graph_seed in entries
    }
    if len(graphs) == 1:
        graph = next(iter(graphs.values()))
    else:
        graph = merge_graphs(graphs, name="fleet-mix")
    runtime = TrainingRuntime(machine, config)
    model = runtime.profile(graph)
    policy = runtime.build_policy(model)
    return runtime.simulator.run_step(graph, policy, step_name="fleet-round").step_time


def scale_step_time(base: float, factors: Sequence[float]) -> float:
    """Apply active straggler factors to an estimator step time.

    Faults scale *results*, never the estimator's memo or the on-disk
    sweep cache — those stay pure functions of (machine, mix, config).
    The loop multiplies factors one at a time in window-open order so the
    reference and compressed fleet loops produce bit-identical floats.
    """
    time = base
    for factor in factors:
        time = time * factor
    return time


def canonical_mix(jobs: Sequence[Job]) -> tuple[MixEntry, ...]:
    """The canonical (order-independent) mix key of a set of resident jobs.

    Jobs are sorted by (kind, graph seed) and labelled by position, so
    any two rounds running the same multiset of workloads — regardless
    of job identity or admission order — share one estimate.
    """
    ordered = sorted(jobs, key=lambda job: (job.kind, job.graph_seed))
    return tuple(
        (f"{index}-{job.kind}", job.workload, job.graph_seed)
        for index, job in enumerate(ordered)
    )


@dataclass
class EstimatorStats:
    """How many estimates were requested vs actually simulated.

    ``cache_hits``/``cache_misses`` count lookups against the shared
    on-disk estimate cache (zero when no cache is enabled): a hit means
    the estimate was loaded instead of simulated, so warm shard workers
    and repeat prewarms skip the sweep fan-out entirely.
    """

    requests: int = 0
    computed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def memo_hits(self) -> int:
        return self.requests - self.computed

    def merge(self, other: "EstimatorStats") -> None:
        """Fold another stats delta (e.g. from a shard worker) into this one."""
        self.requests += other.requests
        self.computed += other.computed
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses


@dataclass
class StepTimeEstimator:
    """Memoised access to :func:`corun_step_time` through the sweep engine.

    The in-memory memo serves repeated rounds of one simulation; the
    executor's :class:`~repro.sweep.cache.SweepCache` (when enabled)
    persists estimates across simulations, policies and processes —
    comparing three placement policies on the same trace pays for each
    distinct (machine, mix) exactly once.
    """

    executor: SweepExecutor | None = None
    config: RuntimeConfig = field(default_factory=RuntimeConfig)
    cache: SweepCache | None = None
    _memo: dict[tuple, float] = field(default_factory=dict)
    stats: EstimatorStats = field(default_factory=EstimatorStats)

    def _executor(self) -> SweepExecutor:
        return self.executor if self.executor is not None else get_default_executor()

    def _cache(self) -> SweepCache:
        """The shared on-disk estimate cache (the executor's by default).

        Estimates live under their own ``"estimate"`` content-key
        namespace so any process holding the same cache root — shard
        workers included — shares them with the same atomic
        sharded-pickle discipline as :class:`SweepCache` task results.
        """
        if self.cache is not None:
            return self.cache
        return self._executor().cache

    def _cache_key(self, machine_name: str, entries: tuple[MixEntry, ...]) -> str:
        return content_key("estimate", machine_name, entries, self.config)

    def _cache_lookup(
        self, cache: SweepCache, machine_name: str, entries: tuple[MixEntry, ...]
    ) -> tuple[bool, float | None]:
        if not cache:
            return False, None
        try:
            key = self._cache_key(machine_name, entries)
        except UncacheableValue:
            return False, None
        hit, value = cache.lookup(key)
        if hit:
            self.stats.cache_hits += 1
        else:
            self.stats.cache_misses += 1
        return hit, value

    def _cache_store(
        self,
        cache: SweepCache,
        machine_name: str,
        entries: tuple[MixEntry, ...],
        value: float,
    ) -> None:
        if not cache:
            return
        try:
            key = self._cache_key(machine_name, entries)
        except UncacheableValue:
            return
        cache.store(key, value)

    def step_time(self, machine_name: str, jobs: Sequence[Job]) -> float:
        """Round duration of ``jobs`` gang-stepping on ``machine_name``."""
        entries = canonical_mix(jobs)
        key = (machine_name, entries)
        self.stats.requests += 1
        value = self._memo.get(key)
        if value is None:
            cache = self._cache()
            hit, cached = self._cache_lookup(cache, machine_name, entries)
            if hit:
                value = cached
            else:
                value = self._executor().run(
                    [SweepTask(corun_step_time, (entries, machine_name, self.config))]
                )[0]
                self.stats.computed += 1
                self._cache_store(cache, machine_name, entries, value)
            self._memo[key] = value
        return value

    def memo_snapshot(self) -> dict[tuple, float]:
        """A copy of the in-memory memo, for shipping to shard workers."""
        return dict(self._memo)

    def merge_memo(self, delta: dict[tuple, float]) -> None:
        """Fold a worker's new memo entries back in on fleet sync.

        Estimates are pure functions of their key, so collisions are
        value-identical and last-writer-wins is safe.
        """
        self._memo.update(delta)

    def solo_time(self, machine_name: str, job: Job) -> float:
        """The job's isolated (no co-runner) step time on ``machine_name``."""
        return self.step_time(machine_name, (job,))

    def prewarm(
        self,
        machine_names: Sequence[str],
        jobs: Sequence[Job],
        *,
        max_corun: int = 1,
    ) -> int:
        """Fan estimates for a whole trace out over the sweep engine in one
        parallel batch, before any event loop starts.

        ``max_corun=1`` (default) covers every distinct solo signature —
        the bulk of a simulation's estimator traffic, since every policy
        consults solo estimates for every placement.  Larger values cover
        every distinct :func:`canonical_mix` signature of up to
        ``max_corun`` members drawn from the trace's job classes, so a
        compressed fleet run can start every segment on a memo hit.
        Returns the number of estimates computed (post-memo).
        """
        from itertools import combinations_with_replacement

        if max_corun < 1:
            raise ValueError("max_corun must be at least 1")
        # One representative job per distinct solo signature: jobs sharing
        # (kind, workload, graph_seed) canonicalise identically.
        classes: dict[tuple[MixEntry, ...], Job] = {}
        for job in jobs:
            classes.setdefault(canonical_mix((job,)), job)
        representatives = list(classes.values())
        mixes: list[tuple[MixEntry, ...]] = []
        for size in range(1, max_corun + 1):
            for combo in combinations_with_replacement(representatives, size):
                mixes.append(canonical_mix(combo))
        cache = self._cache()
        tasks: list[SweepTask] = []
        keys: list[tuple] = []
        seen: set[tuple] = set(self._memo)
        for machine_name in dict.fromkeys(machine_names):
            for entries in mixes:
                key = (machine_name, entries)
                if key in seen:
                    continue
                seen.add(key)
                # Dedupe against the shared on-disk estimate cache:
                # warm simulators (repeat policies, shard workers) fill
                # the memo from disk instead of fanning the mix out
                # through the sweep engine again.
                hit, cached = self._cache_lookup(cache, machine_name, entries)
                if hit:
                    self._memo[key] = cached
                    self.stats.requests += 1
                    continue
                keys.append(key)
                tasks.append(
                    SweepTask(corun_step_time, (entries, machine_name, self.config))
                )
        if not tasks:
            return 0
        results = self._executor().run(tasks)
        for key, value in zip(keys, results):
            self._memo[key] = value
            self._cache_store(cache, key[0], key[1], value)
        # Prewarmed estimates are requests too, so ``memo_hits`` (the
        # requests/computed difference) can never go negative.
        self.stats.requests += len(tasks)
        self.stats.computed += len(tasks)
        return len(tasks)
