"""Sharded fleet engine: machine groups advance between sync points.

The compressed event loop (:meth:`FleetSimulator._run_compressed`) made
one fleet O(mix changes) in *events*, but every event still pays an
O(machines) ``sync_to`` scan to bring the whole fleet to the event's
instant — at 1,000 machines that scan dominates everything.  This module
replaces the scan with **shard calendars** and replaces the global
round-end heap with per-shard boundary heaps:

* Machines are partitioned round-robin into ``shards`` disjoint groups
  (``machine index % shards``, so mid-trace joins land deterministically).
* Each shard owns a boundary heap ``(next boundary, machine index,
  epoch)`` of its *active* machines.  Bringing the fleet to an instant
  pops only the boundaries that are actually due — O(due · log) instead
  of O(machines) — and single-resident segments still batch all their
  due rounds through one bulk flush, so round compression is preserved.
* The only cross-shard coupling is the **fleet-wide interference
  tracker** and the **placement policy** that reads it.  Shard advances
  therefore never touch the fleet tracker directly: every co-run flush
  appends a log entry keyed ``(boundary, machine index)``, and the
  engine k-way merges the per-shard logs and replays them into the
  fleet tracker in exactly the global order the single-process loop
  produces.  (Round-end events tie-break on the stable machine index in
  both existing loops for precisely this reason.)

Synchronisation points — arrivals, fault instants, deadline expiries,
and every round boundary while jobs are queued — are fleet-wide
barriers: the policy must observe a fully flushed fleet before any
placement.  Between two sync points with an **empty queue** there is no
cross-shard dependency at all: each shard flushes its due boundaries and
chains directly into follow-on segments (the estimator is a pure
function, so chained starts need no global state).  Those windows are
what fans out over :class:`~repro.sweep.executor.SweepExecutor`'s
process backend: each worker receives its shard's machine states plus a
snapshot of the shared :class:`~repro.fleet.estimates.StepTimeEstimator`
memo, advances independently, and returns updated states, the ordered
flush log, completion records, and its memo delta — which merge back on
sync.  Workers consult the same on-disk estimate cache (atomic sharded
pickles, see :class:`~repro.sweep.cache.SweepCache`), so a warm cache
means no worker ever recomputes an estimate.

Fan-out engages for the final drain (no future fleet event) and for
sustained wide windows (momentum heuristic on the previous window's due
count); narrow windows advance inline, because shipping machine states
across processes costs more than a handful of flushes.  Placements
bound the parallelism either way: every placement decision is a global
barrier, so a saturated fleet (jobs always queued) degenerates to
serial per-boundary processing — exactly the compressed path's
behaviour, and the same caveat round compression already carries.

The sharded path is **byte-identical** to the single-process compressed
path — ``FleetResult.to_dict(include_overhead=False)`` and the
run-store determinism digest — for any shard count and backend, with or
without fault plans and admission control.  Only overhead fields
(``events_processed``, estimator traffic, scheduler overhead) may
differ.
"""

from __future__ import annotations

import heapq
import time as _time
from typing import TYPE_CHECKING, Iterator

from repro.core.interference import InterferenceTracker
from repro.fleet import faults as faultlib
from repro.fleet.estimates import StepTimeEstimator, scale_step_time
from repro.fleet.faults import FaultInjector, FaultInstant
from repro.fleet.job import Job
from repro.fleet.simulator import (
    _ARRIVAL,
    _EXPIRE,
    _FAULT,
    FleetStalled,
    JobCompletion,
    JobFailure,
    JobRejection,
    _PackCache,
    _QueueDepthLog,
    _unpack_rows,
)
from repro.fleet.state import FleetState, MachineState, Placement
from repro.sweep.cache import SweepCache
from repro.sweep.executor import SweepExecutor, SweepTask
from repro.sweep.retry import RetryPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.config import RuntimeConfig
    from repro.fleet.arrivals import AdmissionController
    from repro.fleet.simulator import FleetSimulator

#: Fan shard advances out to worker processes when the *previous* sync
#: window flushed at least this many boundaries (a cheap momentum
#: heuristic: wide windows cluster, and counting due entries up front
#: would reintroduce the O(machines) scan the calendars remove).
FANOUT_MIN_DUE = 64

#: Default fault tolerance of the shard fan-out.  Shard advances are
#: pure functions of their shipped state, so a crashed or hung worker is
#: always recoverable: retry twice, then degrade to running the shard in
#: the parent.  Quarantine stays off — a quarantined shard would *lose*
#: its machines, which is never an acceptable answer here.
DEFAULT_SHARD_RETRY = RetryPolicy(max_attempts=3, quarantine=False, degrade=True)

#: Completion record produced inside a shard advance, before the parent
#: attaches start time and attempt count (which live in parent state):
#: (job, kind, machine_id, arrival_time, finish_time, num_steps).
_CompletionPartial = tuple[str, str, str, float, float, int]


def _retire(
    machine: MachineState,
    decrement: int,
    finish_time: float,
    completions: list[_CompletionPartial],
) -> None:
    """Sharded mirror of the compressed path's ``retire_residents``.

    Emits completion *partials*: ``start_time``/``attempts`` live in
    parent-side dicts, so the parent fills them in on integration.
    """
    remaining = machine.remaining_steps
    still_running: list[Job] = []
    for job in machine.residents:
        steps = remaining[job.name] - decrement
        remaining[job.name] = steps
        if steps <= 0:
            del remaining[job.name]
            completions.append(
                (
                    job.name,
                    job.kind,
                    machine.machine_id,
                    job.arrival_time,
                    finish_time,
                    job.num_steps,
                )
            )
        else:
            still_running.append(job)
    machine.residents = still_running
    machine.round_active = False
    if machine.draining and not machine.residents and not machine.waiting:
        machine.alive = False
        machine.draining = False
        machine.dead_since = finish_time


def _flush_round(
    machine: MachineState,
    index: int,
    boundary: float,
    log: list,
    completions: list[_CompletionPartial],
) -> None:
    """Replay one co-run boundary; identical accounting to the compressed
    ``flush_round`` except interference records are data tuples
    ``(kind_a, kind_b, slowdown)``: the machine tracker ingests them
    here, the fleet tracker via the merged log replay."""
    records = machine.seg_records
    if records:
        log.append((boundary, index, records, machine.seg_blacklist))
        tracker = machine.tracker
        for kind_a, kind_b, slowdown in records:
            tracker.history_for(kind_a, kind_b).append(slowdown)
        if machine.seg_blacklist:
            for kind_a, kind_b in machine.seg_blacklist:
                tracker.mark_blacklisted(kind_a, kind_b)
            machine.seg_blacklist = ()
    machine.rounds += 1
    if len(machine.residents) > 1:
        machine.corun_rounds += 1
    machine.busy_time += machine.round_time
    machine.seg_rounds_left -= 1
    if machine.seg_rounds_left > 0:
        remaining = machine.remaining_steps
        for job in machine.residents:
            remaining[job.name] -= 1
        machine.busy_until = boundary + machine.round_time
    else:
        _retire(machine, 1, boundary, completions)
    machine.touch()


def _bulk_flush(
    machine: MachineState,
    now_time: float,
    allow_now: bool,
    completions: list[_CompletionPartial],
) -> None:
    """Batch-replay a single-resident segment's due boundaries — the
    bit-exact float loop of the compressed ``bulk_flush``."""
    round_time = machine.round_time
    busy_until = machine.busy_until
    busy_time = machine.busy_time
    left = machine.seg_rounds_left
    flushed = 0
    while left and (busy_until < now_time or (busy_until == now_time and allow_now)):
        busy_time += round_time
        flushed += 1
        left -= 1
        if left:
            busy_until += round_time
    if not flushed:
        return
    machine.busy_time = busy_time
    machine.busy_until = busy_until
    machine.seg_rounds_left = left
    machine.rounds += flushed
    if left:
        remaining = machine.remaining_steps
        for job in machine.residents:
            remaining[job.name] -= flushed
    else:
        _retire(machine, flushed, busy_until, completions)
    machine.touch()


def _start_segment(
    machine: MachineState,
    index: int,
    at: float,
    estimator: StepTimeEstimator,
    threshold: float,
    starts: dict[str, float],
    pending_nonempty: bool,
    heap: list,
) -> None:
    """Sharded mirror of the compressed ``start_segment``.

    Pushes the segment's *next round boundary* (not its end) onto the
    shard calendar; every flush re-pushes the following boundary, so the
    calendar always knows each active machine's next due instant.
    ``starts`` gets first-seen start times (the parent merges them into
    ``start_times`` with setdefault semantics, so a requeued job keeps
    its original start).
    """
    machine.residents.extend(machine.waiting)
    machine.waiting.clear()
    machine.touch()
    if not machine.residents:
        return
    residents = machine.residents
    for job in residents:
        if job.name not in starts:
            starts[job.name] = at
    base = estimator.step_time(machine.machine_name, residents)
    machine.round_base = base
    round_time = scale_step_time(base, machine.straggle)
    machine.round_time = round_time
    machine.busy_until = at + round_time
    machine.round_active = True
    if len(residents) > 1:
        solos = {
            job.name: estimator.solo_time(machine.machine_name, job)
            for job in residents
        }
        records = []
        crossing = []
        for i, job_a in enumerate(residents):
            for job_b in residents[i + 1 :]:
                baseline = max(solos[job_a.name], solos[job_b.name])
                slowdown = base / baseline - 1.0 if baseline > 0 else 0.0
                if slowdown < 0:
                    slowdown = 0.0
                records.append((job_a.kind, job_b.kind, slowdown))
                if slowdown > threshold:
                    crossing.append((job_a.kind, job_b.kind))
        machine.seg_records = tuple(records)
        machine.seg_blacklist = tuple(crossing)
    else:
        machine.seg_records = ()
        machine.seg_blacklist = ()
    rounds = min(machine.remaining_steps[job.name] for job in residents)
    if pending_nonempty:
        rounds = 1
    machine.seg_rounds_left = rounds
    machine.epoch += 1
    heapq.heappush(heap, (machine.busy_until, index, machine.epoch))


def _advance(
    heap: list,
    machines_by_index,
    horizon: float | None,
    inclusive: bool,
    estimator: StepTimeEstimator,
    threshold: float,
    chain: bool,
    log: list,
    completions: list[_CompletionPartial],
    starts: dict[str, float],
) -> int:
    """Advance one shard's calendar to ``horizon`` (``None`` = drain).

    Pops due boundaries in ``(boundary, machine index)`` order — the
    stable global flush order — co-run segments one round at a time,
    single-resident segments in one bulk batch.  With ``chain=True``
    (empty-queue windows only) a completed segment immediately starts
    its follow-on segment, exactly as the compressed loop's round-end
    event would at the same instant.  Stale entries (superseded epoch or
    already-flushed boundary) are dropped lazily.  Returns the number of
    boundary events consumed.
    """
    limit = float("inf") if horizon is None else horizon
    allow_limit = inclusive if horizon is not None else False
    processed = 0
    while heap:
        t, index, epoch = heap[0]
        machine = machines_by_index[index]
        if (
            not machine.round_active
            or machine.epoch != epoch
            or machine.busy_until != t
        ):
            heapq.heappop(heap)
            continue
        if t > limit or (t == limit and not allow_limit):
            break
        heapq.heappop(heap)
        processed += 1
        if machine.seg_records:
            _flush_round(machine, index, t, log, completions)
        else:
            _bulk_flush(machine, limit, allow_limit, completions)
        if machine.round_active:
            heapq.heappush(heap, (machine.busy_until, index, machine.epoch))
        elif chain and (machine.residents or machine.waiting):
            _start_segment(
                machine,
                index,
                machine.busy_until,
                estimator,
                threshold,
                starts,
                False,
                heap,
            )
    return processed


def advance_shard(
    states: list[MachineState],
    horizon: float | None,
    inclusive: bool,
    memo: dict,
    config: "RuntimeConfig",
    threshold: float,
    cache_root: str | None,
    cache_enabled: bool,
) -> tuple:
    """Process-backend shard task: advance a group of machines to
    ``horizon`` in an isolated worker.

    Builds a worker-local :class:`StepTimeEstimator` seeded with the
    parent's memo snapshot and pointed at the shared on-disk estimate
    cache, so chained segment starts reuse estimates instead of
    recomputing them.  Returns ``(states, log, completions, starts,
    memo_delta, stats_delta, processed)`` for the parent to merge.
    """
    cache = SweepCache(root=cache_root, enabled=cache_enabled)
    executor = SweepExecutor(backend="serial", cache=cache)
    estimator = StepTimeEstimator(
        executor=executor, config=config, _memo=dict(memo)
    )
    by_index = {int(m.machine_id[1:]): m for m in states}
    heap = [
        (m.busy_until, int(m.machine_id[1:]), m.epoch)
        for m in states
        if m.round_active
    ]
    heapq.heapify(heap)
    log: list = []
    completions: list[_CompletionPartial] = []
    starts: dict[str, float] = {}
    processed = _advance(
        heap, by_index, horizon, inclusive, estimator, threshold,
        True, log, completions, starts,
    )
    shipped = set(memo)
    delta = {k: v for k, v in estimator._memo.items() if k not in shipped}
    return states, log, completions, starts, delta, estimator.stats, processed


def run_sharded(
    sim: "FleetSimulator",
    stream: Iterator[Job],
    machines: list[MachineState],
    injector: FaultInjector,
    controller: "AdmissionController",
) -> tuple:
    """Sharded drop-in for ``FleetSimulator._run_compressed``.

    Same inputs, same 8-tuple, byte-identical deterministic outcome; see
    the module docstring for the calendar/merge model.
    """
    num_shards = sim.shards
    backend = sim.shard_backend
    estimator = sim.estimator
    fleet_tracker = sim.tracker
    threshold = fleet_tracker.threshold

    by_id = {m.machine_id: m for m in machines}
    shard_members: list[list[int]] = [[] for _ in range(num_shards)]
    for index in range(len(machines)):
        shard_members[index % num_shards].append(index)
    #: One boundary calendar per shard: (next boundary, machine index,
    #: epoch) of the shard's active machines, stale entries lazily
    #: dropped (epoch bumped, or boundary already flushed).
    shard_heaps: list[list[tuple[float, int, int]]] = [
        [] for _ in range(num_shards)
    ]

    pending: dict[str, Job] = {}
    placements: list[Placement] = []
    completions: list[JobCompletion] = []
    failures: list[JobFailure] = []
    rejections: list[JobRejection] = []
    depth_log = _QueueDepthLog(sim.series_window)
    queue_limit = controller.queue_limit
    drop_oldest = controller.drop_oldest
    deadline = controller.deadline
    offered = 0
    start_times: dict[str, float] = {}
    attempts: dict[str, int] = {}
    remaining_override: dict[str, int] = {}
    max_retries = injector.max_retries
    overhead = 0.0
    now = 0.0
    seq = 0
    events_processed = 0
    momentum = 0
    queue_view: tuple[Job, ...] | None = ()
    shard_exec: SweepExecutor | None = None

    #: Global heap: arrivals, fault instants and deadline expiries only —
    #: round boundaries live in the shard calendars.
    events: list[tuple[float, int, int, object]] = []

    arrivals_pulled = 0
    ckpt = sim._ckpt

    def push_next_arrival() -> None:
        nonlocal seq, arrivals_pulled
        job = next(stream, None)
        if job is not None:
            arrivals_pulled += 1
            heapq.heappush(events, (job.arrival_time, _ARRIVAL, seq, job))
            seq += 1

    placements_pack = _PackCache()
    completions_pack = _PackCache()
    if sim._resume_payload is None:
        push_next_arrival()
        for instant in injector.timeline():
            heapq.heappush(events, (instant.time, _FAULT, seq, instant))
            seq += 1
    else:
        # Restore the captured loop state wholesale (the simulator
        # loops' pattern): the in-flight arrival, pending fault instants
        # and timers already live in the captured global heap, and the
        # shard calendars/partition come back as plain data.
        state = sim._resume_payload["state"]
        now = state["now"]
        seq = state["seq"]
        offered = state["offered"]
        overhead = state["overhead"]
        events_processed = state["events_processed"]
        arrivals_pulled = state["arrivals_pulled"]
        momentum = state["momentum"]
        events = state["events"]
        pending = state["pending"]
        placements = _unpack_rows(Placement, state["placements"])
        completions = _unpack_rows(JobCompletion, state["completions"])
        placements_pack = _PackCache(seed=state["placements"])
        completions_pack = _PackCache(seed=state["completions"])
        failures = state["failures"]
        rejections = state["rejections"]
        depth_log = state["depth_log"]
        start_times = state["start_times"]
        attempts = state["attempts"]
        remaining_override = state["remaining_override"]
        machines[:] = state["machines"]
        by_id.clear()
        by_id.update((m.machine_id, m) for m in machines)
        shard_members = state["shard_members"]
        shard_heaps = state["shard_heaps"]
        queue_view = None

    def capture() -> dict:
        return {
            "mode": "sharded",
            "now": now,
            "seq": seq,
            "offered": offered,
            "overhead": overhead,
            "events_processed": events_processed,
            "arrivals_pulled": arrivals_pulled,
            "momentum": momentum,
            "events": events,
            "pending": pending,
            "placements": placements_pack.pack(placements),
            "completions": completions_pack.pack(completions),
            "failures": failures,
            "rejections": rejections,
            "depth_log": depth_log,
            "start_times": start_times,
            "attempts": attempts,
            "remaining_override": remaining_override,
            "machines": machines,
            "tracker": fleet_tracker,
            "shard_members": shard_members,
            "shard_heaps": shard_heaps,
        }

    def next_seq() -> int:
        nonlocal seq
        value = seq
        seq += 1
        return value

    def get_shard_exec() -> SweepExecutor:
        nonlocal shard_exec
        if shard_exec is None:
            shard_exec = SweepExecutor(
                backend=backend,
                cache=SweepCache(enabled=False),
                retry=sim.shard_retry or DEFAULT_SHARD_RETRY,
                chaos=sim.shard_chaos,
            )
        return shard_exec

    def reject(job: Job, reason: str) -> None:
        rejections.append(
            JobRejection(
                job=job.name,
                kind=job.kind,
                arrival_time=job.arrival_time,
                rejected_time=now,
                reason=reason,
            )
        )

    def shed(job: Job, reason: str) -> None:
        remaining_override.pop(job.name, None)
        reject(job, reason)
        depth_log.record(now, len(pending))

    def fleet_state() -> FleetState:
        nonlocal queue_view
        if queue_view is None:
            queue_view = tuple(pending.values())
        # Dirty-flag cache read, as in the single-process loops: only
        # touched machines pay the view() rebuild call.
        return FleetState(
            time=now,
            machines=tuple(m._view_cache or m.view() for m in machines),
            queue=queue_view,
            queue_limit=queue_limit,
        )

    def replay(log: list) -> None:
        """Apply a (merged) flush log to the fleet-wide tracker, in the
        exact ``(boundary, machine index)`` order the single-process
        loop's ``sync_to`` would have produced."""
        for _boundary, _index, records, blacklist in log:
            for kind_a, kind_b, slowdown in records:
                fleet_tracker.history_for(kind_a, kind_b).append(slowdown)
            for kind_a, kind_b in blacklist:
                fleet_tracker.mark_blacklisted(kind_a, kind_b)

    def integrate(
        comps: list[_CompletionPartial], starts: dict[str, float]
    ) -> None:
        """Attach parent-side start times / attempt counts to a shard
        advance's completion partials."""
        for name, at in starts.items():
            start_times.setdefault(name, at)
        for name, kind, machine_id, arrival, finish, num_steps in comps:
            completions.append(
                JobCompletion(
                    job=name,
                    kind=kind,
                    machine_id=machine_id,
                    arrival_time=arrival,
                    start_time=start_times.pop(name),
                    finish_time=finish,
                    num_steps=num_steps,
                    attempts=attempts.get(name, 1),
                )
            )

    def sync_shards(horizon: float | None, inclusive: bool, chain: bool) -> None:
        """Bring every shard to ``horizon``: the fleet-wide barrier.

        Advances shards independently (inline, or on worker processes
        for the drain / sustained wide windows), then merges the
        per-shard flush logs by ``(boundary, machine index)`` and
        replays them into the fleet tracker — the deterministic,
        input-ordered merge that makes sharding invisible to results.
        """
        nonlocal events_processed, momentum
        active = [s for s in range(num_shards) if shard_heaps[s]]
        if not active:
            momentum = 0
            return
        use_workers = (
            chain
            and backend != "serial"
            and len(active) > 1
            and (horizon is None or momentum >= FANOUT_MIN_DUE)
        )
        logs: list[list] = []
        processed_total = 0
        if use_workers:
            cache = estimator._cache()
            cache_root = str(cache.root) if cache else None
            cache_enabled = bool(cache)
            memo = estimator.memo_snapshot()
            config = estimator.config
            tasks = []
            for s in active:
                states = [
                    machines[i]
                    for i in shard_members[s]
                    if machines[i].round_active
                ]
                for m in states:
                    m._view_cache = None
                tasks.append(
                    SweepTask(
                        advance_shard,
                        (states, horizon, inclusive, memo, config,
                         threshold, cache_root, cache_enabled),
                        cacheable=False,
                    )
                )
            results = get_shard_exec().run(tasks)
            for s, result in zip(active, results):
                states, log, comps, starts, delta, stats, processed = result
                for m in states:
                    index = int(m.machine_id[1:])
                    machines[index] = m
                    by_id[m.machine_id] = m
                heap = [
                    (m.busy_until, int(m.machine_id[1:]), m.epoch)
                    for m in states
                    if m.round_active
                ]
                heapq.heapify(heap)
                shard_heaps[s] = heap
                estimator.merge_memo(delta)
                estimator.stats.merge(stats)
                logs.append(log)
                integrate(comps, starts)
                processed_total += processed
        else:
            for s in active:
                log: list = []
                comps: list[_CompletionPartial] = []
                starts: dict[str, float] = {}
                processed_total += _advance(
                    shard_heaps[s], machines, horizon, inclusive,
                    estimator, threshold, chain, log, comps, starts,
                )
                logs.append(log)
                integrate(comps, starts)
        events_processed += processed_total
        momentum = processed_total
        if len(logs) == 1:
            replay(logs[0])
        else:
            replay(list(heapq.merge(*logs)))

    def parent_start(machine: MachineState) -> None:
        index = int(machine.machine_id[1:])
        _start_segment(
            machine, index, now, estimator, threshold, start_times,
            bool(pending), shard_heaps[index % num_shards],
        )

    def truncate(machine: MachineState) -> None:
        if machine.round_active and machine.seg_rounds_left > 1:
            machine.seg_rounds_left = 1
            machine.epoch += 1
            index = int(machine.machine_id[1:])
            heapq.heappush(
                shard_heaps[index % num_shards],
                (machine.busy_until, index, machine.epoch),
            )

    def dispatch() -> None:
        nonlocal overhead, queue_view
        for job in list(pending.values()):
            state = fleet_state()
            tick = _time.perf_counter()
            choice = sim.policy.place(job, state)
            overhead += _time.perf_counter() - tick
            if choice is None:
                continue
            machine = by_id[choice]
            if machine.free_slots <= 0:
                raise RuntimeError(
                    f"policy {sim.policy.name!r} placed {job.name!r} on full "
                    f"machine {choice!r}"
                )
            del pending[job.name]
            queue_view = None
            depth_log.record(now, len(pending))
            machine.waiting.append(job)
            machine.remaining_steps[job.name] = remaining_override.pop(
                job.name, job.num_steps
            )
            machine.touch()
            placements.append(
                Placement(job=job.name, kind=job.kind, machine_id=choice, time=now)
            )
            if not machine.round_active:
                parent_start(machine)
            else:
                truncate(machine)

    def fail_job(job: Job, time: float, count: int) -> None:
        attempts[job.name] = count
        remaining_override.pop(job.name, None)
        failures.append(
            JobFailure(
                job=job.name,
                kind=job.kind,
                arrival_time=job.arrival_time,
                attempts=count,
                failed_time=time,
            )
        )

    def abort_segment(machine: MachineState) -> None:
        if machine.round_active:
            machine.lost_steps += len(machine.residents)
            machine.round_active = False
            machine.seg_rounds_left = 0
            machine.seg_records = ()
            machine.seg_blacklist = ()
            machine.epoch += 1
            machine.busy_until = now
            machine.touch()

    def check_drained(machine: MachineState) -> None:
        if machine.draining and not machine.residents and not machine.waiting:
            machine.alive = False
            machine.draining = False
            machine.dead_since = now
            machine.touch()

    def requeue(job: Job, machine: MachineState) -> None:
        nonlocal queue_view
        count = attempts.get(job.name, 1)
        if count >= max_retries:
            fail_job(job, now, count)
        else:
            attempts[job.name] = count + 1
            machine.retries += 1
            pending[job.name] = job
            queue_view = None
            depth_log.record(now, len(pending))

    def apply_fault(instant: FaultInstant) -> list[MachineState]:
        nonlocal queue_view
        event = instant.event
        action = instant.action
        restart: list[MachineState] = []
        if action == faultlib.JOIN:
            index = len(machines)
            new = MachineState(
                machine_id=f"m{index}",
                machine_name=event.machine_name,
                capacity=sim.max_corun,
                tracker=InterferenceTracker(threshold=threshold),
                joined_at=now,
            )
            machines.append(new)
            by_id[new.machine_id] = new
            shard_members[index % num_shards].append(index)
            return restart
        if action == faultlib.PREEMPT:
            for machine in machines:
                if not machine.alive:
                    continue
                resident = next(
                    (j for j in machine.residents if j.name == event.job), None
                )
                if resident is not None:
                    abort_segment(machine)
                    machine.residents.remove(resident)
                    remaining_override[resident.name] = machine.remaining_steps.pop(
                        resident.name
                    )
                    machine.preemptions += 1
                    machine.touch()
                    pending[resident.name] = resident
                    queue_view = None
                    depth_log.record(now, len(pending))
                    check_drained(machine)
                    if machine.alive:
                        restart.append(machine)
                    return restart
                waiter = next(
                    (j for j in machine.waiting if j.name == event.job), None
                )
                if waiter is not None:
                    machine.waiting.remove(waiter)
                    remaining_override[waiter.name] = machine.remaining_steps.pop(
                        waiter.name
                    )
                    machine.preemptions += 1
                    machine.touch()
                    pending[waiter.name] = waiter
                    queue_view = None
                    depth_log.record(now, len(pending))
                    check_drained(machine)
                    return restart
            return restart  # queued / finished / unknown job: no-op
        machine = by_id[event.machine]
        if not machine.alive:
            return restart  # faults on dead machines are no-ops
        if action == faultlib.CRASH:
            abort_segment(machine)
            members = machine.residents + machine.waiting
            machine.residents = []
            machine.waiting = []
            for job in members:
                remaining_override[job.name] = machine.remaining_steps.pop(job.name)
                requeue(job, machine)
            machine.alive = False
            machine.accepting = False
            machine.draining = False
            machine.dead_since = now
            machine.touch()
        elif action == faultlib.LEAVE:
            machine.accepting = False
            if not machine.residents and not machine.waiting:
                machine.alive = False
                machine.dead_since = now
            else:
                machine.draining = True
            machine.touch()
        elif action == faultlib.STRAGGLER_START:
            machine.straggle = machine.straggle + (event.factor,)
            truncate(machine)
        elif action == faultlib.STRAGGLER_END:
            factors = list(machine.straggle)
            if event.factor in factors:
                factors.remove(event.factor)
            machine.straggle = tuple(factors)
            truncate(machine)
        return restart

    def shard_peek() -> tuple[float, int, int] | None:
        """Earliest valid boundary across all shard calendars, as
        ``(time, machine index, shard)`` — stale entries dropped."""
        best: tuple[float, int, int] | None = None
        for s in range(num_shards):
            heap = shard_heaps[s]
            while heap:
                t, index, epoch = heap[0]
                machine = machines[index]
                if (
                    machine.round_active
                    and machine.epoch == epoch
                    and machine.busy_until == t
                ):
                    break
                heapq.heappop(heap)
            if heap:
                t, index, _ = heap[0]
                if best is None or (t, index) < (best[0], best[1]):
                    best = (t, index, s)
        return best

    def handle_global() -> None:
        """Pop and apply the next global event — the compressed loop's
        arrival / fault / expiry handlers with ``sync_to`` replaced by
        the shard barrier.  With an empty queue the caller has already
        synced inclusively to this instant."""
        nonlocal now, offered, queue_view, events_processed
        event_time, kind, _event_seq, payload = heapq.heappop(events)
        now = event_time
        if kind == _ARRIVAL:
            events_processed += 1
            push_next_arrival()
            if pending:
                sync_shards(now, inclusive=False, chain=False)
            job: Job = payload  # type: ignore[assignment]
            offered += 1
            admitted = True
            if queue_limit is not None and len(pending) >= queue_limit:
                if drop_oldest:
                    oldest = next(iter(pending))
                    victim = pending.pop(oldest)
                    queue_view = None
                    shed(victim, "drop-oldest")
                else:
                    reject(job, "reject-at-arrival")
                    admitted = False
            if admitted:
                pending[job.name] = job
                queue_view = None
                depth_log.record(now, len(pending))
                if deadline is not None:
                    heapq.heappush(
                        events, (now + deadline, _EXPIRE, next_seq(), job)
                    )
                dispatch()
        elif kind == _FAULT:
            events_processed += 1
            if pending:
                sync_shards(now, inclusive=False, chain=False)
            restart = apply_fault(payload)  # type: ignore[arg-type]
            dispatch()
            for machine in restart:
                if not machine.round_active and (
                    machine.residents or machine.waiting
                ):
                    parent_start(machine)
        else:  # _EXPIRE
            job = payload  # type: ignore[assignment]
            if job.name in attempts or job.name not in pending:
                return  # stale timer, mirrors the compressed check
            events_processed += 1
            sync_shards(now, inclusive=False, chain=False)
            del pending[job.name]
            queue_view = None
            shed(job, "deadline-expire")
            dispatch()

    def process_boundary(entry: tuple[float, int, int]) -> None:
        """Serial-mode round-boundary event (jobs are queued, so every
        boundary is a dispatch barrier) — the compressed loop's
        round-end handler."""
        nonlocal now, events_processed
        t, index, s = entry
        now = t
        events_processed += 1
        machine = machines[index]
        # Strictly earlier boundaries fleet-wide first (own included),
        # then own's boundary at exactly now — the sync_to(now, own)
        # order, reconstructed in two phases.
        sync_shards(now, inclusive=False, chain=False)
        own_log: list = []
        own_comps: list[_CompletionPartial] = []
        while machine.round_active and machine.busy_until == now:
            if machine.seg_records:
                _flush_round(machine, index, now, own_log, own_comps)
            else:
                _bulk_flush(machine, now, True, own_comps)
        replay(own_log)
        integrate(own_comps, {})
        if machine.round_active:
            heapq.heappush(
                shard_heaps[s], (machine.busy_until, index, machine.epoch)
            )
        dispatch()
        if not machine.round_active:
            parent_start(machine)

    try:
        while True:
            if ckpt is not None and events_processed >= ckpt._trigger:
                # Loop tops are fleet-wide sync points here too: every
                # shard calendar and the global heap are consistent, so
                # the captured state round-trips exactly.  The inlined
                # ``_trigger`` guard keeps no-save iterations to one
                # compare.
                ckpt.tick(events_processed, capture)
            boundary = shard_peek()
            if not pending:
                if events:
                    sync_shards(events[0][0], inclusive=True, chain=True)
                    handle_global()
                elif boundary is not None:
                    # Final drain: no future fleet-wide event can occur,
                    # every shard runs its machines dry independently.
                    sync_shards(None, inclusive=True, chain=True)
                    continue
                else:
                    break
            else:
                if boundary is not None and (
                    not events or boundary[0] <= events[0][0]
                ):
                    process_boundary(boundary)
                elif events:
                    handle_global()
                else:
                    break
            if pending:
                # Reference semantics: with jobs queued, every machine's
                # every round boundary triggers a fresh dispatch.
                for m in machines:
                    truncate(m)
    finally:
        if shard_exec is not None:
            sim.shard_stats = shard_exec.stats
            shard_exec.close(force=True)

    if pending:
        if any(m.accepting for m in machines):
            stuck = list(pending)
            raise FleetStalled(
                f"fleet simulation stalled with {len(pending)} jobs queued "
                f"(policy {sim.policy.name!r} kept declining placements): "
                + ", ".join(stuck),
                stuck,
            )
        for job in list(pending.values()):
            fail_job(job, now, max_retries)
        pending.clear()
        queue_view = None
        depth_log.record(now, 0)
    return (
        completions,
        placements,
        failures,
        rejections,
        depth_log.finish(),
        offered,
        overhead,
        events_processed,
    )
